"""Security-relevant binary mutation operators for the kill harness.

Each operator models one way a buggy or malicious compiler could weaken
the ConfLLVM instrumentation while leaving the binary loadable: drop or
retarget a bounds check, strip an fs/gs prefix or widen a 32-bit
sub-register, flip MCall/MRet taint bits, forge or clone a magic word,
perturb ``rsp`` arithmetic or skip ``chkstk``, redirect a direct call
past its taint check, smuggle in an indirect jump or a segment-register
write.  ConfVerify must reject ("kill") every mutant; an accepted
("surviving") mutant is a verifier soundness finding.

Operators only propose *ground-truth-unsound* sites: each site is
selected by an independent structural argument (encoded in the site
predicate, not by asking the verifier) that the mutation genuinely
weakens a guarantee.  The two subtle cases are the MPX evidence
mutations, where "drop this check" is only unsound if no *other* check
in the same basic block still covers the access — the site scanner
replays the verifier's per-block evidence bookkeeping (same keys, same
invalidation on redefinition and calls) and only selects checks that
are the **sole** evidence for some access — and the taint-flow
mutations, where redirecting a private store to public memory is only a
violation if the stored value is provably private on every path (a
same-block private load feeds it, with no intervening call or
redefinition; the dataflow join is a max, so a straight-line private
witness is a lower bound).  That keeps the kill target at 100%: a
survivor is a real finding, never an "equivalent mutant".

Mutants never execute — they exist only to be shown to the verifier —
so the canonical NOP used to erase an instruction is ``ChkStk`` (the
one instruction with no dataflow effect at all in the verifier).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterator

from ..backend import isa, regs
from ..link.objfile import Binary
from ..verifier.verify import ELIDE_LIMIT

_SIMPLE_INSNS = (
    isa.Alu,
    isa.MovRI,
    isa.MovRR,
    isa.SetCC,
    isa.Lea,
    isa.Load,
    isa.Store,
    isa.Push,
)


def _nop() -> isa.Insn:
    # ChkStk is `pass` to the verifier's dataflow: erasing an
    # instruction with it perturbs nothing except the erased check.
    return isa.ChkStk()


@dataclass(frozen=True)
class Site:
    """One concrete mutation opportunity inside a binary."""

    operator: str
    index: int  # code address the mutation anchors at
    description: str
    # VerifyError reasons the ground-truth argument predicts.  Any
    # VerifyError kills the mutant; one of these reasons kills it *with
    # attribution* (the harness reports mismatches separately so a
    # check masking another check's job stays visible).
    expected: tuple[str, ...]


@dataclass
class Mutant:
    site: Site
    binary: Binary  # the mutated deep copy


class Operator:
    """A named mutation operator: site enumeration + application."""

    def __init__(
        self,
        name: str,
        find: Callable[["_Context"], list[Site]],
        apply: Callable[[Binary, Site], None],
    ):
        self.name = name
        self.find = find
        self.apply = apply


# ---------------------------------------------------------------------------
# Structural context: procedures, blocks, reachability — recomputed
# independently of the verifier so site predicates are a second opinion,
# not a tautology.


@dataclass
class _Access:
    """One memory access observed by the block scanner."""

    addr: int
    kind: str  # "load" | "store"
    mem: isa.Mem
    region: str | None  # region the verifier would derive, None if none
    covering: frozenset[int]  # alive check addrs whose shape covers it
    src: int | None = None  # store source register, if a register
    src_def: "_Access | None" = None  # load that defined src, if traceable


class _Context:
    def __init__(self, binary: Binary):
        self.binary = binary
        self.code = binary.code
        self.scheme = binary.config.scheme
        self.stub_addrs = {
            addr
            for name, addr in binary.label_addrs.items()
            if name.startswith("stub.")
        }
        self.procs = self._find_procs()
        self.reachable = self._reachable_addrs()

    def _find_procs(self) -> list[tuple[int, int]]:
        """[(magic addr, end)] with end exclusive, mirroring the linker
        layout: procedures run from each MCall word to the next, the
        last one ending where the import stubs start."""
        entries = [
            addr
            for addr, word in enumerate(self.code)
            if isinstance(word, isa.MagicWord) and word.kind == "call"
        ]
        stub_start = (
            min(self.stub_addrs) if self.stub_addrs else len(self.code)
        )
        return [
            (entry, entries[i + 1] if i + 1 < len(entries) else stub_start)
            for i, entry in enumerate(entries)
        ]

    def _reachable_addrs(self) -> set[int]:
        """Addresses control flow can reach, walking each procedure from
        its entry: calls fall through their return-site magic, the CFI
        return sequence and ``fail`` terminate.  Mutating unreachable
        code is vacuous (it cannot execute and the verifier never
        dataflows it), so dataflow-dependent sites exclude it."""
        reachable: set[int] = set()
        for magic_addr, end in self.procs:
            worklist = [magic_addr + 1]
            while worklist:
                addr = worklist.pop()
                while magic_addr < addr < end and addr not in reachable:
                    reachable.add(addr)
                    insn = self.code[addr]
                    if isinstance(insn, isa.Jmp):
                        worklist.append(insn.addr)
                        break
                    if isinstance(insn, isa.Br):
                        worklist.append(insn.addr)
                    elif isinstance(insn, isa.Fail):
                        break
                    elif isinstance(insn, isa.Pop):
                        nxt = self.code[addr + 1] if addr + 1 < end else None
                        if (
                            isinstance(nxt, isa.CheckMagic)
                            and nxt.kind == "ret"
                        ):
                            reachable.update((addr + 1, addr + 2))
                            break
                    addr += 1
        return reachable

    def blocks(self) -> Iterator[tuple[int, int]]:
        """(leader, end) pairs of reachable verifier basic blocks — the
        same leader set ``BinaryVerifier._build_blocks`` derives."""
        for entry, proc_end in self.procs:
            leaders = {entry + 1}
            for addr in range(entry + 1, proc_end):
                insn = self.code[addr]
                if isinstance(insn, (isa.Jmp, isa.Br)):
                    leaders.add(insn.addr)
                    leaders.add(addr + 1)
            ordered = sorted(x for x in leaders if entry < x < proc_end)
            for i, leader in enumerate(ordered):
                if leader not in self.reachable:
                    continue
                end = ordered[i + 1] if i + 1 < len(ordered) else proc_end
                yield leader, end


_SHAPE_MEM = "mem"
_SHAPE_REG = "reg"


def _check_shape(chk: isa.BndChk):
    if chk.mem is not None:
        m = chk.mem
        return (_SHAPE_MEM, m.base, m.index, m.scale, m.disp)
    return (_SHAPE_REG, chk.reg)


def _shape_covers(shape, mem: isa.Mem) -> bool:
    """Does a check of this shape provide evidence for this operand,
    per ``_operand_region``'s key-matching rules?"""
    if shape[0] == _SHAPE_REG:
        return (
            shape[1] == mem.base
            and mem.index is None
            and abs(mem.disp) < ELIDE_LIMIT
        )
    return shape[1:] == (mem.base, mem.index, mem.scale, mem.disp)


def _shape_regs(shape) -> tuple:
    """Registers whose redefinition invalidates a check of this shape."""
    return shape[1:3] if shape[0] == _SHAPE_MEM else shape[1:2]


def _mpx_dynamic(mem: isa.Mem) -> bool:
    """Is this operand one the MPX scheme covers with BndChk evidence
    (register-anchored, not rsp, not a linked global)?"""
    return (
        mem.base is not None
        and mem.base != regs.RSP
        and mem.abs is None
        and mem.global_name is None
        and mem.seg is None
    )


def _defines(insn: isa.Insn) -> int | None:
    """The register an instruction redefines, if any."""
    if isinstance(
        insn,
        (isa.MovRI, isa.MovRR, isa.MovFuncAddr, isa.Alu, isa.SetCC,
         isa.Lea, isa.Load, isa.Pop, isa.TlsBase),
    ):
        return insn.dst
    return None


def _scan_block(ctx: _Context, leader: int, end: int) -> list[_Access]:
    """Replay the verifier's per-block bookkeeping for one reachable
    block: which checks are alive at each access (same keys, same
    invalidation on redefinition) and which register was last defined
    by which load.  Calls wipe both maps — the verifier clears evidence
    and rewrites every register's taint at call boundaries."""
    code = ctx.code
    alive: dict[int, tuple] = {}  # check addr -> shape
    definer: dict[int, _Access] = {}  # reg -> defining load access
    accesses: list[_Access] = []
    addr = leader
    while addr < end:
        insn = code[addr]
        if isinstance(insn, isa.MagicWord):
            addr += 1
            continue
        if isinstance(insn, isa.BndChk):
            alive[addr] = _check_shape(insn)
            addr += 1
            continue
        if isinstance(insn, isa.CallD):
            alive.clear()
            definer.clear()
            addr += 2  # the call and its return-site magic word
            continue
        if isinstance(insn, isa.CheckMagic):
            if insn.kind != "call":
                break  # malformed; the verifier rejects it regardless
            alive.clear()
            definer.clear()
            addr += 3  # check, CallI, return-site magic word
            continue
        if isinstance(insn, (isa.Jmp, isa.Br, isa.Fail)):
            break
        if isinstance(insn, isa.Pop):
            nxt = code[addr + 1] if addr + 1 < len(code) else None
            if isinstance(nxt, isa.CheckMagic) and nxt.kind == "ret":
                break  # CFI return sequence terminates the block
        acc = None
        if isinstance(insn, (isa.Load, isa.Store)):
            acc = _observe_access(ctx, insn, addr, alive, definer)
            if acc is not None:
                accesses.append(acc)
        defined = _defines(insn)
        if defined is not None:
            stale = [
                caddr
                for caddr, shape in alive.items()
                if defined in _shape_regs(shape)
            ]
            for caddr in stale:
                del alive[caddr]
            if acc is not None and acc.kind == "load":
                definer[defined] = acc
            else:
                definer.pop(defined, None)
        addr += 1
    return accesses


def _observe_access(
    ctx: _Context,
    insn,
    addr: int,
    alive: dict[int, tuple],
    definer: dict[int, _Access],
) -> _Access | None:
    mem = insn.mem
    kind = "load" if isinstance(insn, isa.Load) else "store"
    src = None
    src_def = None
    if kind == "store" and not isinstance(insn.src, isa.Imm):
        src = insn.src
        src_def = definer.get(src)
    if ctx.scheme == "seg":
        if mem.seg is None:
            return None
        region = "priv" if mem.seg == isa.SEG_GS else "pub"
        return _Access(addr, kind, mem, region, frozenset(), src, src_def)
    if not _mpx_dynamic(mem):
        return None
    covering = frozenset(
        caddr for caddr, shape in alive.items() if _shape_covers(shape, mem)
    )
    # Region as _operand_region derives it: bnd0 evidence wins ties.
    region = None
    for bnd, name in ((0, "pub"), (1, "priv")):
        if any(ctx.code[caddr].bnd == bnd for caddr in covering):
            region = name
            break
    return _Access(addr, kind, mem, region, covering, src, src_def)


# ---------------------------------------------------------------------------
# 1. MPX evidence mutations


def _find_drop_bndchk(ctx: _Context) -> list[Site]:
    """Drop a bounds check that is the *sole* alive evidence for some
    access in its block.  (A check shadowed by another covering check
    is not a valid site: the access would still verify — an equivalent
    mutant.)"""
    if ctx.scheme != "mpx":
        return []
    sites: dict[int, Site] = {}
    for leader, end in ctx.blocks():
        for acc in _scan_block(ctx, leader, end):
            if len(acc.covering) != 1:
                continue
            (caddr,) = acc.covering
            if caddr in sites:
                continue
            chk = ctx.code[caddr]
            sites[caddr] = Site(
                "drop-bound-check",
                caddr,
                f"drop the bnd{chk.bnd} check @{caddr}, the sole "
                f"evidence for the {acc.kind} @{acc.addr}",
                ("missing-bounds-check",),
            )
    return [sites[a] for a in sorted(sites)]


def _apply_nop_out(binary: Binary, site: Site) -> None:
    binary.code[site.index] = _nop()


def _find_flip_store_guard(ctx: _Context) -> list[Site]:
    """Retarget the bnd1 check guarding a store at bnd0 (private-region
    evidence becomes public-region evidence) when the stored value is
    provably private: a same-block private load defines the source, the
    flipped check is not part of that load's own evidence, and no call
    or redefinition intervenes.  The verifier must then see a private
    value stored to public memory."""
    if ctx.scheme != "mpx":
        return []
    sites = []
    seen: set[int] = set()
    for leader, end in ctx.blocks():
        for acc in _scan_block(ctx, leader, end):
            if acc.kind != "store" or acc.region != "priv":
                continue
            if len(acc.covering) != 1:
                continue
            (caddr,) = acc.covering
            if caddr in seen or ctx.code[caddr].bnd != 1:
                continue
            load = acc.src_def
            if (
                load is None
                or load.region != "priv"
                or caddr in load.covering
            ):
                continue
            seen.add(caddr)
            sites.append(
                Site(
                    "flip-store-guard",
                    caddr,
                    f"retarget the bnd1 check @{caddr} at bnd0; the "
                    f"store @{acc.addr} writes the private load "
                    f"@{load.addr}",
                    ("store-taint-mismatch",),
                )
            )
    return sites


def _apply_flip_bnd(binary: Binary, site: Site) -> None:
    binary.code[site.index].bnd ^= 1


# ---------------------------------------------------------------------------
# 2. Segmentation prefixes (seg scheme)


def _seg_operand_sites(ctx: _Context, name: str, what: str) -> list[Site]:
    if ctx.scheme != "seg":
        return []
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        mem = getattr(insn, "mem", None)
        if (
            isinstance(insn, (isa.Load, isa.Store, isa.Lea))
            and mem is not None
            and mem.seg is not None
            and mem.base is not None
            and mem.abs is None
        ):
            sites.append(
                Site(
                    name,
                    addr,
                    f"{what} on the {type(insn).__name__.lower()} @{addr}",
                    ("unprefixed-operand",),
                )
            )
    return sites


def _find_strip_prefix(ctx: _Context) -> list[Site]:
    return _seg_operand_sites(
        ctx, "strip-seg-prefix", "strip the fs/gs prefix"
    )


def _apply_strip_prefix(binary: Binary, site: Site) -> None:
    mem = binary.code[site.index].mem
    mem.seg = None
    mem.use32 = False


def _find_widen_subreg(ctx: _Context) -> list[Site]:
    return _seg_operand_sites(
        ctx, "widen-subregister", "widen the 32-bit sub-register to 64 bits"
    )


def _apply_widen_subreg(binary: Binary, site: Site) -> None:
    binary.code[site.index].mem.use32 = False


def _find_swap_store_segment(ctx: _Context) -> list[Site]:
    """gs -> fs on a store whose source a same-block gs load proves
    private: the private value would land in public memory."""
    if ctx.scheme != "seg":
        return []
    sites = []
    for leader, end in ctx.blocks():
        for acc in _scan_block(ctx, leader, end):
            if (
                acc.kind == "store"
                and acc.mem.seg == isa.SEG_GS
                and acc.src_def is not None
                and acc.src_def.region == "priv"
            ):
                sites.append(
                    Site(
                        "swap-store-segment",
                        acc.addr,
                        f"retarget the private store @{acc.addr} (fed by "
                        f"the gs load @{acc.src_def.addr}) from gs to fs",
                        ("store-taint-mismatch",),
                    )
                )
    return sites


def _apply_swap_segment(binary: Binary, site: Site) -> None:
    binary.code[site.index].mem.seg = isa.SEG_FS


# ---------------------------------------------------------------------------
# 3. Magic words: taint bits, forgeries, clones


def _find_flip_entry_ret_bit(ctx: _Context) -> list[Site]:
    """Flip the return-taint bit of an MCall word.  The procedure's own
    CFI return sequence still checks the original bit, so the entry
    magic and the return check must disagree (and any direct call site
    targeting the procedure must disagree with its return-site word)."""
    return [
        Site(
            "flip-mcall-ret-bit",
            entry,
            f"flip the entry magic's return-taint bit @{entry}",
            ("return-taint-mismatch", "return-site-taint-mismatch"),
        )
        for entry, _ in ctx.procs
    ]


def _apply_flip_magic_bit4(binary: Binary, site: Site) -> None:
    binary.code[site.index].value ^= 0x10


def _find_flip_ret_site_bit(ctx: _Context) -> list[Site]:
    """Flip the taint bit of a return-site MRet word: the verifier
    re-derives the callee's return taint and must spot the mismatch."""
    sites = []
    for addr in sorted(ctx.reachable):
        word = ctx.code[addr]
        if (
            isinstance(word, isa.MagicWord)
            and word.kind == "ret"
            and isinstance(ctx.code[addr - 1], (isa.CallD, isa.CallI))
        ):
            sites.append(
                Site(
                    "flip-mret-site-bit",
                    addr,
                    f"flip the return-site taint bit @{addr}",
                    ("return-site-taint-mismatch",),
                )
            )
    return sites


def _apply_flip_magic_bit0(binary: Binary, site: Site) -> None:
    binary.code[site.index].value ^= 0x1


def _plain_sites(ctx: _Context) -> Iterator[int]:
    """Reachable simple instructions whose replacement cannot be
    confused with breaking an adjacent multi-word pattern."""
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if not isinstance(insn, _SIMPLE_INSNS):
            continue
        prev = ctx.code[addr - 1] if addr > 0 else None
        if isinstance(prev, isa.CheckMagic):
            continue
        if (
            isinstance(prev, isa.Alu)
            and prev.dst == regs.RSP
            and prev.op == "sub"
        ):
            continue
        yield addr


def _find_forge_ret_magic(ctx: _Context) -> list[Site]:
    """Forge a ret-kind magic word carrying the *MCall* prefix: a
    CFI-check-passing indirect-call target that is not a procedure
    entry.  The uniqueness scan skips MagicWord instances, so only the
    magic placement check can catch it."""
    return [
        Site(
            "forge-ret-magic",
            addr,
            f"plant an MCall-prefixed ret-kind word @{addr}",
            ("bad-magic-word",),
        )
        for addr in _plain_sites(ctx)
    ]


def _apply_forge_ret_magic(binary: Binary, site: Site) -> None:
    word = isa.MagicWord("ret", 0)
    word.value = (binary.mcall_prefix << 5) | 0x1F
    binary.code[site.index] = word


def _find_clone_ret_magic(ctx: _Context) -> list[Site]:
    """Clone a legitimate MRet word into the middle of a block: a spare
    landing pad for a corrupted return address."""
    return [
        Site(
            "clone-ret-magic",
            addr,
            f"clone an MRet word into the block body @{addr}",
            ("stray-ret-magic",),
        )
        for addr in _plain_sites(ctx)
    ]


def _apply_clone_ret_magic(binary: Binary, site: Site) -> None:
    word = isa.MagicWord("ret", 0)
    word.value = binary.mret_prefix << 5
    binary.code[site.index] = word


def _find_forge_call_magic(ctx: _Context) -> list[Site]:
    """A call-kind word whose value does not carry the MCall prefix:
    the placement scan must reject it outright."""
    return [
        Site(
            "forge-call-magic",
            addr,
            f"plant a wrong-prefix call-kind word @{addr}",
            ("bad-magic-word",),
        )
        for addr in _plain_sites(ctx)
    ]


def _apply_forge_call_magic(binary: Binary, site: Site) -> None:
    word = isa.MagicWord("call", 0)
    word.value = ((binary.mcall_prefix ^ 0x3) << 5) | 0x1F
    binary.code[site.index] = word


def _find_clobber_prefix(ctx: _Context) -> list[Site]:
    """Declare some ordinary word's encoding to *be* the magic prefix
    (equivalently: a linker that chose a non-unique magic).  The
    uniqueness scan is the only line of defence."""
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if not isinstance(insn, isa.MagicWord):
            return [
                Site(
                    "clobber-magic-prefix",
                    addr,
                    f"declare the encoding of the word @{addr} to be the "
                    "mcall prefix",
                    ("magic-not-unique", "bad-magic-word"),
                )
            ]
    return []


def _apply_clobber_prefix(binary: Binary, site: Site) -> None:
    binary.mcall_prefix = binary.code[site.index].encoding() >> 5


# ---------------------------------------------------------------------------
# 4. Calls and returns


def _find_redirect_call(ctx: _Context) -> list[Site]:
    """Redirect a direct call one word past its target's entry — past
    the magic word, so the callee-side taint contract is never
    established.  Calls to import stubs are excluded: stubs are
    contiguous one-word slots, so ``+1`` could name the *next* stub, a
    legitimate callee."""
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if isinstance(insn, isa.CallD) and insn.addr not in ctx.stub_addrs:
            sites.append(
                Site(
                    "redirect-direct-call",
                    addr,
                    f"retarget the call @{addr} one word past the entry",
                    ("call-to-non-procedure",),
                )
            )
    return sites


def _apply_redirect_call(binary: Binary, site: Site) -> None:
    binary.code[site.index].addr += 1


def _find_drop_icall_check(ctx: _Context) -> list[Site]:
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if isinstance(insn, isa.CheckMagic) and insn.kind == "call":
            sites.append(
                Site(
                    "drop-icall-check",
                    addr,
                    f"erase the CheckMagic before the indirect call @{addr}",
                    ("unchecked-indirect-call",),
                )
            )
    return sites


def _find_retarget_icall_check(ctx: _Context) -> list[Site]:
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if isinstance(insn, isa.CheckMagic) and insn.kind == "call":
            sites.append(
                Site(
                    "retarget-icall-check",
                    addr,
                    f"point the CheckMagic @{addr} at a non-MCall word",
                    ("bad-icall-check",),
                )
            )
    return sites


def _apply_retarget_icall_check(binary: Binary, site: Site) -> None:
    # Flip a bit inside the 59-bit prefix portion of the expected word.
    binary.code[site.index].inv_value ^= 1 << 6


def _find_flip_icall_ret_bit(ctx: _Context) -> list[Site]:
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if isinstance(insn, isa.CheckMagic) and insn.kind == "call":
            sites.append(
                Site(
                    "flip-icall-ret-bit",
                    addr,
                    f"flip the expected return-taint bit of the "
                    f"indirect-call check @{addr}",
                    ("return-site-taint-mismatch",),
                )
            )
    return sites


def _apply_flip_icall_ret_bit(binary: Binary, site: Site) -> None:
    binary.code[site.index].inv_value ^= 1 << 4


def _find_break_ret_sequence(ctx: _Context) -> list[Site]:
    """Perturb the ``jmp reg+1`` tail of the CFI return so execution
    would resume at the wrong offset from the checked MRet word."""
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if (
            isinstance(insn, isa.JmpReg)
            and insn.skip == 1
            and isinstance(ctx.code[addr - 1], isa.CheckMagic)
        ):
            sites.append(
                Site(
                    "break-ret-sequence",
                    addr,
                    f"change the return jmp skip @{addr} from 1 to 2",
                    ("ret-check-pattern",),
                )
            )
    return sites


def _apply_break_ret_sequence(binary: Binary, site: Site) -> None:
    binary.code[site.index].skip = 2


def _find_drop_ret_check(ctx: _Context) -> list[Site]:
    """Erase the CheckMagic of the return sequence: the naked register
    jump that remains is an uncontrolled indirect jump."""
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if (
            isinstance(insn, isa.CheckMagic)
            and insn.kind == "ret"
            and isinstance(ctx.code[addr - 1], isa.Pop)
        ):
            sites.append(
                Site(
                    "drop-ret-check",
                    addr,
                    f"erase the return-sequence CheckMagic @{addr}",
                    ("indirect-jump",),
                )
            )
    return sites


# ---------------------------------------------------------------------------
# 5. Stack discipline


def _find_skip_chkstk(ctx: _Context) -> list[Site]:
    if not ctx.binary.config.chkstk:
        return []
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        prev = ctx.code[addr - 1] if addr > 0 else None
        if (
            isinstance(insn, isa.ChkStk)
            and isinstance(prev, isa.Alu)
            and prev.dst == regs.RSP
            and prev.op == "sub"
        ):
            sites.append(
                Site(
                    "skip-chkstk",
                    addr,
                    f"skip the chkstk after the frame extension @{addr - 1}",
                    ("missing-chkstk",),
                )
            )
    return sites


def _apply_skip_chkstk(binary: Binary, site: Site) -> None:
    # Cannot NOP with ChkStk here (it *is* one); this ALU self-add is
    # dataflow-neutral (r10's taint maps to itself).
    binary.code[site.index] = isa.Alu("add", regs.R10, regs.R10, isa.Imm(0))


def _find_rsp_nonconstant(ctx: _Context) -> list[Site]:
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if (
            isinstance(insn, isa.Alu)
            and insn.dst == regs.RSP
            and insn.op in ("add", "sub")
            and isinstance(insn.b, isa.Imm)
        ):
            sites.append(
                Site(
                    "perturb-rsp-delta",
                    addr,
                    f"make the rsp adjustment @{addr} data-dependent",
                    ("rsp-non-constant-arith",),
                )
            )
    return sites


def _apply_rsp_nonconstant(binary: Binary, site: Site) -> None:
    binary.code[site.index].b = regs.R11


def _find_rsp_overwrite(ctx: _Context) -> list[Site]:
    return [
        Site(
            "rsp-overwrite",
            addr,
            f"replace the instruction @{addr} with `mov rsp, r11`",
            ("rsp-overwrite",),
        )
        for addr in _plain_sites(ctx)
    ]


def _apply_rsp_overwrite(binary: Binary, site: Site) -> None:
    binary.code[site.index] = isa.MovRR(regs.RSP, regs.R11)


# ---------------------------------------------------------------------------
# 6. Control-flow escapes


def _find_insert_indirect_jump(ctx: _Context) -> list[Site]:
    return [
        Site(
            "insert-indirect-jump",
            addr,
            f"replace the instruction @{addr} with `jmp r11`",
            ("indirect-jump",),
        )
        for addr in _plain_sites(ctx)
    ]


def _apply_insert_indirect_jump(binary: Binary, site: Site) -> None:
    binary.code[site.index] = isa.JmpReg(regs.R11, 0)


def _find_segment_write(ctx: _Context) -> list[Site]:
    return [
        Site(
            "segment-register-write",
            addr,
            f"replace the instruction @{addr} with `mov gs, r11`",
            ("segment-register-write",),
        )
        for addr in _plain_sites(ctx)
    ]


def _apply_segment_write(binary: Binary, site: Site) -> None:
    binary.code[site.index] = isa.MovRR(regs.GS, regs.R11)


def _find_retarget_jump(ctx: _Context) -> list[Site]:
    """Point a direct jump outside its procedure."""
    sites = []
    for addr in sorted(ctx.reachable):
        insn = ctx.code[addr]
        if isinstance(insn, (isa.Jmp, isa.Br)):
            sites.append(
                Site(
                    "retarget-jump",
                    addr,
                    f"point the jump @{addr} outside every procedure",
                    ("jump-outside-procedure",),
                )
            )
    return sites


def _apply_retarget_jump(binary: Binary, site: Site) -> None:
    binary.code[site.index].addr = len(binary.code) + 17


def _find_retarget_stub(ctx: _Context) -> list[Site]:
    sites = []
    for name, addr in sorted(ctx.binary.label_addrs.items()):
        if name.startswith("stub.") and isinstance(ctx.code[addr], isa.JmpInd):
            sites.append(
                Site(
                    "retarget-stub",
                    addr,
                    f"point the import stub {name} outside the externals "
                    "table",
                    ("bad-stub",),
                )
            )
    return sites


def _apply_retarget_stub(binary: Binary, site: Site) -> None:
    binary.code[site.index].mem.abs += 4096


# ---------------------------------------------------------------------------
# Registry


MUTATION_OPERATORS: list[Operator] = [
    Operator("drop-bound-check", _find_drop_bndchk, _apply_nop_out),
    Operator("flip-store-guard", _find_flip_store_guard, _apply_flip_bnd),
    Operator("strip-seg-prefix", _find_strip_prefix, _apply_strip_prefix),
    Operator("widen-subregister", _find_widen_subreg, _apply_widen_subreg),
    Operator(
        "swap-store-segment", _find_swap_store_segment, _apply_swap_segment
    ),
    Operator(
        "flip-mcall-ret-bit", _find_flip_entry_ret_bit, _apply_flip_magic_bit4
    ),
    Operator(
        "flip-mret-site-bit", _find_flip_ret_site_bit, _apply_flip_magic_bit0
    ),
    Operator("forge-ret-magic", _find_forge_ret_magic, _apply_forge_ret_magic),
    Operator("clone-ret-magic", _find_clone_ret_magic, _apply_clone_ret_magic),
    Operator(
        "forge-call-magic", _find_forge_call_magic, _apply_forge_call_magic
    ),
    Operator(
        "clobber-magic-prefix", _find_clobber_prefix, _apply_clobber_prefix
    ),
    Operator(
        "redirect-direct-call", _find_redirect_call, _apply_redirect_call
    ),
    Operator("drop-icall-check", _find_drop_icall_check, _apply_nop_out),
    Operator(
        "retarget-icall-check",
        _find_retarget_icall_check,
        _apply_retarget_icall_check,
    ),
    Operator(
        "flip-icall-ret-bit",
        _find_flip_icall_ret_bit,
        _apply_flip_icall_ret_bit,
    ),
    Operator(
        "break-ret-sequence",
        _find_break_ret_sequence,
        _apply_break_ret_sequence,
    ),
    Operator("drop-ret-check", _find_drop_ret_check, _apply_nop_out),
    Operator("skip-chkstk", _find_skip_chkstk, _apply_skip_chkstk),
    Operator(
        "perturb-rsp-delta", _find_rsp_nonconstant, _apply_rsp_nonconstant
    ),
    Operator("rsp-overwrite", _find_rsp_overwrite, _apply_rsp_overwrite),
    Operator(
        "insert-indirect-jump",
        _find_insert_indirect_jump,
        _apply_insert_indirect_jump,
    ),
    Operator(
        "segment-register-write", _find_segment_write, _apply_segment_write
    ),
    Operator("retarget-jump", _find_retarget_jump, _apply_retarget_jump),
    Operator("retarget-stub", _find_retarget_stub, _apply_retarget_stub),
]

_BY_NAME = {op.name: op for op in MUTATION_OPERATORS}


def operator_names() -> list[str]:
    return [op.name for op in MUTATION_OPERATORS]


def enumerate_sites(binary: Binary) -> list[Site]:
    """All ground-truth-unsound mutation sites of a verified binary, in
    deterministic (operator, code address) order."""
    ctx = _Context(binary)
    sites: list[Site] = []
    for op in MUTATION_OPERATORS:
        sites.extend(op.find(ctx))
    return sites


def apply_site(binary: Binary, site: Site) -> Mutant:
    """Deep-copy the binary and apply one mutation."""
    clone = copy.deepcopy(binary)
    _BY_NAME[site.operator].apply(clone, site)
    return Mutant(site, clone)


def build_mutant(binary: Binary, operator: str, index: int) -> Mutant:
    """Rebuild a specific mutant from its (operator, code address) pair
    — the corpus replay path.  Raises when the pair no longer names a
    site (e.g. codegen changed since the case was recorded)."""
    op = _BY_NAME.get(operator)
    if op is None:
        raise ValueError(f"unknown mutation operator {operator!r}")
    ctx = _Context(binary)
    for site in op.find(ctx):
        if site.index == index:
            return apply_site(binary, site)
    raise ValueError(
        f"no {operator!r} site at code address {index} in this binary"
    )


def enumerate_mutants(binary: Binary) -> Iterator[Mutant]:
    """Yield every mutant of a binary (one deep copy per mutant)."""
    for site in enumerate_sites(binary):
        yield apply_site(binary, site)
