"""The checked-in fuzzing corpus: findings frozen as regression tests.

A corpus case is one JSON file under ``tests/fuzz/corpus/`` recording
either a *program* case (a MiniC body that every differential oracle
must keep passing) or a *mutation* case (a program + one mutation site
that ConfVerify must keep killing, with the expected rejection
reasons).  Replay is fully deterministic — no random generation — so
the corpus doubles as the tier-1 regression net for the fuzzing
subsystem: ``python -m repro fuzz --engine corpus --corpus DIR``.

Cases are produced two ways: seeded from a long fuzzing run (see
docs/FUZZING.md) and frozen by hand from minimized findings.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

from ..config import ALL_CONFIGS
from ..errors import ReproError, VerifyError
from ..obs import events
from ..runtime.trusted import T_PROTOTYPES
from ..verifier.verify import verify_binary
from .harness import Finding, FuzzReport, check_program
from .mutate import build_mutant


@dataclass
class CorpusCase:
    """One frozen regression case."""

    name: str
    engine: str  # "program" | "mutation"
    source: str  # body-only MiniC (T prototypes are prepended on build)
    config: str | None = None  # build config name for mutation cases
    operator: str | None = None  # mutation operator name
    site: int | None = None  # site index within that operator
    expected: tuple[str, ...] = ()  # acceptable VerifyError reasons
    note: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusCase":
        data = dict(data)
        data["expected"] = tuple(data.get("expected") or ())
        return cls(**data)


def save_case(case: CorpusCase, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{case.name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(case.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus(directory: str) -> list[CorpusCase]:
    if not os.path.isdir(directory):
        raise ReproError(f"no corpus directory at {directory}")
    cases = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json"):
            continue
        with open(os.path.join(directory, entry), encoding="utf-8") as fh:
            cases.append(CorpusCase.from_dict(json.load(fh)))
    return cases


def _compile_case(case: CorpusCase):
    from ..compiler import compile_source

    config = ALL_CONFIGS.get(case.config or "")
    if config is None:
        raise ReproError(
            f"corpus case {case.name}: unknown config {case.config!r}"
        )
    return compile_source(T_PROTOTYPES + case.source, config)


def replay_case(case: CorpusCase) -> list[Finding]:
    """Re-run one corpus case; [] means it still passes."""
    findings: list[Finding] = []
    if case.engine == "program":
        for kind, detail in check_program(case.source):
            findings.append(
                Finding(
                    engine="corpus",
                    kind=kind,
                    detail=f"{case.name}: {detail}",
                    source=case.source,
                )
            )
        return findings
    if case.engine != "mutation":
        raise ReproError(
            f"corpus case {case.name}: unknown engine {case.engine!r}"
        )
    binary = _compile_case(case)
    try:
        verify_binary(binary)
    except VerifyError as err:
        return [
            Finding(
                engine="corpus",
                kind="corpus-stale",
                detail=f"{case.name}: unmutated build no longer verifies "
                f"({err.reason}) — regenerate this case",
                config=case.config,
                source=case.source,
            )
        ]
    try:
        mutant = build_mutant(binary, case.operator, case.site or 0)
    except ValueError as err:
        return [
            Finding(
                engine="corpus",
                kind="corpus-stale",
                detail=f"{case.name}: mutation site vanished ({err}) — "
                "regenerate this case",
                config=case.config,
                operator=case.operator,
                site=case.site,
                source=case.source,
            )
        ]
    try:
        verify_binary(mutant.binary)
    except VerifyError as err:
        if case.expected and err.reason not in case.expected:
            findings.append(
                Finding(
                    engine="corpus",
                    kind="kill-misattributed",
                    detail=f"{case.name}: killed for {err.reason!r}, "
                    f"expected one of {case.expected}",
                    config=case.config,
                    operator=case.operator,
                    site=case.site,
                    expected=case.expected,
                    source=case.source,
                )
            )
        return findings
    findings.append(
        Finding(
            engine="corpus",
            kind="mutant-survived",
            detail=f"{case.name}: {case.operator} @{case.site} now "
            "survives ConfVerify — a soundness regression",
            config=case.config,
            operator=case.operator,
            site=case.site,
            expected=case.expected,
            source=case.source,
        )
    )
    return findings


def replay_corpus(directory: str) -> FuzzReport:
    """Replay every case in a corpus directory as one report."""
    report = FuzzReport(engine="corpus", seed=0)
    for case in load_corpus(directory):
        events.counter("fuzz.corpus", engine=case.engine).inc()
        report.iterations += 1
        case_findings = replay_case(case)
        if case.engine == "mutation":
            report.mutants_total += 1
            survived = any(
                f.kind == "mutant-survived" for f in case_findings
            )
            if not survived and not any(
                f.kind == "corpus-stale" for f in case_findings
            ):
                report.mutants_killed += 1
            report.kills_misattributed += sum(
                1 for f in case_findings if f.kind == "kill-misattributed"
            )
        report.findings.extend(case_findings)
    return report


@dataclass
class _SeedSpec:
    """What `seed_corpus` freezes from a run (internal helper)."""

    seeds: tuple[int, ...]
    size: int
    per_operator: int = 1


def seed_corpus(
    directory: str,
    seeds: tuple[int, ...] = tuple(range(6)),
    size: int = 12,
    per_operator: int = 2,
) -> list[CorpusCase]:
    """Freeze a deterministic corpus from generated programs.

    Picks up to ``per_operator`` mutation sites for every operator
    (across both verified configs), plus one program case per seed,
    verifying at freeze time that each mutant is killed with one of its
    expected reasons.  Used once to seed ``tests/fuzz/corpus/``; kept
    in-tree so the corpus can be regenerated after codegen changes.
    """
    from ..compiler import compile_source
    from ..config import OUR_MPX, OUR_SEG
    from .gen import generate_source
    from .harness import _strip_prototypes
    from .mutate import enumerate_sites

    cases: list[CorpusCase] = []
    picked: dict[tuple[str, str], int] = {}
    for seed in seeds:
        body = _strip_prototypes(generate_source(seed, size))
        cases.append(
            CorpusCase(
                name=f"program-seed{seed:03d}",
                engine="program",
                source=body,
                note=f"generate_source(seed={seed}, size={size})",
            )
        )
        for config in (OUR_MPX, OUR_SEG):
            binary = compile_source(T_PROTOTYPES + body, config)
            verify_binary(binary)
            for site in enumerate_sites(binary):
                key = (config.name, site.operator)
                if picked.get(key, 0) >= per_operator:
                    continue
                mutant = build_mutant(binary, site.operator, site.index)
                try:
                    verify_binary(mutant.binary)
                except VerifyError as err:
                    if err.reason not in site.expected:
                        continue  # only freeze cleanly-attributed kills
                else:
                    continue  # never freeze a survivor as a regression
                picked[key] = picked.get(key, 0) + 1
                slug = site.operator.replace("_", "-")
                cases.append(
                    CorpusCase(
                        name=f"mutation-{config.name.lower()}-{slug}-"
                        f"s{seed:03d}i{site.index:03d}",
                        engine="mutation",
                        source=body,
                        config=config.name,
                        operator=site.operator,
                        site=site.index,
                        expected=site.expected,
                        note=site.description,
                    )
                )
    for case in cases:
        save_case(case, directory)
    return cases
