"""Seeded random well-typed MiniC program generator.

The source-level sibling of ``formal/gen.py``: where the formal
generator emits abstract commands with their Γ annotations, this one
emits *compilable MiniC* that is well-typed by construction —

* every branch/loop condition is public (strict mode holds);
* private values flow only into private sinks (locals, private
  globals/arrays, private heap blocks) or nowhere;
* every array/heap index is masked to the object's bounds, so the
  program is memory-safe and must behave identically under every
  build configuration;
* loops are bounded and there is no recursion, so every program
  terminates.

That makes generated programs usable as differential-testing inputs:
Base, OurMPX and OurSeg must produce the same exit code and the same
observable output, both machine engines must agree cycle-for-cycle,
and ConfVerify must accept the instrumented builds.  Any disagreement
is a toolchain bug, reproducible from the generating seed alone.
"""

from __future__ import annotations

import random

from ..runtime.trusted import T_PROTOTYPES

_BINOPS = ("+", "-", "*", "&", "|", "^")
_CMPOPS = ("<", "<=", ">", ">=", "==", "!=")

DEFAULT_SIZE = 12


class _Builder:
    def __init__(self, rng: random.Random, size: int):
        self.rng = rng
        self.size = max(3, size)
        self.lines: list[str] = []
        self.indent = 0
        # (name, is_private) int variables visible in the current scope.
        self.scopes: list[list[tuple[str, bool]]] = []
        self.counter = 0
        self.helpers: list[str] = []  # helper function names: int f(int,int)
        self.has_apply = False

    # -- emission -------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def push_scope(self) -> None:
        self.scopes.append([])

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, private: bool) -> None:
        self.scopes[-1].append((name, private))

    def visible(self, private: bool | None = None) -> list[str]:
        names = []
        for scope in self.scopes:
            for name, is_priv in scope:
                if private is None or is_priv == private:
                    names.append(name)
        return names

    # -- expressions ----------------------------------------------------

    def expr(self, private: bool, depth: int = 0) -> str:
        """A MiniC int expression of the requested taint.

        Public expressions use only public atoms; private expressions
        may mix (public data flows upward for free).
        """
        rng = self.rng
        if depth >= 3 or rng.random() < 0.35:
            return self.atom(private)
        roll = rng.random()
        if roll < 0.70:
            op = rng.choice(_BINOPS)
            a = self.expr(private, depth + 1)
            b = self.expr(private, depth + 1)
            return f"({a} {op} {b})"
        if roll < 0.85:
            op = rng.choice(("<<", ">>"))
            return f"({self.expr(private, depth + 1)} {op} {rng.randrange(1, 6)})"
        # Comparison produces 0/1 of its operands' taint.
        op = rng.choice(_CMPOPS)
        a = self.expr(private, depth + 1)
        b = self.expr(private, depth + 1)
        return f"({a} {op} {b})"

    def atom(self, private: bool) -> str:
        rng = self.rng
        candidates = self.visible(private=False)
        if private:
            candidates = candidates + self.visible(private=True)
        if candidates and rng.random() < 0.7:
            return rng.choice(candidates)
        return str(rng.randrange(0, 64))

    def condition(self) -> str:
        """A public branch condition (strict mode: no private branches)."""
        op = self.rng.choice(_CMPOPS)
        return f"({self.expr(False, 1)} {op} {self.expr(False, 1)})"

    def index(self, size: int) -> str:
        """An always-in-bounds index expression (two's-complement `&`
        keeps even negative subexpressions inside [0, size))."""
        assert size & (size - 1) == 0, "array sizes are powers of two"
        return f"({self.expr(False, 1)} & {size - 1})"

    # -- statements -----------------------------------------------------

    def stmt_decl(self) -> None:
        if self.rng.random() < 0.3:
            name = self.fresh("s")
            self.emit(f"private int {name} = {self.expr(True)};")
            self.declare(name, True)
        else:
            name = self.fresh("x")
            self.emit(f"int {name} = {self.expr(False)};")
            self.declare(name, False)

    def stmt_assign(self) -> None:
        priv_targets = self.visible(private=True)
        pub_targets = self.visible(private=False)
        if priv_targets and self.rng.random() < 0.35:
            target = self.rng.choice(priv_targets)
            self.emit(f"{target} = {self.expr(True)};")
        elif pub_targets:
            target = self.rng.choice(pub_targets)
            self.emit(f"{target} = {self.expr(False)};")
        else:
            self.stmt_decl()

    def stmt_array(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.4:
            self.emit(f"g_nums[{self.index(16)}] = {self.expr(False)};")
        elif roll < 0.6:
            self.emit(f"g_snums[{self.index(16)}] = {self.expr(True)};")
        elif roll < 0.8:
            self.emit(
                f"g_pbuf[{self.index(32)}] = "
                f"(char)({self.expr(False)} & 255);"
            )
        else:
            self.emit(
                f"g_sbuf[{self.index(32)}] = "
                f"(private char)({self.expr(True)} & 255);"
            )

    def stmt_array_load(self) -> None:
        rng = self.rng
        if rng.random() < 0.5:
            name = self.fresh("x")
            src = rng.choice(
                (f"g_nums[{self.index(16)}]", f"g_pbuf[{self.index(32)}]")
            )
            self.emit(f"int {name} = {src};")
            self.declare(name, False)
        else:
            name = self.fresh("s")
            src = rng.choice(
                (f"g_snums[{self.index(16)}]",
                 f"(private int)g_sbuf[{self.index(32)}]")
            )
            self.emit(f"private int {name} = {src};")
            self.declare(name, True)

    def stmt_if(self, budget: int) -> None:
        self.emit(f"if {self.condition()} {{")
        self.indent += 1
        self.push_scope()
        self.block(max(1, budget // 2))
        self.pop_scope()
        self.indent -= 1
        if self.rng.random() < 0.5:
            self.emit("} else {")
            self.indent += 1
            self.push_scope()
            self.block(max(1, budget // 2))
            self.pop_scope()
            self.indent -= 1
        self.emit("}")

    def stmt_for(self, budget: int) -> None:
        var = self.fresh("i")
        bound = self.rng.randrange(2, 7)
        self.emit(f"for (int {var} = 0; {var} < {bound}; {var} += 1) {{")
        self.indent += 1
        self.push_scope()
        self.declare(var, False)
        self.block(max(1, budget // 2))
        self.pop_scope()
        self.indent -= 1
        self.emit("}")

    def stmt_while(self, budget: int) -> None:
        var = self.fresh("w")
        bound = self.rng.randrange(2, 6)
        self.emit(f"int {var} = {bound};")
        self.emit(f"while ({var} > 0) {{")
        self.indent += 1
        self.push_scope()
        self.declare(var, False)
        self.block(max(1, budget // 2))
        self.emit(f"{var} -= 1;")
        self.pop_scope()
        self.indent -= 1
        self.emit("}")

    def stmt_call(self) -> None:
        if not self.helpers:
            self.stmt_assign()
            return
        fn = self.rng.choice(self.helpers)
        a, b = self.expr(False, 1), self.expr(False, 1)
        if self.has_apply and self.rng.random() < 0.4:
            call = f"fn_apply({fn}, {a}, {b})"
        else:
            call = f"{fn}({a}, {b})"
        name = self.fresh("x")
        self.emit(f"int {name} = {call};")
        self.declare(name, False)

    def stmt_heap_copy(self) -> None:
        """A private heap-to-heap copy: the one statement shape whose
        instrumented code moves a privately-loaded register straight
        into a private store (the pattern the flip-store-guard and
        swap-store-segment mutation operators anchor on)."""
        src = self.fresh("hs")
        dst = self.fresh("hd")
        self.emit(f"private char *{src} = malloc_priv(32);")
        self.emit(f"private char *{dst} = malloc_priv(32);")
        self.emit(
            f"{src}[{self.index(32)}] = "
            f"(private char)({self.expr(True)} & 255);"
        )
        self.emit(f"{dst}[{self.index(32)}] = {src}[{self.index(32)}];")
        self.emit(f"free_priv({src});")
        self.emit(f"free_priv({dst});")

    def stmt_heap(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll >= 0.75:
            self.stmt_heap_copy()
            return
        ptr = self.fresh("hp")
        if roll < 0.45:
            self.emit(f"char *{ptr} = malloc_pub(32);")
            self.emit(f"{ptr}[{self.index(32)}] = "
                      f"(char)({self.expr(False)} & 255);")
            name = self.fresh("x")
            self.emit(f"int {name} = {ptr}[{self.index(32)}];")
            self.declare(name, False)
            self.emit(f"free_pub({ptr});")
        else:
            self.emit(f"private char *{ptr} = malloc_priv(32);")
            self.emit(f"{ptr}[{self.index(32)}] = "
                      f"(private char)({self.expr(True)} & 255);")
            name = self.fresh("s")
            self.emit(f"private int {name} = (private int){ptr}[{self.index(32)}];")
            self.declare(name, True)
            self.emit(f"free_priv({ptr});")

    def stmt_print(self) -> None:
        self.emit(f"print_int({self.expr(False)});")

    def block(self, budget: int) -> None:
        weighted = (
            (self.stmt_decl, 3),
            (self.stmt_assign, 3),
            (self.stmt_array, 3),
            (self.stmt_array_load, 2),
            (self.stmt_call, 2),
            (self.stmt_heap, 2),
            (self.stmt_print, 1),
        )
        choices = [fn for fn, w in weighted for _ in range(w)]
        remaining = budget
        while remaining > 0:
            if remaining >= 3 and self.rng.random() < 0.25:
                nested = self.rng.choice(
                    (self.stmt_if, self.stmt_for, self.stmt_while)
                )
                nested(remaining - 1)
                remaining -= 3
            else:
                self.rng.choice(choices)()
                remaining -= 1

    # -- top level ------------------------------------------------------

    def helper_function(self, name: str) -> None:
        self.emit(f"int {name}(int a, int b) {{")
        self.indent += 1
        self.push_scope()
        self.declare("a", False)
        self.declare("b", False)
        self.block(self.rng.randrange(2, 5))
        self.emit(f"return {self.expr(False)};")
        self.pop_scope()
        self.indent -= 1
        self.emit("}")
        self.emit("")

    def private_helper(self, name: str) -> None:
        self.emit(f"private int {name}(private int a, int b) {{")
        self.indent += 1
        self.push_scope()
        self.declare("a", True)
        self.declare("b", False)
        self.emit(f"private int acc = (a {self.rng.choice(_BINOPS)} b);")
        self.declare("acc", True)
        self.emit(f"return {self.expr(True)};")
        self.pop_scope()
        self.indent -= 1
        self.emit("}")
        self.emit("")

    def build(self) -> str:
        rng = self.rng
        # Globals: a public/private pair of int arrays and byte buffers,
        # plus a couple of scalars every function can touch.
        self.emit("int g_nums[16];")
        self.emit("private int g_snums[16];")
        self.emit("char g_pbuf[32];")
        self.emit("private char g_sbuf[32];")
        self.emit("int g_a;")
        self.emit("int g_b;")
        self.emit("private int g_secret;")
        self.emit("")
        self.push_scope()
        self.declare("g_a", False)
        self.declare("g_b", False)
        self.declare("g_secret", True)

        for _ in range(rng.randrange(1, 4)):
            name = self.fresh("fn_f")
            self.helper_function(name)
            self.helpers.append(name)
        priv_helper = None
        if rng.random() < 0.6:
            priv_helper = self.fresh("fn_p")
            self.private_helper(priv_helper)
        if rng.random() < 0.6:
            self.emit("int fn_apply(int (*f)(int, int), int a, int b) {")
            self.emit("    return f(a, b);")
            self.emit("}")
            self.emit("")
            self.has_apply = True

        self.emit("int main() {")
        self.indent += 1
        self.push_scope()
        self.block(self.size)
        if priv_helper is not None:
            self.emit(
                f"g_secret = {priv_helper}({self.expr(True, 1)}, "
                f"{self.expr(False, 1)});"
            )
        self.stmt_print()
        self.emit(f"return ({self.expr(False)}) & 127;")
        self.pop_scope()
        self.indent -= 1
        self.emit("}")
        return "\n".join(self.lines) + "\n"


def generate_source(seed: int, size: int = DEFAULT_SIZE) -> str:
    """Generate one well-typed MiniC program (with the T prototypes
    prepended, ready for ``compile_source``) from a seed.

    Deterministic: the same ``(seed, size)`` always yields the same
    source text, which is what makes every downstream finding
    reproducible from its seed alone.
    """
    rng = random.Random((seed << 8) ^ 0xF022)
    return T_PROTOTYPES + _Builder(rng, size).build()
