"""repro.fuzz: the adversarial fuzzing and mutation-kill harness.

Three engines share one seeded, reproducible harness (the same seed
always yields the same programs, the same mutants, and the same
verdicts):

* **program fuzzing** (:mod:`repro.fuzz.gen` + :func:`fuzz_programs`)
  generates random well-typed MiniC programs and differentially checks
  Base vs OurMPX vs OurSeg results, the predecoded vs reference
  machine engines, and cold-vs-warm object-cache builds;
* **binary mutation** (:mod:`repro.fuzz.mutate` + :func:`fuzz_mutants`)
  applies security-relevant mutations to verified binaries and asserts
  ConfVerify kills every mutant (the mutation-kill score);
* **minimization + corpus** (:mod:`repro.fuzz.minimize`,
  :mod:`repro.fuzz.corpus`) shrink findings and persist them as
  deterministic regression cases under ``tests/fuzz/corpus``.

See docs/FUZZING.md for the harness design and mutation taxonomy.
"""

from .corpus import CorpusCase, load_corpus, replay_corpus, save_case
from .gen import generate_source
from .harness import (
    FuzzReport,
    fuzz_mutants,
    fuzz_programs,
    run_fuzz,
)
from .minimize import ddmin_lines
from .mutate import MUTATION_OPERATORS, Mutant, enumerate_mutants

__all__ = [
    "generate_source",
    "fuzz_programs",
    "fuzz_mutants",
    "run_fuzz",
    "FuzzReport",
    "Mutant",
    "MUTATION_OPERATORS",
    "enumerate_mutants",
    "ddmin_lines",
    "CorpusCase",
    "load_corpus",
    "save_case",
    "replay_corpus",
]
