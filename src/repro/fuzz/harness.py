"""The seeded fuzzing harness: program differentials and mutation kills.

Two engines share this module:

* :func:`fuzz_programs` generates well-typed MiniC programs and checks
  every cross-cutting equivalence the toolchain promises — Base, OurMPX
  and OurSeg builds observe identically; the predecoded and reference
  machine engines agree cycle-for-cycle; cold and warm object-cache
  builds are byte-identical; ConfVerify accepts every instrumented
  build.
* :func:`fuzz_mutants` compiles each generated program under both
  instrumented schemes, applies every security-relevant mutation
  (:mod:`repro.fuzz.mutate`) and asserts ConfVerify kills 100% of the
  mutants.  A surviving mutant is a verifier soundness bug; the harness
  shrinks its program with :func:`repro.fuzz.minimize.ddmin_lines` and
  reports the minimized repro.
* :func:`fuzz_witnesses` runs the certified optimization passes (IR
  passes and the post-codegen check optimizer) over each generated
  program, then corrupts every emitted witness — stale digests, dropped
  or phantom obligations, flipped taints, garbled claims, shifted or
  self-referential edit scripts — and asserts the translation checkers
  (:func:`repro.opt.witness.check_witness`,
  :func:`repro.opt.checkopt.check_checkopt_witness`) reject 100% of the
  corruptions.  An accepted corruption is a checker soundness bug.

Everything is reproducible from ``(seed, n, size)`` alone: program i
uses generator seed ``seed + i``, builds are deterministic, and the
trusted runtime is seeded.  ``budget`` (wall-clock seconds) can stop a
run early; a truncated run checks a prefix of the same case sequence.

Findings carry body-only MiniC source (without the T prototypes); every
compile path here re-prepends :data:`repro.runtime.trusted.T_PROTOTYPES`.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field

from ..build.cache import ObjectCache
from ..build.serialize import dump_binary
from ..build.session import BuildSession
from ..compiler import compile_source
from ..config import BASE, OUR_MPX, OUR_SEG
from ..errors import MachineFault, ReproError, VerifyError
from ..link.loader import load as load_binary
from ..obs import events
from ..runtime.trusted import T_PROTOTYPES, TrustedRuntime
from ..verifier.verify import verify_binary
from .gen import DEFAULT_SIZE, generate_source
from .minimize import ddmin_lines
from .mutate import apply_site, enumerate_sites

DIFF_CONFIGS = (BASE, OUR_MPX, OUR_SEG)
VERIFIED_CONFIGS = (OUR_MPX, OUR_SEG)
ENGINES = ("predecoded", "superblock", "reference")

# The keys of an execution observation that must agree across *build
# configurations* (instrumentation may change cycle counts, never
# behaviour) — and, plus the performance keys, across machine engines.
_OBSERVABLE = ("exit", "fault", "stdout", "out")
_PERF = ("cycles", "instructions", "bnd_checks", "cfi_checks")


@dataclass
class Finding:
    """One reproducible failure the harness uncovered."""

    engine: str  # "program" | "mutation" | "corpus" | "witness"
    kind: str  # e.g. "config-divergence", "mutant-survived"
    detail: str
    seed: int | None = None
    config: str | None = None
    source: str | None = None  # minimized body-only MiniC repro
    operator: str | None = None
    site: int | None = None
    expected: tuple[str, ...] = ()

    def render(self) -> str:
        head = f"[{self.engine}] {self.kind}: {self.detail}"
        if self.seed is not None:
            head += f" (seed {self.seed})"
        if self.source:
            head += "\n--- minimized repro ---\n" + self.source.rstrip()
        return head


@dataclass
class FuzzReport:
    """The outcome of one harness run (one engine)."""

    engine: str
    seed: int
    iterations: int = 0
    mutants_total: int = 0
    mutants_killed: int = 0
    kills_misattributed: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def kill_score(self) -> float:
        if self.mutants_total == 0:
            return 1.0
        return self.mutants_killed / self.mutants_total

    def summary(self) -> str:
        lines = [
            f"fuzz.{self.engine}: seed={self.seed} "
            f"iterations={self.iterations} findings={len(self.findings)}"
        ]
        if self.engine in ("mutation", "corpus", "witness") \
                and self.mutants_total:
            lines.append(
                f"  mutation-kill: {self.mutants_killed}/"
                f"{self.mutants_total} ({self.kill_score:.1%}), "
                f"{self.kills_misattributed} kills misattributed"
            )
        return "\n".join(lines)


def _strip_prototypes(source: str) -> str:
    if source.startswith(T_PROTOTYPES):
        return source[len(T_PROTOTYPES):]
    return source


def _observe(binary, engine: str = "predecoded") -> dict:
    """Run a binary to completion and capture everything comparable."""
    runtime = TrustedRuntime()
    process = load_binary(binary, runtime=runtime, engine=engine)
    fault = None
    exit_code = None
    try:
        exit_code = process.run()
    except MachineFault as f:
        fault = f.kind
    return {
        "exit": exit_code,
        "fault": fault,
        "stdout": tuple(process.stdout),
        "out": runtime.channel(1).drain_out().hex(),
        "cycles": process.wall_cycles,
        "instructions": process.stats.instructions,
        "bnd_checks": process.stats.bnd_checks,
        "cfi_checks": process.stats.cfi_checks,
    }


def _project(obs: dict, keys: tuple[str, ...]) -> dict:
    return {k: obs[k] for k in keys}


def check_program(body: str) -> list[tuple[str, str]]:
    """All differential checks for one program; [(kind, detail)].

    Raises on malformed input (the caller decides whether a compile
    error is a finding or a rejected minimization candidate).
    """
    source = T_PROTOTYPES + body
    problems: list[tuple[str, str]] = []
    binaries = {}
    for config in DIFF_CONFIGS:
        binaries[config.name] = compile_source(source, config)
    for config in VERIFIED_CONFIGS:
        try:
            verify_binary(binaries[config.name])
        except VerifyError as err:
            problems.append(
                (
                    "verify-reject",
                    f"{config.name}: ConfVerify rejected the instrumented "
                    f"build: {err.reason}",
                )
            )
    base_obs = _observe(binaries[BASE.name])
    for config in VERIFIED_CONFIGS:
        obs = _observe(binaries[config.name])
        if _project(obs, _OBSERVABLE) != _project(base_obs, _OBSERVABLE):
            problems.append(
                (
                    "config-divergence",
                    f"{config.name} observes differently from Base: "
                    f"{_project(obs, _OBSERVABLE)} vs "
                    f"{_project(base_obs, _OBSERVABLE)}",
                )
            )
    for config in DIFF_CONFIGS:
        ref = _observe(binaries[config.name], engine="reference")
        for engine in ENGINES:
            if engine == "reference":
                continue
            fast = _observe(binaries[config.name], engine=engine)
            if fast != ref:
                keys = _OBSERVABLE + _PERF
                problems.append(
                    (
                        "engine-divergence",
                        f"{config.name}: {engine} vs reference disagree: "
                        f"{_project(fast, keys)} vs {_project(ref, keys)}",
                    )
                )
    for config in VERIFIED_CONFIGS:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
            cold = BuildSession(cache=ObjectCache(tmp)).build(source, config)
            warm = BuildSession(cache=ObjectCache(tmp)).build(source, config)
        plain = binaries[config.name]
        if not (
            dump_binary(cold) == dump_binary(warm) == dump_binary(plain)
        ):
            problems.append(
                (
                    "cache-divergence",
                    f"{config.name}: cold/warm/uncached builds are not "
                    "byte-identical",
                )
            )
    return problems


def _kinds_of(body: str) -> set[str]:
    """check_program kinds, with errors mapped to a synthetic kind so
    minimization predicates treat broken candidates as 'not failing'."""
    try:
        return {kind for kind, _ in check_program(body)}
    except Exception:
        return set()


def _minimize_program(body: str, kind: str) -> str:
    return ddmin_lines(body, lambda cand: kind in _kinds_of(cand))


def fuzz_programs(
    seed: int,
    n: int,
    size: int = DEFAULT_SIZE,
    minimize: bool = True,
    deadline: float | None = None,
) -> FuzzReport:
    """Differential-fuzz ``n`` generated programs; see the module doc."""
    report = FuzzReport(engine="program", seed=seed)
    for i in range(n):
        if deadline is not None and time.monotonic() > deadline:
            break
        case_seed = seed + i
        body = _strip_prototypes(generate_source(case_seed, size))
        events.counter("fuzz.programs").inc()
        report.iterations += 1
        for kind, detail in check_program(body):
            events.counter("fuzz.findings", kind=kind).inc()
            repro = _minimize_program(body, kind) if minimize else body
            report.findings.append(
                Finding(
                    engine="program",
                    kind=kind,
                    detail=detail,
                    seed=case_seed,
                    source=repro,
                )
            )
    return report


def _operator_survives(body: str, config, operator: str) -> bool:
    """Does some mutant of this operator survive verification on this
    program?  The minimization predicate for surviving mutants."""
    try:
        binary = compile_source(T_PROTOTYPES + body, config)
        verify_binary(binary)
    except Exception:
        return False
    for site in enumerate_sites(binary):
        if site.operator != operator:
            continue
        mutant = apply_site(binary, site)
        try:
            verify_binary(mutant.binary)
            return True
        except VerifyError:
            continue
    return False


def fuzz_mutants(
    seed: int,
    n: int,
    size: int = DEFAULT_SIZE,
    minimize: bool = True,
    deadline: float | None = None,
    stride: int = 1,
) -> FuzzReport:
    """Mutation-kill run over ``n`` generated programs × both verified
    configs × every mutation site; see the module doc.

    ``stride`` > 1 keeps every stride-th mutation site — a
    deterministic subsample for time-boxed runs (the kill assertion
    still covers every operator, since sites are grouped by operator
    and each common operator has many sites per binary).
    """
    report = FuzzReport(engine="mutation", seed=seed)
    for i in range(n):
        if deadline is not None and time.monotonic() > deadline:
            break
        case_seed = seed + i
        body = _strip_prototypes(generate_source(case_seed, size))
        report.iterations += 1
        for config in VERIFIED_CONFIGS:
            binary = compile_source(T_PROTOTYPES + body, config)
            try:
                verify_binary(binary)
            except VerifyError as err:
                # Not a mutation finding per se, but fatal: the
                # unmutated build must verify for kills to mean much.
                report.findings.append(
                    Finding(
                        engine="mutation",
                        kind="verify-reject",
                        detail=f"{config.name}: unmutated build rejected: "
                        f"{err.reason}",
                        seed=case_seed,
                        config=config.name,
                        source=body,
                    )
                )
                continue
            for site in enumerate_sites(binary)[::stride]:
                if deadline is not None and time.monotonic() > deadline:
                    break
                report.mutants_total += 1
                events.counter(
                    "fuzz.mutants", operator=site.operator
                ).inc()
                mutant = apply_site(binary, site)
                try:
                    verify_binary(mutant.binary)
                except VerifyError as err:
                    report.mutants_killed += 1
                    if err.reason in site.expected:
                        events.counter(
                            "fuzz.kills", outcome="expected"
                        ).inc()
                    else:
                        report.kills_misattributed += 1
                        events.counter(
                            "fuzz.kills", outcome="misattributed"
                        ).inc()
                    continue
                events.counter("fuzz.kills", outcome="survived").inc()
                repro = (
                    ddmin_lines(
                        body,
                        lambda cand: _operator_survives(
                            cand, config, site.operator
                        ),
                    )
                    if minimize
                    else body
                )
                report.findings.append(
                    Finding(
                        engine="mutation",
                        kind="mutant-survived",
                        detail=(
                            f"{config.name}: {site.operator} @{site.index} "
                            f"survived ConfVerify ({site.description})"
                        ),
                        seed=case_seed,
                        config=config.name,
                        source=repro,
                        operator=site.operator,
                        site=site.index,
                        expected=site.expected,
                    )
                )
    return report



# ---------------------------------------------------------------------------
# The witness engine: corrupted certification artifacts must be rejected.


def _corrupt_ir_witnesses(witness):
    """Yield ``(operator, corrupted)`` variants of an IR pass witness.

    Every variant is wrong by construction, so the checker accepting
    one is a soundness finding.  Obligations are shared (they are
    frozen); only the witness shell and the obligation list are copied.
    """
    from ..opt.witness import Obligation, Witness

    def clone(**overrides):
        w = Witness(
            witness.pass_name,
            witness.function,
            witness.origin,
            witness.pre_digest,
        )
        w.post_digest = witness.post_digest
        w.obligations = list(witness.obligations)
        for key, value in overrides.items():
            setattr(w, key, value)
        return w

    yield "stale-pre-digest", clone(pre_digest="0" * 64)
    yield "stale-post-digest", clone(post_digest="0" * 64)
    if witness.obligations:
        yield "drop-obligations", clone(obligations=[])
    phantom = clone()
    phantom.obligations.append(
        Obligation("taint", "__phantom__@0", ("rewrite", (), ()))
    )
    yield "phantom-obligation", phantom
    for i, ob in enumerate(witness.obligations):
        if ob.claim[:1] == ("rewrite",) and ob.claim[2]:
            flipped = clone()
            flipped.obligations[i] = Obligation(
                ob.kind,
                ob.site,
                (ob.claim[0], ob.claim[1], tuple(t ^ 1 for t in ob.claim[2])),
            )
            yield "taint-flip", flipped
            break
        if ob.claim[:1] == ("promoted",):
            flipped = clone()
            flipped.obligations[i] = Obligation(
                ob.kind, ob.site, (ob.claim[0], ob.claim[1], ob.claim[2] ^ 1)
            )
            yield "taint-flip", flipped
            break
    for i, ob in enumerate(witness.obligations):
        if ob.site.startswith("slot:") or ob.site.endswith("@init"):
            continue  # claim shape is keyed by site kind for these
        garbled = clone()
        garbled.obligations[i] = Obligation(
            ob.kind, ob.site, ("bogus-claim",)
        )
        yield "garble-claim", garbled
        break


def _corrupt_checkopt_witnesses(witness):
    """Yield ``(operator, corrupted)`` variants of a checkopt witness."""
    from ..opt.checkopt import CheckOptWitness

    def clone(**overrides):
        w = CheckOptWitness(
            witness.function, witness.pre_digest, witness.post_digest
        )
        w.edits = list(witness.edits)
        for key, value in overrides.items():
            setattr(w, key, value)
        return w

    yield "stale-pre-digest", clone(pre_digest="0" * 64)
    yield "stale-post-digest", clone(post_digest="0" * 64)
    yield "drop-edit", clone(edits=witness.edits[1:])
    first = witness.edits[0]
    shifted = clone()
    shifted.edits[0] = (first[0], first[1] + 1, *first[2:])
    yield "shift-edit", shifted
    for i, edit in enumerate(witness.edits):
        if edit[0] in ("elide", "dedup-lea"):
            selfref = clone()
            selfref.edits[i] = (edit[0], edit[1], edit[1])
            yield "self-provider", selfref
            doubled = clone()
            doubled.edits.append(edit)
            yield "double-delete", doubled
            break


def fuzz_witnesses(
    seed: int,
    n: int,
    size: int = DEFAULT_SIZE,
    deadline: float | None = None,
    stride: int = 1,
) -> FuzzReport:
    """Corrupted-witness kill run over ``n`` generated programs.

    Runs every certified pass (the five IR passes, then the post-
    codegen check optimizer) on each program, first asserting the
    honest witness is accepted, then asserting every corruption of it
    is rejected with :class:`~repro.opt.witness.WitnessError`.  A
    corruption the checker accepts — or crashes on — is a finding.
    ``stride`` > 1 corrupts every stride-th emitted witness (honest
    validation still covers all of them).
    """
    from ..backend.codegen import compile_module
    from ..frontend.lower import lower_program
    from ..minic.parser import parse as parse_minic
    from ..minic.sema import analyze
    from ..opt.checkopt import check_checkopt_witness, optimize_checks
    from ..opt.pipeline import CSE_LOCAL, ITER_PASSES, PROMOTE_SLOTS
    from ..opt.witness import (
        Witness,
        WitnessError,
        check_witness,
        function_digest,
        snapshot_function,
    )

    report = FuzzReport(engine="witness", seed=seed)
    config = OUR_MPX
    emitted = 0

    def corrupt(variants, checker, label):
        nonlocal emitted
        emitted += 1
        if (emitted - 1) % stride:
            return
        for operator, bad in variants:
            report.mutants_total += 1
            events.counter("fuzz.witness_mutants", operator=operator).inc()
            try:
                checker(bad)
            except WitnessError:
                report.mutants_killed += 1
                events.counter("fuzz.witness_kills", outcome="killed").inc()
                continue
            except Exception as err:  # checker must reject, not crash
                events.counter("fuzz.witness_kills", outcome="crash").inc()
                report.findings.append(
                    Finding(
                        engine="witness",
                        kind="checker-crash",
                        detail=f"{label}: {operator}: checker raised "
                        f"{type(err).__name__}: {err}",
                        seed=report.seed,
                        operator=operator,
                    )
                )
                continue
            events.counter("fuzz.witness_kills", outcome="survived").inc()
            report.findings.append(
                Finding(
                    engine="witness",
                    kind="corrupt-witness-accepted",
                    detail=f"{label}: corruption {operator} was accepted "
                    "by the translation checker",
                    seed=report.seed,
                    operator=operator,
                )
            )

    for i in range(n):
        if deadline is not None and time.monotonic() > deadline:
            break
        case_seed = seed + i
        source = T_PROTOTYPES + _strip_prototypes(
            generate_source(case_seed, size)
        )
        checked = analyze(
            parse_minic(source, "<fuzz>"),
            strict=config.strict,
            all_private=config.all_private,
        )
        module = lower_program(checked)
        report.iterations += 1
        passes = (PROMOTE_SLOTS,) + ITER_PASSES + (CSE_LOCAL,)
        for func in module.functions.values():
            for _round in range(8):
                changed_any = False
                for pass_obj in passes:
                    snapshot = snapshot_function(func)
                    witness = Witness(
                        pass_obj.name,
                        func.name,
                        func.origin,
                        function_digest(func),
                    )
                    if not pass_obj.fn(func, witness=witness):
                        continue
                    changed_any = True
                    witness.post_digest = function_digest(func)
                    try:
                        check_witness(witness, snapshot, func)
                    except WitnessError as err:
                        report.findings.append(
                            Finding(
                                engine="witness",
                                kind="honest-witness-rejected",
                                detail=f"{func.name}/{pass_obj.name}: "
                                f"{err}",
                                seed=case_seed,
                            )
                        )
                        continue
                    corrupt(
                        _corrupt_ir_witnesses(witness),
                        lambda bad: check_witness(bad, snapshot, func),
                        f"{func.name}/{pass_obj.name}",
                    )
                if not changed_any:
                    break
        obj = compile_module(module, config)
        for func in obj.functions:
            optimized, witness = optimize_checks(func.insns, func.name)
            if not witness.edits:
                continue
            try:
                check_checkopt_witness(witness, func.insns, optimized)
            except WitnessError as err:
                report.findings.append(
                    Finding(
                        engine="witness",
                        kind="honest-witness-rejected",
                        detail=f"{func.name}/checkopt: {err}",
                        seed=case_seed,
                    )
                )
                continue
            corrupt(
                _corrupt_checkopt_witnesses(witness),
                lambda bad, pre=func.insns, post=optimized: (
                    check_checkopt_witness(bad, pre, post)
                ),
                f"{func.name}/checkopt",
            )
    return report


def run_fuzz(
    engine: str = "all",
    seed: int = 0,
    n: int = 20,
    size: int = DEFAULT_SIZE,
    budget: float | None = None,
    corpus_dir: str | None = None,
    minimize: bool = True,
    stride: int = 1,
) -> list[FuzzReport]:
    """Dispatch one or more fuzzing engines and collect their reports.

    ``engine`` is "program", "mutation", "corpus", "witness", or "all"
    (program + mutation + witness, plus corpus when ``corpus_dir`` is
    given).  ``budget`` caps the wall-clock seconds spent across the
    run.
    """
    deadline = time.monotonic() + budget if budget else None
    reports: list[FuzzReport] = []
    if engine not in ("program", "mutation", "corpus", "witness", "all"):
        raise ReproError(f"unknown fuzz engine {engine!r}")
    if engine in ("program", "all"):
        reports.append(
            fuzz_programs(
                seed, n, size=size, minimize=minimize, deadline=deadline
            )
        )
    if engine in ("mutation", "all"):
        reports.append(
            fuzz_mutants(
                seed, n, size=size, minimize=minimize,
                deadline=deadline, stride=stride,
            )
        )
    if engine in ("witness", "all"):
        reports.append(
            fuzz_witnesses(
                seed, n, size=size, deadline=deadline, stride=stride
            )
        )
    if engine == "corpus" or (engine == "all" and corpus_dir):
        from .corpus import replay_corpus

        if corpus_dir is None:
            raise ReproError("the corpus engine needs --corpus DIR")
        reports.append(replay_corpus(corpus_dir))
    return reports
