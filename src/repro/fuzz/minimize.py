"""Line-based delta-debugging minimizer for failing MiniC programs.

Shrinks a generated program that triggers a finding (a differential
divergence, a verifier rejection, a surviving mutant) into the smallest
line subset that still triggers it, so the checked-in repro reads like
a hand-written regression test instead of a 100-line random program.

The algorithm is classic ddmin over source lines: try removing
complements of ever-finer chunks, keeping any candidate for which the
caller's predicate still reports the failure.  The predicate owns all
domain knowledge — it must return False (not raise) for candidates that
no longer compile, so the minimizer itself stays oblivious to MiniC.
"""

from __future__ import annotations

from typing import Callable


def _chunks(items: list[str], n: int) -> list[list[str]]:
    size, rem = divmod(len(items), n)
    out = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        out.append(items[start:end])
        start = end
    return [c for c in out if c]


def ddmin_lines(
    text: str,
    failing: Callable[[str], bool],
    max_probes: int = 2000,
) -> str:
    """Minimize ``text`` (joined with newlines) while ``failing`` holds.

    ``failing`` receives a candidate text and must return True iff the
    original failure still reproduces (and False on any error).  The
    returned text always satisfies ``failing``; if the input itself
    does not, it is returned unchanged.
    """
    lines = text.splitlines()
    if not failing(text):
        return text
    probes = 0
    n = 2
    while len(lines) >= 2 and probes < max_probes:
        chunks = _chunks(lines, n)
        reduced = False
        for i in range(len(chunks)):
            candidate = [
                line for j, chunk in enumerate(chunks) if j != i
                for line in chunk
            ]
            probes += 1
            if candidate and failing("\n".join(candidate) + "\n"):
                lines = candidate
                n = max(n - 1, 2)
                reduced = True
                break
            if probes >= max_probes:
                break
        if not reduced:
            if n >= len(lines):
                break
            n = min(len(lines), n * 2)
    return "\n".join(lines) + "\n"
