"""ConfLLVM reproduction: a compiler enforcing data confidentiality in
low-level code, rebuilt end-to-end in Python.

Public API highlights:

* :func:`compile_and_load` / :func:`compile_source` — MiniC source to a
  running simulated process / linked binary;
* :mod:`repro.config` — the paper's build configurations (Base, BaseOA,
  Our1Mem, OurBare, OurCFI, OurMPX, OurMPX-Sep, OurSeg);
* :class:`repro.runtime.TrustedRuntime` — the trusted library T
  (channels, files, crypto, allocators, threads);
* ``repro.verifier.verify_binary`` — ConfVerify;
* :mod:`repro.formal` — the Appendix-A formal model.
"""

from .compiler import compile_and_load, compile_source
from .config import (
    ALL_CONFIGS,
    BASE,
    BASE_OA,
    OUR_1MEM,
    OUR_BARE,
    OUR_CFI,
    OUR_MPX,
    OUR_MPX_SEP,
    OUR_SEG,
    BuildConfig,
)
from .errors import MachineFault, ReproError, TaintError, VerifyError
from .runtime.trusted import T_PROTOTYPES, TrustedRuntime

__version__ = "1.0.0"

__all__ = [
    "compile_and_load",
    "compile_source",
    "BuildConfig",
    "ALL_CONFIGS",
    "BASE",
    "BASE_OA",
    "OUR_1MEM",
    "OUR_BARE",
    "OUR_CFI",
    "OUR_MPX",
    "OUR_MPX_SEP",
    "OUR_SEG",
    "TrustedRuntime",
    "T_PROTOTYPES",
    "ReproError",
    "TaintError",
    "VerifyError",
    "MachineFault",
    "__version__",
]
