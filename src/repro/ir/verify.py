"""IR well-formedness checks (a compiler-internal sanity net).

This is *not* ConfVerify (which checks emitted binaries); it catches
bugs in lowering and optimization passes early:

* every block ends with exactly one terminator, and only at the end;
* branch targets exist;
* virtual registers are defined before use on every path (approximated
  by a forward dataflow over the CFG);
* taint discipline: a ``Store`` never writes a PRIVATE-tainted source
  into a PUBLIC region (the compile-time guarantee the qualifier
  inference established — if an opt pass breaks it, we want to know
  before codegen).
"""

from __future__ import annotations

from ..errors import IRError
from ..taint.lattice import PRIVATE, PUBLIC
from .core import Block, Branch, IRFunction, IRModule, Instr, Jump, Ret, Store, VReg


def verify_function(func: IRFunction) -> None:
    if not func.blocks:
        raise IRError(f"{func.name}: no blocks")
    block_names = {b.name for b in func.blocks}
    for block in func.blocks:
        if not block.instrs:
            raise IRError(f"{func.name}/{block.name}: empty block")
        for instr in block.instrs[:-1]:
            if instr.is_terminator:
                raise IRError(
                    f"{func.name}/{block.name}: terminator mid-block: {instr!r}"
                )
        if not block.terminator.is_terminator:
            raise IRError(
                f"{func.name}/{block.name}: missing terminator"
            )
        for target in block.successors():
            if target not in block_names:
                raise IRError(
                    f"{func.name}/{block.name}: unknown target {target}"
                )
    _verify_defs_before_uses(func)
    _verify_store_taints(func)


def _verify_defs_before_uses(func: IRFunction) -> None:
    # Forward may-analysis: set of vregs definitely defined at block entry.
    defined_out: dict[str, set[int]] = {}
    params = {v.id for v in func.param_vregs}
    block_map = func.block_map()
    preds: dict[str, list[str]] = {b.name: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block.name)

    changed = True
    order = [b.name for b in func.blocks]
    # Initialize optimistically to "all" so the intersection converges.
    all_ids = params | {
        d.id for b in func.blocks for i in b.instrs for d in i.defs()
    }
    for name in order:
        defined_out[name] = set(all_ids)
    entry = func.blocks[0].name
    while changed:
        changed = False
        for name in order:
            block = block_map[name]
            if name == entry:
                live_in = set(params)
            else:
                pred_list = preds[name]
                if pred_list:
                    live_in = set.intersection(
                        *(defined_out[p] for p in pred_list)
                    )
                else:
                    live_in = set(params)  # unreachable block; be lenient
            defined = set(live_in)
            for instr in block.instrs:
                for use in instr.uses():
                    if use.id not in defined:
                        raise IRError(
                            f"{func.name}/{name}: use of undefined {use!r} "
                            f"in {instr!r}"
                        )
                for d in instr.defs():
                    defined.add(d.id)
            if defined != defined_out[name]:
                defined_out[name] = defined
                changed = True


def _verify_store_taints(func: IRFunction) -> None:
    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, Store):
                if (
                    isinstance(instr.src, VReg)
                    and instr.src.taint is PRIVATE
                    and instr.mem.region is PUBLIC
                ):
                    raise IRError(
                        f"{func.name}/{block.name}: private value stored to "
                        f"public region: {instr!r}"
                    )


def verify_module(module: IRModule) -> None:
    for func in module.functions.values():
        verify_function(func)
