"""The compiler's intermediate representation.

A small, explicitly-typed three-address IR playing the role LLVM IR
plays for ConfLLVM.  It is *not* SSA: virtual registers are assigned
freely, and locals start as stack slots; the ``promote_slots`` pass
(our mem2reg analogue) later turns non-address-taken scalar slots into
virtual registers.

Taint is first-class metadata: every virtual register, stack slot, and
memory access carries a concrete :class:`~repro.taint.lattice.Taint`
(qualifier inference has already run by the time IR exists).  The
backend uses the access ``region`` to pick the MPX bounds register or
fs/gs segment prefix, and slot/vreg taints to pick the public or the
private stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IRError
from ..minic.types import FuncType
from ..taint.lattice import PUBLIC, Taint

BIN_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "mod",
        "and", "or", "xor", "shl", "shr",
        "eq", "ne", "lt", "le", "gt", "ge",
    }
)
UN_OPS = frozenset({"neg", "not"})

Operand = object  # VReg | int


class VReg:
    """A virtual register with a fixed taint."""

    __slots__ = ("id", "taint", "hint")

    def __init__(self, id_: int, taint: Taint, hint: str = ""):
        self.id = id_
        self.taint = taint
        self.hint = hint

    def __repr__(self) -> str:
        tag = "H" if self.taint is Taint.PRIVATE else "L"
        suffix = f".{self.hint}" if self.hint else ""
        return f"%{self.id}{tag}{suffix}"


@dataclass
class StackSlot:
    """A named chunk of a function's frame, on the stack of its taint."""

    uid: int
    name: str
    size: int
    align: int
    taint: Taint
    address_taken: bool = False
    # Assigned by the backend's frame layout:
    offset: int = -1

    def __repr__(self) -> str:
        tag = "H" if self.taint is Taint.PRIVATE else "L"
        return f"slot:{self.name}.{self.uid}{tag}"


# ---------------------------------------------------------------------------
# Instructions


class Instr:
    """Base class.  ``uses``/``defs`` drive dataflow and regalloc."""

    def uses(self) -> list[VReg]:
        return [v for v in self._use_operands() if isinstance(v, VReg)]

    def defs(self) -> list[VReg]:
        return []

    def _use_operands(self) -> list[Operand]:
        return []

    @property
    def is_terminator(self) -> bool:
        return False


@dataclass
class Const(Instr):
    dst: VReg
    value: int

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = const {self.value}"


@dataclass
class Copy(Instr):
    dst: VReg
    src: Operand

    def _use_operands(self):
        return [self.src]

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = {self.src!r}"


@dataclass
class Un(Instr):
    op: str
    dst: VReg
    src: Operand

    def _use_operands(self):
        return [self.src]

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = {self.op} {self.src!r}"


@dataclass
class Bin(Instr):
    op: str
    dst: VReg
    a: Operand
    b: Operand

    def _use_operands(self):
        return [self.a, self.b]

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = {self.op} {self.a!r}, {self.b!r}"


@dataclass
class MemRef:
    """An IR memory reference: exactly one of ``base`` (a pointer
    register), ``slot`` (frame-relative) or ``global_name`` is set, plus
    an optional scaled index register and constant displacement.

    ``region`` is the taint of the memory the access must land in; the
    backend turns it into an MPX bounds check or an fs/gs prefix.  Slot
    references compile to rsp-relative operands, which the paper's
    ``_chkstk`` optimization exempts from checks when the displacement
    is constant and small.
    """

    region: Taint
    base: VReg | None = None
    slot: "StackSlot | None" = None
    global_name: str | None = None
    index: VReg | None = None
    scale: int = 1
    disp: int = 0

    def __post_init__(self):
        anchors = sum(
            x is not None for x in (self.base, self.slot, self.global_name)
        )
        assert anchors == 1, "MemRef needs exactly one anchor"

    def regs(self) -> list[VReg]:
        out = []
        if self.base is not None:
            out.append(self.base)
        if self.index is not None:
            out.append(self.index)
        return out

    def __repr__(self):
        tag = "H" if self.region is Taint.PRIVATE else "L"
        anchor = self.base or self.slot or f"@{self.global_name}"
        parts = [f"{anchor!r}"]
        if self.index is not None:
            parts.append(f"{self.index!r}*{self.scale}")
        if self.disp:
            parts.append(str(self.disp))
        return f"{tag}[{' + '.join(parts)}]"


@dataclass
class Load(Instr):
    """``dst = size-byte load mem`` (zero-extending for size 1)."""

    dst: VReg
    mem: MemRef
    size: int

    def _use_operands(self):
        return list(self.mem.regs())

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = load{self.size} {self.mem!r}"


@dataclass
class Store(Instr):
    mem: MemRef
    src: Operand
    size: int

    def _use_operands(self):
        return [*self.mem.regs(), self.src]

    def __repr__(self):
        return f"store{self.size} {self.mem!r}, {self.src!r}"


@dataclass
class Lea(Instr):
    """Materialize the effective address of a memory reference."""

    dst: VReg
    mem: MemRef

    def _use_operands(self):
        return list(self.mem.regs())

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = lea {self.mem!r}"


@dataclass
class LocalAddr(Instr):
    dst: VReg
    slot: StackSlot

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = addr {self.slot!r}"


@dataclass
class GlobalAddr(Instr):
    dst: VReg
    name: str

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = addr @{self.name}"


@dataclass
class FuncAddr(Instr):
    dst: VReg
    fname: str

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = funcaddr {self.fname}"


@dataclass
class Call(Instr):
    """Direct call.  ``arg_taints``/``ret_taint`` snapshot the callee
    signature so the backend can emit magic-sequence taint bits without
    consulting the symbol table."""

    dst: VReg | None
    name: str
    args: list[Operand]
    arg_taints: list[Taint]
    ret_taint: Taint
    n_fixed: int  # args beyond n_fixed are variadic (public, stack-passed)

    def _use_operands(self):
        return list(self.args)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def __repr__(self):
        args = ", ".join(repr(a) for a in self.args)
        dst = f"{self.dst!r} = " if self.dst else ""
        return f"{dst}call {self.name}({args})"


@dataclass
class CallIndirect(Instr):
    dst: VReg | None
    target: VReg
    args: list[Operand]
    arg_taints: list[Taint]
    ret_taint: Taint
    n_fixed: int

    def _use_operands(self):
        return [self.target, *self.args]

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def __repr__(self):
        args = ", ".join(repr(a) for a in self.args)
        dst = f"{self.dst!r} = " if self.dst else ""
        return f"{dst}icall {self.target!r}({args})"


@dataclass
class TlsBaseAddr(Instr):
    """The current thread's TLS base (rsp masked to the stack base)."""

    dst: VReg

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = tlsbase"


@dataclass
class VarArgAddr(Instr):
    """Address of the index-th variadic slot of the *current* frame."""

    dst: VReg
    index: Operand

    def _use_operands(self):
        return [self.index]

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst!r} = varargaddr {self.index!r}"


# Terminators


@dataclass
class Jump(Instr):
    target: str

    @property
    def is_terminator(self):
        return True

    def __repr__(self):
        return f"jump {self.target}"


@dataclass
class Branch(Instr):
    cond: VReg
    if_true: str
    if_false: str

    def _use_operands(self):
        return [self.cond]

    @property
    def is_terminator(self):
        return True

    def __repr__(self):
        return f"branch {self.cond!r} ? {self.if_true} : {self.if_false}"


@dataclass
class SwitchBr(Instr):
    """Multi-way branch.  The backend lowers it to a jump table under
    the vanilla pipeline (when dense) or to a compare chain under
    ConfLLVM, which disables jump-table lowering because ConfVerify
    rejects indirect jumps (Section 4, "Indirect jumps")."""

    cond: VReg
    table: list[tuple[int, str]]  # (case value, block label)
    default: str

    def _use_operands(self):
        return [self.cond]

    @property
    def is_terminator(self):
        return True

    def __repr__(self):
        arms = ", ".join(f"{v}->{t}" for v, t in self.table)
        return f"switch {self.cond!r} [{arms}] else {self.default}"


@dataclass
class Ret(Instr):
    value: Operand | None

    def _use_operands(self):
        return [self.value] if self.value is not None else []

    @property
    def is_terminator(self):
        return True

    def __repr__(self):
        return f"ret {self.value!r}" if self.value is not None else "ret"


# ---------------------------------------------------------------------------
# Blocks / functions / module


@dataclass
class Block:
    name: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr:
        return self.instrs[-1]

    def successors(self) -> list[str]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            return [term.if_true, term.if_false]
        if isinstance(term, SwitchBr):
            return [t for _v, t in term.table] + [term.default]
        return []


class IRFunction:
    def __init__(self, name: str, sig: FuncType, param_names: list[str]):
        self.name = name
        self.sig = sig
        self.param_names = param_names
        self.blocks: list[Block] = []
        self.slots: list[StackSlot] = []
        self.param_vregs: list[VReg] = []
        self._next_vreg = 0
        self._next_slot = 0
        self._next_block = 0
        # Lowering provenance, stamped by the frontend: identifies the
        # as-lowered (pre-optimization) body.  Optimization witnesses
        # carry it so the checker can reject a witness replayed against
        # a different function (see repro.opt.witness).
        self.origin = ""

    def new_vreg(self, taint: Taint, hint: str = "") -> VReg:
        vreg = VReg(self._next_vreg, taint, hint)
        self._next_vreg += 1
        return vreg

    def new_slot(
        self, name: str, size: int, align: int, taint: Taint
    ) -> StackSlot:
        slot = StackSlot(self._next_slot, name, size, align, taint)
        self._next_slot += 1
        self.slots.append(slot)
        return slot

    def new_block(self, hint: str = "bb") -> Block:
        block = Block(f"{self.name}.{hint}.{self._next_block}")
        self._next_block += 1
        self.blocks.append(block)
        return block

    def block_map(self) -> dict[str, Block]:
        return {b.name: b for b in self.blocks}

    def __repr__(self) -> str:
        lines = [f"func {self.name} {self.sig!r}:"]
        for slot in self.slots:
            lines.append(f"  {slot!r} size={slot.size}")
        for block in self.blocks:
            lines.append(f" {block.name}:")
            for instr in block.instrs:
                lines.append(f"    {instr!r}")
        return "\n".join(lines)


@dataclass
class IRGlobal:
    name: str
    size: int
    align: int
    taint: Taint
    init_bytes: bytes | None = None  # None means zero-init
    read_only: bool = False


@dataclass
class ExternSig:
    """A trusted (T) function's annotated signature."""

    name: str
    sig: FuncType
    arg_taints: list[Taint] = field(default_factory=list)
    ret_taint: Taint = PUBLIC


class IRModule:
    def __init__(self, name: str = "U"):
        self.name = name
        self.functions: dict[str, IRFunction] = {}
        self.globals: dict[str, IRGlobal] = {}
        self.externs: dict[str, ExternSig] = {}
        # Untrusted functions declared but defined in *another* unit
        # (separate compilation); resolved by the multi-object linker.
        self.u_externs: dict[str, ExternSig] = {}

    def add_function(self, func: IRFunction) -> None:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def __repr__(self) -> str:
        parts = [f"module {self.name}"]
        parts.extend(repr(g) for g in self.globals.values())
        parts.extend(repr(f) for f in self.functions.values())
        return "\n".join(parts)
