"""The Privado stand-in (Section 7.4, Figure 7).

An eleven-layer neural-network classifier over ten classes, running in
the all-private mode: the model parameters and the user image are both
private; only the class index leaves through the ``declassify_int``
declassifier (in T), exactly the enclave deployment of the paper.

Substitutions: the VM has no floating point, so the network uses 16.16
fixed-point arithmetic; ReLU is computed branch-free (an arithmetic-
shift mask) because strict mode — correctly — refuses branches on
private activations.  Torch's role (tensor loops) is played by the
plain matrix-vector kernels below; their tight multiply-accumulate
loops are what gives Figure 7 its damped overhead (check instructions
overlap compute).

Wire protocol (channel 0): 3 KB encrypted image -> 8-byte class id.
"""

from __future__ import annotations

from ..runtime.trusted import T_PROTOTYPES
from .libmini import LIBMINI

IMAGE_BYTES = 3072  # "small (3 KB) files" in the paper
N_INPUT = 48  # 48 fixed-point features decoded from the image
N_HIDDEN = 24
N_LAYERS = 11  # input + 9 hidden-to-hidden + output
N_CLASSES = 10

CLASSIFIER_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
// ------------------------------------------------------------ classifier
// 16.16 fixed point. All model state is private (enclave contents).
private int w_in[1152];          // 24 x 48
private int w_hidden[5184];      // 9 layers x 24 x 24
private int w_out[240];          // 10 x 24
private int act_a[48];
private int act_b[48];
private char image[3072];
char wire[3072];
int g_classified = 0;

// Branch-free ReLU: mask = v >> 63 (all ones when negative).
private int relu(private int v) {
    private int mask = v >> 63;
    return v & ~mask;
}

void init_model() {
    // Deterministic pseudo-random private weights ("trained on
    // private inputs"); seeded in U, kept in the private region.
    private int seed = (private int)424243;
    for (int i = 0; i < 1152; i++) {
        seed = seed * 1103515245 + 12345;
        w_in[i] = (seed >> 24) & 0xffff;
    }
    for (int i = 0; i < 5184; i++) {
        seed = seed * 1103515245 + 12345;
        w_hidden[i] = (seed >> 24) & 0xffff;
    }
    for (int i = 0; i < 240; i++) {
        seed = seed * 1103515245 + 12345;
        w_out[i] = (seed >> 24) & 0xffff;
    }
}

void decode_image() {
    // Fold the 3 KB image into 48 fixed-point features (64 B each).
    for (int f = 0; f < 48; f++) {
        private int acc = (private int)0;
        for (int b = 0; b < 64; b++) {
            acc += (private int)image[f * 64 + b];
        }
        act_a[f] = acc << 8;
    }
}

void layer(private int *out, private int *in, private int *w,
           int n_out) {
    int n_in = 24;
    for (int o = 0; o < n_out; o++) {
        private int acc = (private int)0;
        for (int i = 0; i < n_in; i++) {
            acc += (w[o * n_in + i] >> 8) * (in[i] >> 8);
        }
        out[o] = relu(acc);
    }
}

int classify() {
    decode_image();
    // Input layer: 48 -> 24.
    for (int o = 0; o < 24; o++) {
        private int acc = (private int)0;
        for (int i = 0; i < 48; i++) {
            acc += (w_in[o * 48 + i] >> 8) * (act_a[i] >> 8);
        }
        act_b[o] = relu(acc);
    }
    // Nine hidden layers: 24 -> 24, ping-ponging buffers.
    for (int l = 0; l < 9; l++) {
        if ((l & 1) == 0) { layer(act_a, act_b, w_hidden + l * 576, 24); }
        else { layer(act_b, act_a, w_hidden + l * 576, 24); }
    }
    private int *last = act_b;
    // Output layer: 24 -> 10, branch-free argmax over private scores.
    private int best = (private int)(0 - (1 << 60));
    private int best_idx = (private int)0;
    for (int c = 0; c < 10; c++) {
        private int acc = (private int)0;
        for (int i = 0; i < 24; i++) {
            acc += (w_out[c * 24 + i] >> 8) * (last[i] >> 8);
        }
        // take = all-ones when acc > best (computed without branching)
        private int take = 0 - ((best - acc) >> 63 & 1);
        best = (acc & take) | (best & ~take);
        best_idx = ((private int)c & take) | (best_idx & ~take);
    }
    return declassify_int(best_idx);
}

int main() {
    init_model();
    while (1) {
        int got = recv(0, wire, 3072);
        if (got < 3072) { break; }
        decrypt(wire, image, 3072);
        int cls = classify();
        char out[8];
        int *cls_field = (int*)out;
        *cls_field = cls;
        send(1, out, 8);
        g_classified++;
    }
    return g_classified;
}
"""
)


def make_image(runtime, seed: int = 0) -> bytes:
    """An encrypted 3 KB image for the harness."""
    import random

    rng = random.Random(seed)
    plain = bytes(rng.randrange(256) for _ in range(IMAGE_BYTES))
    return runtime.encrypt_with(runtime.session_key, plain)
