"""SPEC CPU 2006 stand-in kernels (Figure 5 workloads).

The paper runs all C benchmarks of SPEC CPU 2006 except perlbench
(fork).  Real SPEC inputs are licensed and the suite needs a native
toolchain, so each benchmark is represented by a MiniC kernel with the
same *computational character* — the property the instrumentation
overhead actually depends on:

============ ==========================================================
bzip2        run-length + move-to-front coding over a byte buffer
gcc          symbol-table hashing with chained buckets (malloc-heavy)
mcf          Bellman-Ford relaxation over adjacency arrays (pointer-ish)
milc         3x3 fixed-point matrix products over lattice sites, with
             allocation churn (the allocator-sensitive benchmark)
gobmk        board scans and liberty counting on a 2-D array
hmmer        Viterbi dynamic programming over int tables
sjeng        fixed-depth negamax over a synthetic game tree
libquantum   gate application over a state vector (bit ops, streaming)
h264ref      sum-of-absolute-differences motion estimation
lbm          1-D lattice stencil sweep (streaming loads/stores)
sphinx3      Gaussian scoring: table-lookup dot products
============ ==========================================================

Like the paper's runs, the kernels use no private data: every byte is
public, so the measured overhead is pure instrumentation cost.
"""

from __future__ import annotations

from ..runtime.trusted import T_PROTOTYPES
from .libmini import LIBMINI

_COMMON = T_PROTOTYPES + LIBMINI

_KERNELS: dict[str, str] = {}

_KERNELS["bzip2"] = """
char src[4096];
char rle[8192];
char mtf[256];

int rle_encode(char *out, char *in, int n) {
    int o = 0;
    int i = 0;
    while (i < n) {
        char c = in[i];
        int run = 1;
        while (i + run < n && in[i + run] == c && run < 255) { run++; }
        out[o] = c; o++;
        out[o] = (char)run; o++;
        i += run;
    }
    return o;
}

int mtf_encode(char *buf, int n) {
    int sum = 0;
    for (int i = 0; i < 256; i++) { mtf[i] = (char)i; }
    for (int i = 0; i < n; i++) {
        char c = buf[i];
        int j = 0;
        while (mtf[j] != c) { j++; }
        sum += j;
        while (j > 0) { mtf[j] = mtf[j - 1]; j--; }
        mtf[0] = c;
    }
    return sum;
}

int main() {
    int seed = 12345;
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        src[i] = (char)((seed >> 16) & 7);
    }
    int check = 0;
    for (int round = 0; round < SCALE; round++) {
        int m = rle_encode(rle, src, 4096);
        check += mtf_encode(rle, m);
    }
    return check & 255;
}
"""

_KERNELS["gcc"] = """
struct sym { int name; int value; struct sym *next; };
struct sym *table[256];

int hash_name(int name) { return (name * 2654435761) & 255; }

void insert(int name, int value) {
    struct sym *s = (struct sym*)malloc_pub(sizeof(struct sym));
    int h = hash_name(name);
    s->name = name;
    s->value = value;
    s->next = table[h];
    table[h] = s;
}

int lookup(int name) {
    struct sym *s = table[hash_name(name)];
    while ((int)s != 0) {
        if (s->name == name) { return s->value; }
        s = s->next;
    }
    return -1;
}

void clear_table() {
    for (int h = 0; h < 256; h++) {
        struct sym *s = table[h];
        while ((int)s != 0) {
            struct sym *next = s->next;
            free_pub((char*)s);
            s = next;
        }
        table[h] = (struct sym*)0;
    }
}

// Token dispatch: a dense switch that the vanilla pipeline lowers to a
// jump table; ConfLLVM must use compare chains (jump tables disabled),
// which is part of the OurBare-vs-Base gap the paper reports.
int eval_op(int op, int a, int b) {
    switch (op) {
        case 0: return a + b;
        case 1: return a - b;
        case 2: return a * b;
        case 3: return a & b;
        case 4: return a | b;
        case 5: return a ^ b;
        case 6: return a << (b & 7);
        case 7: return a >> (b & 7);
        default: return a;
    }
}

int main() {
    int check = 0;
    for (int round = 0; round < SCALE; round++) {
        for (int i = 0; i < 600; i++) { insert(i * 7 + round, i); }
        for (int i = 0; i < 1200; i++) { check += lookup(i * 7 + round); }
        for (int i = 0; i < 2000; i++) {
            check = eval_op(i & 7, check, i) & 0xffffff;
        }
        clear_table();
    }
    return check & 255;
}
"""

_KERNELS["mcf"] = """
int dist[512];
int head[512];
int edge_to[4096];
int edge_w[4096];
int edge_next[4096];

int main() {
    int n = 512;
    int m = 0;
    int seed = 99;
    for (int i = 0; i < n; i++) { head[i] = -1; dist[i] = 1 << 30; }
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        int u = (seed >> 8) & 511;
        seed = seed * 1103515245 + 12345;
        int v = (seed >> 8) & 511;
        edge_to[m] = v;
        edge_w[m] = ((seed >> 20) & 63) + 1;
        edge_next[m] = head[u];
        head[u] = m;
        m++;
    }
    dist[0] = 0;
    for (int round = 0; round < SCALE * 6; round++) {
        for (int u = 0; u < n; u++) {
            int du = dist[u];
            if (du == 1 << 30) { continue; }
            int e = head[u];
            while (e >= 0) {
                int v = edge_to[e];
                int nd = du + edge_w[e];
                if (nd < dist[v]) { dist[v] = nd; }
                e = edge_next[e];
            }
        }
    }
    int check = 0;
    for (int i = 0; i < n; i++) { if (dist[i] < 1 << 30) { check += dist[i]; } }
    return check & 255;
}
"""

_KERNELS["milc"] = """
// 3x3 fixed-point (16.16) matrix products over lattice sites, with
// per-sweep allocation churn: the allocator-locality benchmark.
int mat_mul_into(int *c, int *a, int *b) {
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) {
            int acc = 0;
            for (int k = 0; k < 3; k++) {
                acc += (a[i * 3 + k] >> 8) * (b[k * 3 + j] >> 8);
            }
            c[i * 3 + j] = acc;
        }
    }
    return c[0];
}

int main() {
    int check = 0;
    int sites = 96;
    for (int sweep = 0; sweep < SCALE * 3; sweep++) {
        int *links[96];
        for (int s = 0; s < sites; s++) {
            links[s] = (int*)malloc_pub(9 * sizeof(int));
            for (int k = 0; k < 9; k++) {
                links[s][k] = ((s + 1) * (k + 3) + sweep) << 12;
            }
        }
        int staple[9];
        for (int s = 0; s + 2 < sites; s++) {
            check += mat_mul_into(staple, links[s], links[s + 1]);
            check += mat_mul_into(staple, staple, links[s + 2]);
        }
        for (int s = 0; s < sites; s++) { free_pub((char*)links[s]); }
    }
    return check & 255;
}
"""

_KERNELS["gobmk"] = """
char board[361];

int count_group(int start, char color, char *seen) {
    // Iterative flood fill over a 19x19 board.
    int stack[361];
    int top = 0;
    int size = 0;
    stack[top] = start; top++;
    seen[start] = 1;
    while (top > 0) {
        top--;
        int p = stack[top];
        size++;
        int row = p / 19;
        int col = p % 19;
        int q;
        if (row > 0)  { q = p - 19; if (seen[q] == 0 && board[q] == color) { seen[q] = 1; stack[top] = q; top++; } }
        if (row < 18) { q = p + 19; if (seen[q] == 0 && board[q] == color) { seen[q] = 1; stack[top] = q; top++; } }
        if (col > 0)  { q = p - 1;  if (seen[q] == 0 && board[q] == color) { seen[q] = 1; stack[top] = q; top++; } }
        if (col < 18) { q = p + 1;  if (seen[q] == 0 && board[q] == color) { seen[q] = 1; stack[top] = q; top++; } }
    }
    return size;
}

int main() {
    int seed = 7;
    int check = 0;
    for (int game = 0; game < SCALE * 4; game++) {
        for (int i = 0; i < 361; i++) {
            seed = seed * 1103515245 + 12345;
            board[i] = (char)((seed >> 13) & 1);
        }
        char seen[361];
        for (int i = 0; i < 361; i++) { seen[i] = 0; }
        for (int i = 0; i < 361; i++) {
            if (seen[i] == 0) { check += count_group(i, board[i], seen); }
        }
    }
    return check & 255;
}
"""

_KERNELS["hmmer"] = """
int match[64];
int insert_s[64];
int del[64];
int emit_m[64];
int emit_i[64];

int viterbi_row(int *obs, int n_obs) {
    int score = 0;
    for (int t = 0; t < n_obs; t++) {
        int o = obs[t];
        for (int s = 63; s > 0; s--) {
            int from_m = match[s - 1] + emit_m[(s + o) & 63];
            int from_i = insert_s[s - 1] + emit_i[(s + o) & 63];
            int from_d = del[s - 1] + 3;
            int best = from_m;
            if (from_i > best) { best = from_i; }
            if (from_d > best) { best = from_d; }
            match[s] = best;
            insert_s[s] = best - 7 + emit_i[o & 63];
            del[s] = best - 11;
        }
        score = match[63];
    }
    return score;
}

int main() {
    int obs[64];
    int seed = 5;
    for (int i = 0; i < 64; i++) {
        emit_m[i] = (i * 13) % 29;
        emit_i[i] = (i * 7) % 17;
        match[i] = 0; insert_s[i] = -5; del[i] = -9;
    }
    for (int i = 0; i < 64; i++) {
        seed = seed * 1103515245 + 12345;
        obs[i] = (seed >> 11) & 63;
    }
    int check = 0;
    for (int round = 0; round < SCALE * 4; round++) {
        check += viterbi_row(obs, 64);
    }
    return check & 255;
}
"""

_KERNELS["sjeng"] = """
int node_count;

int evaluate(int state) {
    return ((state * 2654435761) >> 16) & 1023;
}

int negamax(int state, int depth, int alpha, int beta) {
    node_count++;
    if (depth == 0) { return evaluate(state); }
    int best = -100000;
    for (int move = 0; move < 6; move++) {
        int child = state * 6 + move + 1;
        int score = 0 - negamax(child, depth - 1, 0 - beta, 0 - alpha);
        if (score > best) { best = score; }
        if (best > alpha) { alpha = best; }
        if (alpha >= beta) { break; }
    }
    return best;
}

int main() {
    int check = 0;
    node_count = 0;
    for (int root = 0; root < SCALE * 2; root++) {
        check += negamax(root, 5, -100000, 100000);
    }
    return (check + node_count) & 255;
}
"""

_KERNELS["libquantum"] = """
int state_re[2048];
int state_im[2048];

void hadamard_like(int target) {
    int mask = 1 << target;
    for (int i = 0; i < 2048; i++) {
        if ((i & mask) == 0) {
            int j = i | mask;
            int a = state_re[i];
            int b = state_re[j];
            state_re[i] = (a + b) >> 1;
            state_re[j] = (a - b) >> 1;
            a = state_im[i];
            b = state_im[j];
            state_im[i] = (a + b) >> 1;
            state_im[j] = (a - b) >> 1;
        }
    }
}

void cnot_like(int control, int target) {
    int cm = 1 << control;
    int tm = 1 << target;
    for (int i = 0; i < 2048; i++) {
        if ((i & cm) != 0 && (i & tm) == 0) {
            int j = i | tm;
            int t = state_re[i]; state_re[i] = state_re[j]; state_re[j] = t;
            t = state_im[i]; state_im[i] = state_im[j]; state_im[j] = t;
        }
    }
}

int main() {
    for (int i = 0; i < 2048; i++) { state_re[i] = i; state_im[i] = 2048 - i; }
    for (int round = 0; round < SCALE * 2; round++) {
        for (int q = 0; q < 11; q++) { hadamard_like(q); }
        for (int q = 0; q < 10; q++) { cnot_like(q, q + 1); }
    }
    int check = 0;
    for (int i = 0; i < 2048; i++) { check += state_re[i] & 3; }
    return check & 255;
}
"""

_KERNELS["h264ref"] = """
char frame_ref[4096];
char frame_cur[256];

int sad_16x16(int rx, int ry) {
    int sad = 0;
    for (int y = 0; y < 16; y++) {
        for (int x = 0; x < 16; x++) {
            int a = (int)frame_cur[y * 16 + x];
            int b = (int)frame_ref[(ry + y) * 64 + rx + x];
            int d = a - b;
            if (d < 0) { d = 0 - d; }
            sad += d;
        }
    }
    return sad;
}

int main() {
    int seed = 31;
    for (int i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        frame_ref[i] = (char)((seed >> 9) & 255);
    }
    for (int i = 0; i < 256; i++) {
        seed = seed * 1103515245 + 12345;
        frame_cur[i] = (char)((seed >> 9) & 255);
    }
    int best = 1 << 30;
    for (int round = 0; round < SCALE; round++) {
        for (int ry = 0; ry < 48; ry += 4) {
            for (int rx = 0; rx < 48; rx += 4) {
                int s = sad_16x16(rx, ry);
                if (s < best) { best = s; }
            }
        }
    }
    return best & 255;
}
"""

_KERNELS["lbm"] = """
int cells_a[8192];
int cells_b[8192];

int main() {
    for (int i = 0; i < 8192; i++) { cells_a[i] = (i * 37) & 1023; }
    int *src = cells_a;
    int *dst = cells_b;
    for (int step = 0; step < SCALE * 4; step++) {
        for (int i = 1; i < 8191; i++) {
            int v = (src[i - 1] + 2 * src[i] + src[i + 1]) >> 2;
            dst[i] = v + ((src[i] - v) >> 3);
        }
        dst[0] = src[0];
        dst[8191] = src[8191];
        int *tmp = src; src = dst; dst = tmp;
    }
    int check = 0;
    for (int i = 0; i < 8192; i += 64) { check += src[i]; }
    return check & 255;
}
"""

_KERNELS["sphinx3"] = """
int means[1024];
int vars_inv[1024];
int feats[256];

int score_senone(int base, int *feat) {
    int score = 0;
    for (int d = 0; d < 32; d++) {
        int diff = feat[d] - means[base + d];
        score += (diff * diff) >> 8;
    }
    return 0 - score;
}

int main() {
    int seed = 17;
    for (int i = 0; i < 1024; i++) {
        seed = seed * 1103515245 + 12345;
        means[i] = (seed >> 12) & 255;
        vars_inv[i] = ((seed >> 20) & 15) + 1;
    }
    for (int i = 0; i < 256; i++) {
        seed = seed * 1103515245 + 12345;
        feats[i] = (seed >> 12) & 255;
    }
    int best = -(1 << 30);
    for (int round = 0; round < SCALE * 6; round++) {
        for (int frame = 0; frame < 8; frame++) {
            for (int senone = 0; senone < 31; senone++) {
                int s = score_senone(senone * 32, feats + frame * 32);
                if (s > best) { best = s; }
            }
        }
    }
    return best & 255;
}
"""

SPEC_NAMES = tuple(sorted(_KERNELS))


def kernel_source(name: str, scale: int = 1) -> str:
    """Full MiniC source of a SPEC kernel at a given workload scale."""
    body = _KERNELS[name].replace("SCALE", str(scale))
    return _COMMON + body
