"""Minizip: the file-compression tool of Section 7.6, as a full app.

The attack module (`repro.attacks`) carries the *injected-vulnerability*
variants; this is the honest tool: compress a file (RLE), protect the
archive with a password-derived keystream obtained from T, and
decompress/verify on the way back.  The password is private throughout;
only the encrypted archive is public.

Wire protocol (channel 0):
  'C' <name 8B>            compress file -> archive "<name>.z"
  'X' <name 8B>            extract archive "<name>.z" -> "<name>.out"
  'Q'                      quit
Responses (channel 1): 8-byte status per request (output size or <0).
"""

from __future__ import annotations

from ..runtime.trusted import T_PROTOTYPES
from .libmini import LIBMINI

REQ_SIZE = 16

MINIZIP_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
// -------------------------------------------------------------- minizip
char req[16];
char in_name[16];
char out_name[16];
char file_buf[8192];
char work_buf[16448];
int g_ops = 0;

// RLE: (byte, runlen) pairs; runlen 1..255.
int rle_compress(char *dst, char *src, int n) {
    int o = 0;
    int i = 0;
    while (i < n) {
        char c = src[i];
        int run = 1;
        while (i + run < n && src[i + run] == c && run < 255) { run++; }
        dst[o] = c; o++;
        dst[o] = (char)run; o++;
        i += run;
    }
    return o;
}

int rle_expand(char *dst, char *src, int n, int max_out) {
    int o = 0;
    for (int i = 0; i + 1 < n; i += 2) {
        char c = src[i];
        int run = (int)src[i + 1];
        if (o + run > max_out) { return -1; }
        for (int r = 0; r < run; r++) { dst[o] = c; o++; }
    }
    return o;
}

void build_names(int extract) {
    for (int i = 0; i < 8; i++) { in_name[i] = req[1 + i]; }
    in_name[8] = 0;
    int n = mini_strlen(in_name);
    mini_strcpy(out_name, in_name);
    if (extract) {
        out_name[n] = '.'; out_name[n+1] = 'o'; out_name[n+2] = 'u';
        out_name[n+3] = 't'; out_name[n+4] = 0;
        in_name[n] = '.'; in_name[n+1] = 'z'; in_name[n+2] = 0;
    } else {
        out_name[n] = '.'; out_name[n+1] = 'z'; out_name[n+2] = 0;
    }
}

int do_compress() {
    build_names(0);
    int n = read_file(in_name, file_buf, 8192);
    if (n < 0) { return -1; }
    int z = rle_compress(work_buf, file_buf, n);
    write_file(out_name, work_buf, z);
    return z;
}

int do_extract() {
    build_names(1);
    int z = read_file(in_name, work_buf, 16448);
    if (z < 0) { return -1; }
    int n = rle_expand(file_buf, work_buf, z, 8192);
    if (n < 0) { return -2; }
    write_file(out_name, file_buf, n);
    return n;
}

int main() {
    while (1) {
        int got = recv(0, req, 16);
        if (got < 16) { break; }
        char op = req[0];
        if (op == 'Q') { break; }
        int status = -9;
        if (op == 'C') { status = do_compress(); }
        if (op == 'X') { status = do_extract(); }
        char resp[8];
        int *sp = (int*)resp;
        *sp = status;
        send(1, resp, 8);
        g_ops++;
    }
    return g_ops;
}
"""
)


def make_request(op: str, name: str) -> bytes:
    assert op in ("C", "X", "Q")
    return (op.encode() + name.encode().ljust(8, b"\x00")).ljust(
        REQ_SIZE, b"\x00"
    )
