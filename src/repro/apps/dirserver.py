"""The OpenLDAP stand-in (Section 7.3).

A directory server whose whole codebase is U; the added cryptographic
functions live in T.  Stored passwords are kept encrypted (the paper's
modification to OpenLDAP) and decrypted only into private buffers; the
simple-bind password arrives encrypted and is compared via the
``cmp_secret`` declassifier.

The store is an id-sorted directory pre-populated at startup.  Lookups
binary-search; *misses* additionally scan a neighbourhood window
checking prefix candidates — modelling the paper's observation that
"OpenLDAP does less work in U looking for directory entries that exist
than it does looking for directory entries that don't", which is why
the miss workload shows the larger overhead (12.74% vs 9.44%).

Requests (channel 0, fixed 48 bytes):
  bytes 0..7   query id (little-endian)
  bytes 8..15  username (NUL padded)
  bytes 16..31 encrypted bind password (16 bytes)
Responses: 16 bytes — status (8) + value checksum (8).
"""

from __future__ import annotations

import struct

from ..runtime.trusted import T_PROTOTYPES
from .libmini import LIBMINI

N_ENTRIES = 10_000
REQ_SIZE = 48
RESP_SIZE = 16

DIRSERVER_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
// ------------------------------------------------------------ dirserver
int ids[10000];
int values[10000];
char dn_table[16000];   // 8-byte DN prefix strings for a 2000-entry window
int g_served = 0;
private char bind_pw[16];
private char stored_pw[16];
char req[48];
char resp[16];

void populate() {
    // Deterministic sorted ids (even numbers) and per-entry values.
    for (int i = 0; i < 10000; i++) {
        ids[i] = i * 2;
        values[i] = (i * 2654435761) & 0xffffff;
    }
    for (int i = 0; i < 16000; i++) {
        dn_table[i] = (char)('a' + (i * 7) % 26);
    }
}

int bsearch_id(int key) {
    int lo = 0;
    int hi = 10000 - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        int v = ids[mid];
        if (v == key) { return mid; }
        if (v < key) { lo = mid + 1; } else { hi = mid - 1; }
    }
    return -(lo + 1);
}

// Misses do extra U-side work: scan a window around the insertion
// point for candidates, comparing DN prefixes byte by byte (subtree
// matching in real LDAP).  This path is memory-access dense, which is
// why the miss workload amplifies the instrumentation overhead.
int miss_scan(int slot, int key) {
    int start = slot - 12;
    if (start < 0) { start = 0; }
    int stop = slot + 12;
    if (stop > 10000) { stop = 10000; }
    int candidates = 0;
    for (int i = start; i < stop; i++) {
        int v = ids[i];
        if ((v >> 4) == (key >> 4)) { candidates++; }
        int base = (i % 2000) * 8;
        int matched = 0;
        for (int b = 0; b < 8; b++) {
            if ((int)dn_table[base + b] == ('a' + (key + b) % 26)) {
                matched++;
            }
        }
        if (matched > 6) { candidates++; }
    }
    return candidates;
}

char auth_user[8];
// Wire bytes (still encrypted, hence public) of the last successful
// bind.  The cached-bind fast path must match credentials, not just
// the user name: caching on the name alone would let any request
// reuse another request's bind by quoting the user with a garbage
// password.
char auth_wire_pw[16];
int auth_valid = 0;

int authenticate() {
    // Simple bind once per connection: re-authenticate only when the
    // bind credentials change (real LDAP binds are per-connection,
    // not per-operation).
    if (auth_valid) {
        int same = 1;
        for (int i = 0; i < 8; i++) {
            if (auth_user[i] != req[8 + i]) { same = 0; break; }
        }
        if (same) {
            for (int i = 0; i < 16; i++) {
                if (auth_wire_pw[i] != req[16 + i]) { same = 0; break; }
            }
        }
        if (same) { return 1; }
    }
    decrypt(req + 16, bind_pw, 16);
    read_passwd(req + 8, stored_pw, 16);
    if (cmp_secret(bind_pw, stored_pw, 16) != 0) { return 0; }
    for (int i = 0; i < 8; i++) { auth_user[i] = req[8 + i]; }
    for (int i = 0; i < 16; i++) { auth_wire_pw[i] = req[16 + i]; }
    auth_valid = 1;
    return 1;
}

char render_buf[64];

// Both paths render the result entry into a wire buffer (attribute
// formatting in real LDAP) — U-side work common to hits and misses.
int render(int key, int value) {
    int o = 0;
    render_buf[o] = 'd'; o++;
    render_buf[o] = 'n'; o++;
    render_buf[o] = '='; o++;
    for (int i = 0; i < 20; i++) {
        render_buf[o] = (char)('a' + (key + i * value) % 26);
        o++;
    }
    int acc = 0;
    for (int i = 0; i < o; i++) { acc += (int)render_buf[i]; }
    return acc;
}

// BER-style length/checksum arithmetic for a found entry: register
// work, no memory traffic (hence no instrumentation cost) — hits do
// "less work in U", and what they do is check-light.
int encode_entry(int key, int value) {
    int acc = value;
    for (int i = 0; i < 80; i++) {
        acc = acc * 1103515245 + key;
        acc = acc ^ (acc >> 7);
    }
    return acc;
}

int handle() {
    if (!authenticate()) { return -2; }
    int *key_field = (int*)req;
    int key = *key_field;
    int slot = bsearch_id(key);
    if (slot >= 0) {
        encode_entry(key, values[slot]);
        return values[slot];
    }
    int nearby = miss_scan(0 - slot - 1, key);
    render(key, nearby);
    return -1 - nearby;
}

int main() {
    populate();
    while (1) {
        int got = recv(0, req, 48);
        if (got < 48) { break; }
        if (req[40] == 'Q') { break; }
        int result = handle();
        int *status = (int*)resp;
        *status = result;
        int *check = (int*)(resp + 8);
        *check = g_served;
        send(1, resp, 16);
        g_served++;
    }
    return g_served;
}
"""
)


# ---------------------------------------------------------------------------
# Multi-threaded variant (the paper's default: "a multi-threaded server
# ... configured to run 6 concurrent threads").  Worker w serves
# channel 10+w; per-worker public state lives in TLS, per-worker
# private state in slices of private globals.

_MT_EXTRA = r"""
private char bind_pws[128];     // 8 workers x 16
private char stored_pws[128];
int worker_served[8];

int serve_loop(int wid) {
    int fd = 10 + wid;
    char *myreq = (char*)(__tlsbase() + 128);
    char *myresp = (char*)(__tlsbase() + 256);
    private char *my_bind = bind_pws + wid * 16;
    private char *my_stored = stored_pws + wid * 16;
    int served = 0;
    while (1) {
        int got = recv(fd, myreq, 48);
        if (got < 48) { break; }
        if (myreq[40] == 'Q') { break; }
        int ok = 1;
        decrypt(myreq + 16, my_bind, 16);
        read_passwd(myreq + 8, my_stored, 16);
        if (cmp_secret(my_bind, my_stored, 16) != 0) { ok = 0; }
        int result = -2;
        if (ok) {
            int *key_field = (int*)myreq;
            int key = *key_field;
            int slot = bsearch_id(key);
            if (slot >= 0) {
                encode_entry(key, values[slot]);
                result = values[slot];
            } else {
                result = -1 - miss_scan(0 - slot - 1, key);
            }
        }
        int *status = (int*)myresp;
        *status = result;
        int *seq = (int*)(myresp + 8);
        *seq = served;
        send(fd + 100, myresp, 16);
        served++;
    }
    worker_served[wid] = served;
    return served;
}

int main() {
    populate();
    int tids[8];
    int n_workers = N_WORKERS;
    for (int w = 0; w < n_workers; w++) {
        tids[w] = thread_create((int)&serve_loop, w);
    }
    int total = 0;
    for (int w = 0; w < n_workers; w++) {
        thread_join(tids[w]);
        total += worker_served[w];
    }
    return total;
}
"""


def dirserver_mt_source(n_workers: int) -> str:
    """Multi-threaded dirserver: worker w reads channel 10+w and
    responds on channel 110+w."""
    assert 1 <= n_workers <= 8
    # Reuse everything up to (but excluding) the single-threaded main.
    base = DIRSERVER_SRC[: DIRSERVER_SRC.rindex("int main()")]
    return base + _MT_EXTRA.replace("N_WORKERS", str(n_workers))


def make_query(runtime, entry_id: int, uname: str = "alice") -> bytes:
    """One wire-format query with a valid encrypted bind password."""
    password = runtime.passwords.get(uname.encode(), b"")
    padded = password[:16].ljust(16, b"\x00")
    enc = runtime.encrypt_with(runtime.session_key, padded)
    req = struct.pack("<q", entry_id) + uname.encode().ljust(8, b"\x00") + enc
    return req.ljust(REQ_SIZE, b"\x00")


QUIT_QUERY = (b"\x00" * 40) + b"Q" + (b"\x00" * 7)
