"""The NGINX stand-in (Section 7.2, Figure 6).

Structure mirrors the paper's deployment:

* OpenSSL lives in T (``ssl_recv``/``ssl_send``: session-key crypto on
  the wire, private plaintext buffers in U);
* request parsing, serving, and the logging module are in U;
* *everything* in U is private except the logging module's buffers;
* request URIs are private, so the log line routes them through the
  ``encrypt_log`` declassifier (keyed for the log administrator);
* file contents are private (``serve_file`` takes the private URI and
  fills a private buffer).

Requests are fixed-format lines ``GET <name-8-chars> <pad...>`` and
responses are ``OK <8-byte length><payload>``.  The Python harness in
the benchmarks drives a closed loop of clients over channel 0.
"""

from __future__ import annotations

from ..runtime.trusted import T_PROTOTYPES
from .libmini import LIBMINI

# Maximum servable file (40 KB, the largest point in Figure 6).
MAX_FILE = 40 * 1024
REQ_SIZE = 32
HDR_SIZE = 16

WEBSERVER_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
// ------------------------------------------------------------- webserver
char log_line[256];        // the logging module's buffers are PUBLIC
char enc_uri[64];
int g_requests = 0;

// Requests arrive in clear (the paper's http throughput experiment);
// the URI and everything derived from the files is sensitive.
char req[32];
private char uri[16];

// Copy the URI out of the raw request (offset 4, 8 chars, NUL-padded).
// Public bytes may always flow *up* into private storage.
void parse_request() {
    for (int i = 0; i < 8; i++) { uri[i] = (private char)req[4 + i]; }
    uri[8] = 0;
}

// The logging module: public buffers only; the private URI enters only
// through the encrypt_log declassifier.
void log_request(int nbytes) {
    encrypt_log(uri, enc_uri, 8);
    enc_uri[8] = 0;
    int n = mini_sprintf(log_line, "GET uri=%s bytes=%d seq=%d\n",
                         enc_uri, nbytes, g_requests);
    log_write(log_line, n);
}

// --- the output chain (nginx-style chunked body processing) ---------
// Each stage keeps a mix of public bookkeeping and private data on its
// frame; under split stacks every one of these frames occupies lines
// on *both* stacks — the cache-pressure effect of Figure 6.

private int chunk_digest(private char *chunk, int words) {
    private int acc = (private int)0;
    private int carry = (private int)1;
    int step = words / 8;
    if (step < 1) { step = 1; }
    private int *w = (private int*)chunk;
    for (int i = 0; i < words; i += step) {
        acc += w[i] ^ carry;
        carry = acc >> 3;
    }
    return acc;
}

int chunk_meta(int seq, int len) {
    int hdr[4];
    hdr[0] = seq;
    hdr[1] = len;
    hdr[2] = seq * 31 + len;
    hdr[3] = hdr[2] ^ hdr[0];
    return hdr[3];
}

private int process_chunk(private char *dst, private char *src, int len,
                          int seq) {
    private char staging[64];
    int meta = chunk_meta(seq, len);
    int words = len / 8;
    mini_memcpy_words_priv(dst, src, len);
    for (int i = 0; i < 64; i++) { staging[i] = src[i % (len + 1)]; }
    private int digest = chunk_digest(staging, 8);
    return digest + (private int)meta;
}

int handle_request() {
    // Per-request working buffers live on the *private stack*, like
    // NGINX's per-request pools; U itself assembles the response
    // (only OpenSSL-grade primitives are in T).
    private char fcontents[40960];
    private char resp[40976];
    parse_request();
    int n = serve_file(uri, fcontents, 40960);
    if (n < 0) { n = 0; }
    // Response header: "OK" + length (bytes 8..15), private like the body.
    resp[0] = 'O'; resp[1] = 'K';
    private int *len_field = (private int*)(resp + 8);
    *len_field = n;
    // Emit the body as 2 KB chunks through the output chain.
    private int check = (private int)0;
    int offset = 0;
    int seq = 0;
    while (offset < n) {
        int len = n - offset;
        if (len > 2048) { len = 2048; }
        int padded = (len + 7) / 8 * 8;
        check += process_chunk(resp + 16 + offset, fcontents + offset,
                               padded, seq);
        offset += len;
        seq++;
    }
    ssl_send(1, resp, 16 + n);
    log_request(n);
    g_requests++;
    return n;
}

int main() {
    while (1) {
        int got = recv(0, req, 32);
        if (got < 32) { break; }
        if (req[0] == 'Q') { break; }
        handle_request();
    }
    return g_requests;
}
"""
)


def make_request(name: str) -> bytes:
    """Build one wire-format request for the harness (sent in clear)."""
    body = b"GET " + name.encode().ljust(8, b"\x00")
    return body.ljust(REQ_SIZE, b"\x00")


QUIT_REQUEST = b"Q".ljust(REQ_SIZE, b"\x00")
