"""The integrity + thread-scaling experiment (Section 7.5, Figure 8).

A multi-threaded userspace file-read library that maintains a Merkle
hash tree over file contents.  The dual use of the scheme: file *data*
is private, the hash *tree* is public — ConfLLVM then guarantees the
integrity of the tree (nothing in U can accidentally clobber it with
private-derived data; only the hashing declassifier in T writes
hashes).

``main`` builds the tree over a memory-mapped file image, spawns N
reader threads that each verify-read the whole file in 1 KB blocks,
and joins them.  Until N exceeds the core count, wall time stays flat
(linear scaling), which is the Figure 8 shape.

The file size is scaled down from the paper's 2 GB to keep simulation
tractable; the per-thread work is what matters for scaling.
"""

from __future__ import annotations

from ..runtime.trusted import T_PROTOTYPES
from .libmini import LIBMINI

FILE_BYTES = 64 * 1024
BLOCK = 1024
N_BLOCKS = FILE_BYTES // BLOCK

MERKLEFS_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
// ------------------------------------------------------------- merklefs
// Public hash tree (leaves + one root level folded for simplicity),
// private file data.
int tree[64];
int root_hash;
private char *file_data;
int g_bad_blocks = 0;

void build_tree() {
    file_data = malloc_priv(65536);
    // Fill the "memory-mapped file" with a pattern (word-wise).
    private int *words = (private int*)file_data;
    for (int w = 0; w < 8192; w++) {
        words[w] = (private int)(w * 2654435761);
    }
    root_hash = 0;
    for (int b = 0; b < 64; b++) {
        tree[b] = hash64(file_data + b * 1024, 1024);
        root_hash = root_hash ^ (tree[b] * 31 + b);
    }
}

// One reader: verify every block's hash and checksum-read the data.
int reader(int tid) {
    int ok = 0;
    private int checksum = (private int)0;
    for (int b = 0; b < 64; b++) {
        private char *block = file_data + b * 1024;
        int h = hash64(block, 1024);
        if (h == tree[b]) { ok++; }
        else { g_bad_blocks++; }
        private int *words = (private int*)block;
        for (int w = 0; w < 128; w++) {
            checksum += words[w];
        }
    }
    // Root re-check (public arithmetic over the public tree).
    int r = 0;
    for (int b = 0; b < 64; b++) { r = r ^ (tree[b] * 31 + b); }
    if (r != root_hash) { g_bad_blocks++; }
    return ok;
}

int main() {
    build_tree();
    int n_threads = N_THREADS;
    if (n_threads <= 1) {
        reader(0);
        return g_bad_blocks;
    }
    int tids[8];
    for (int t = 0; t < n_threads; t++) {
        tids[t] = thread_create((int)&reader, t);
    }
    for (int t = 0; t < n_threads; t++) {
        thread_join(tids[t]);
    }
    return g_bad_blocks;
}
"""
)


def merklefs_source(n_threads: int) -> str:
    return MERKLEFS_SRC.replace("N_THREADS", str(n_threads))
