"""Application corpus: MiniC sources for the paper's workloads."""
