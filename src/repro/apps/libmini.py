"""libmini: U-side utility routines, written in MiniC.

The paper deliberately keeps ``memcpy`` and ``sprintf`` inside U ("even
sprintf and memcpy would be in U") — bugs in them must be contained by
the instrumentation, not by trusting them.  Because the type system has
no label polymorphism (Section 8), byte-copy routines come in public
and private flavours.

``LIBMINI`` is concatenated into application sources.
"""

LIBMINI = r"""
// ---------------------------------------------------------------- libmini
int mini_strlen(char *s) {
    int n = 0;
    while (s[n] != 0) { n++; }
    return n;
}

void mini_memcpy(char *dst, char *src, int n) {
    for (int i = 0; i < n; i++) { dst[i] = src[i]; }
}

void mini_memcpy_priv(private char *dst, private char *src, int n) {
    for (int i = 0; i < n; i++) { dst[i] = src[i]; }
}

void mini_memset(char *dst, int value, int n) {
    for (int i = 0; i < n; i++) { dst[i] = (char)value; }
}

void mini_memset_priv(private char *dst, int value, int n) {
    for (int i = 0; i < n; i++) { dst[i] = (private char)value; }
}

// Word-wise copies for bulk data (n must be a multiple of 8).
void mini_memcpy_words(char *dst, char *src, int n) {
    int *d = (int*)dst;
    int *s = (int*)src;
    int w = n / 8;
    for (int i = 0; i < w; i++) { d[i] = s[i]; }
}

void mini_memcpy_words_priv(private char *dst, private char *src, int n) {
    private int *d = (private int*)dst;
    private int *s = (private int*)src;
    int w = n / 8;
    for (int i = 0; i < w; i++) { d[i] = s[i]; }
}

int mini_memcmp(char *a, char *b, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] != b[i]) { return (int)a[i] - (int)b[i]; }
    }
    return 0;
}

int mini_strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] != 0 && b[i] != 0) {
        if (a[i] != b[i]) { break; }
        i++;
    }
    return (int)a[i] - (int)b[i];
}

void mini_strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i] != 0) { dst[i] = src[i]; i++; }
    dst[i] = 0;
}

int mini_atoi(char *s) {
    int value = 0;
    int sign = 1;
    int i = 0;
    if (s[0] == '-') { sign = -1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + ((int)s[i] - '0');
        i++;
    }
    return value * sign;
}

// Writes the decimal form of x at out, returns chars written.
int mini_itoa(int x, char *out) {
    int n = 0;
    if (x < 0) { out[n] = '-'; n++; x = 0 - x; }
    char tmp[24];
    int t = 0;
    if (x == 0) { tmp[t] = '0'; t++; }
    while (x > 0) { tmp[t] = (char)('0' + x % 10); t++; x = x / 10; }
    while (t > 0) { t--; out[n] = tmp[t]; n++; }
    out[n] = 0;
    return n;
}

// A classic variadic sprintf subset: %d %s %c %x %%.
// Deliberately trusts the format string: extra directives read stale
// slots from the (public) variadic area — the Section 7.6 format-
// string vulnerability, contained by the bounds enforcement.
int mini_sprintf(char *out, char *fmt, ...) {
    int o = 0;
    int argi = 0;
    int i = 0;
    while (fmt[i] != 0) {
        if (fmt[i] != '%') { out[o] = fmt[i]; o++; i++; continue; }
        i++;
        char c = fmt[i];
        i++;
        if (c == '%') { out[o] = '%'; o++; continue; }
        int v = __vararg(argi);
        argi++;
        if (c == 'd') {
            o = o + mini_itoa(v, out + o);
        }
        if (c == 'x') {
            char hx[20];
            int h = 0;
            if (v == 0) { hx[h] = '0'; h++; }
            while (v != 0) {
                int d = v & 15;
                if (d < 10) { hx[h] = (char)('0' + d); }
                else { hx[h] = (char)('a' + d - 10); }
                h++;
                v = (v >> 4) & 0x0fffffffffffffff;
            }
            while (h > 0) { h--; out[o] = hx[h]; o++; }
        }
        if (c == 's') {
            char *s = (char*)v;
            int k = 0;
            while (s[k] != 0) { out[o] = s[k]; o++; k++; }
        }
        if (c == 'c') { out[o] = (char)v; o++; }
    }
    out[o] = 0;
    return o;
}
"""
