"""Code generation: IR functions -> ConfISA with instrumentation.

This stage implements the run-time half of the paper's scheme:

* frame layout with **lock-step public/private stacks** — every frame
  reserves the same size on both stacks; private locals and private
  spills live at ``rsp+off+OFFSET`` (MPX layouts) or ``gs:[esp+off]``
  (segmentation), Section 3;
* **MPX bounds checks** before non-stack memory accesses, with the
  paper's three optimizations: register-operand checks with small
  displacements elided (guard zones), check **coalescing** within a
  basic block, and rsp-based accesses exempted entirely thanks to the
  inline ``_chkstk`` enforcement (Section 5.1, "MPX Optimizations");
* **segmentation scheme** operand rewriting: fs/gs prefixes + 32-bit
  sub-registers (Section 3);
* **taint-aware CFI**: MCall magic + taint bits at entries, MRet magic
  at return sites, return/icall check sequences (Section 4);
* the x64 (Windows) calling convention: 4 argument registers, variadic
  arguments spilled to the *public* stack by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BuildConfig
from ..errors import CodegenError
from ..ir import core as ir
from ..link.layout import MPX_STACK_OFFSET
from ..obs import events
from ..taint.lattice import PRIVATE, PUBLIC, Taint
from . import isa, regs
from .isa import Imm, Mem
from .regalloc import Assignment, allocate

WORD = 8
ELIDE_LIMIT = 1 << 20  # guard-zone size: displacements below this may be elided


def _region_tag(taint: Taint) -> str:
    return "priv" if taint is PRIVATE else "pub"


@dataclass
class _FrameLayout:
    size: int = 0
    out_vararg_bytes: int = 0
    pub_spill_base: int = 0
    priv_spill_base: int = 0
    slot_offsets: dict[int, tuple[int, bool]] = None  # uid -> (off, is_private)


class FunctionCodegen:
    def __init__(
        self, func: ir.IRFunction, module: ir.IRModule, config: BuildConfig
    ):
        self._func = func
        self._module = module
        self._config = config
        self._out: list[isa.Insn] = []
        with events.span("compile.regalloc", function=func.name):
            self._assign: Assignment = allocate(func)
        self._frame = self._layout_frame()
        # Per-block set of already-checked MPX keys (coalescing).
        self._checked: set = set()
        # checkopt=off conservatively preserves every check: the
        # codegen-time MPX optimizations are disabled wholesale (the
        # certified post-codegen optimizer never runs either).
        naive = config.checkopt == "off"
        self._elide_small_disp = config.elide_small_disp and not naive
        self._coalesce_checks = config.coalesce_checks and not naive

    # ------------------------------------------------------------------
    # Frame layout

    def _layout_frame(self) -> _FrameLayout:
        frame = _FrameLayout(slot_offsets={})
        out_bytes = 0
        for block in self._func.blocks:
            for instr in block.instrs:
                if isinstance(instr, (ir.Call, ir.CallIndirect)):
                    n_var = len(instr.args) - instr.n_fixed
                    out_bytes = max(out_bytes, n_var * WORD)
        frame.out_vararg_bytes = out_bytes

        split = self._config.split_stacks
        pub_off = out_bytes
        priv_off = 0 if split else None  # private side tracked separately

        frame.pub_spill_base = pub_off
        pub_off += self._assign.n_spills_public * WORD
        if split:
            frame.priv_spill_base = priv_off
            priv_off += self._assign.n_spills_private * WORD
        else:
            frame.priv_spill_base = pub_off
            pub_off += self._assign.n_spills_private * WORD

        def place(offset: int, slot: ir.StackSlot) -> int:
            align = max(slot.align, 1)
            offset = (offset + align - 1) // align * align
            frame.slot_offsets[slot.uid] = (offset, False)
            return offset + slot.size

        for slot in self._func.slots:
            if split and slot.taint is PRIVATE:
                align = max(slot.align, 1)
                priv_off = (priv_off + align - 1) // align * align
                frame.slot_offsets[slot.uid] = (priv_off, True)
                priv_off += slot.size
            else:
                pub_off = place(pub_off, slot)

        total = max(pub_off, priv_off or 0)
        frame.size = (total + 15) // 16 * 16
        return frame

    # ------------------------------------------------------------------
    # Emission helpers

    def _emit(self, insn: isa.Insn) -> None:
        self._out.append(insn)

    def _label(self, name: str) -> None:
        self._emit(isa.Label(name))

    def _loc(self, vreg: ir.VReg):
        return self._assign.location(vreg)

    def _spill_mem(self, kind: str, index: int) -> Mem:
        if kind == "priv":
            off = self._frame.priv_spill_base + index * WORD
            return self._stack_mem(off, private=True)
        off = self._frame.pub_spill_base + index * WORD
        return self._stack_mem(off, private=False)

    def _stack_mem(
        self,
        disp: int,
        private: bool,
        index: int | None = None,
        scale: int = 1,
    ) -> Mem:
        """An rsp-relative operand, adjusted for the stack-split scheme."""
        seg = None
        use32 = False
        if private and self._config.split_stacks:
            if self._config.scheme == "seg":
                seg = isa.SEG_GS
                use32 = True
            else:
                disp += MPX_STACK_OFFSET
        elif self._config.scheme == "seg":
            seg = isa.SEG_FS
            use32 = True
        return Mem(
            base=regs.RSP,
            index=index,
            scale=scale,
            disp=disp,
            seg=seg,
            use32=use32,
            region="priv" if private else "pub",
        )

    def _read(self, operand, scratch: int) -> "int | Imm":
        """Materialize an IR operand into a register id or an Imm."""
        if isinstance(operand, int):
            return Imm(operand)
        kind_loc = self._loc(operand)
        if kind_loc[0] == "reg":
            return kind_loc[1]
        _kind, skind, index = kind_loc
        self._emit(isa.Load(scratch, self._spill_mem(skind, index), WORD))
        self._invalidate_checks(scratch)
        return scratch

    def _write(self, vreg: ir.VReg):
        """Return (target_reg, flush) where flush() stores a spill."""
        kind_loc = self._loc(vreg)
        if kind_loc[0] == "reg":
            return kind_loc[1], lambda: None
        _kind, skind, index = kind_loc
        mem = self._spill_mem(skind, index)

        def flush(reg=regs.R10, mem=mem):
            self._emit(isa.Store(mem, reg, WORD))

        return regs.R10, flush

    # ------------------------------------------------------------------
    # Memory operands

    def _mem_operand(self, mref: ir.MemRef, scratch_pool: list[int]) -> Mem:
        """Translate an IR MemRef to an ISA operand (no checks yet)."""
        region = _region_tag(mref.region)
        if mref.slot is not None:
            off, is_priv = self._frame.slot_offsets[mref.slot.uid]
            index_reg = None
            if mref.index is not None:
                index_reg = self._as_reg(mref.index, scratch_pool)
            mem = self._stack_mem(
                off + mref.disp,
                private=is_priv,
                index=index_reg,
                scale=mref.scale,
            )
            mem.region = region
            return mem
        if mref.global_name is not None:
            if mref.index is None:
                # Statically-placed operand: always in-region, no index
                # to escape through, so no check is needed.
                return Mem(
                    global_name=mref.global_name,
                    disp=mref.disp,
                    region=region,
                )
            # Indexed global access: materialize the base address and
            # fall through to the (checked, prefixed) register path.
            scratch = scratch_pool.pop()
            self._emit(
                isa.Lea(scratch, Mem(global_name=mref.global_name, region=region))
            )
            # The scratch now holds a *different* base: any coalesced
            # check mentioning it is stale.  (ConfVerify catches this
            # if forgotten — it did, during development.)
            self._invalidate_checks(scratch)
            index_reg = self._as_reg(mref.index, scratch_pool)
            mem = Mem(
                base=scratch,
                index=index_reg,
                scale=mref.scale,
                disp=mref.disp,
                region=region,
            )
            self._apply_seg(mem)
            return mem
        base = self._as_reg(mref.base, scratch_pool)
        index_reg = None
        if mref.index is not None:
            index_reg = self._as_reg(mref.index, scratch_pool)
        mem = Mem(
            base=base,
            index=index_reg,
            scale=mref.scale,
            disp=mref.disp,
            region=region,
        )
        self._apply_seg(mem)
        return mem

    def _as_reg(self, operand, scratch_pool: list[int]) -> int:
        if isinstance(operand, int):
            scratch = scratch_pool.pop()
            self._emit(isa.MovRI(scratch, operand))
            self._invalidate_checks(scratch)
            return scratch
        value = self._read(operand, scratch_pool[-1])
        if isinstance(value, Imm):  # pragma: no cover - _read on VReg
            raise CodegenError("expected register")
        if value == scratch_pool[-1]:
            scratch_pool.pop()
        return value

    def _apply_seg(self, mem: Mem) -> None:
        # Absolute/global operands hold full, statically-placed VAs;
        # only register-anchored operands need the fs/gs confinement.
        if self._config.scheme == "seg" and mem.base is not None:
            mem.seg = isa.SEG_GS if mem.region == "priv" else isa.SEG_FS
            mem.use32 = True

    # ------------------------------------------------------------------
    # MPX checks

    def _maybe_check(self, mem: Mem) -> None:
        if self._config.scheme != "mpx":
            return
        # rsp-based operands are exempt (inline _chkstk keeps rsp in
        # bounds), as are absolute/global operands (statically placed).
        if mem.base == regs.RSP:
            return
        if mem.global_name is not None or mem.abs is not None:
            return
        bnd = 1 if mem.region == "priv" else 0
        if (
            self._elide_small_disp
            and mem.index is None
            and abs(mem.disp) < ELIDE_LIMIT
            and mem.base is not None
        ):
            key = ("reg", mem.base, bnd)
            if self._coalesce_checks and key in self._checked:
                events.counter(
                    "codegen.checks", kind="bnd", outcome="coalesced"
                ).inc()
                return
            self._checked.add(key)
            events.counter(
                "codegen.checks", kind="bnd", outcome="emitted"
            ).inc()
            self._emit(isa.BndChk(bnd, reg=mem.base))
            return
        key = ("mem", mem.base, mem.index, mem.scale, mem.disp, bnd)
        if self._coalesce_checks and key in self._checked:
            events.counter(
                "codegen.checks", kind="bnd", outcome="coalesced"
            ).inc()
            return
        self._checked.add(key)
        events.counter("codegen.checks", kind="bnd", outcome="emitted").inc()
        self._emit(
            isa.BndChk(
                bnd,
                mem=Mem(
                    base=mem.base,
                    index=mem.index,
                    scale=mem.scale,
                    disp=mem.disp,
                ),
            )
        )

    def _invalidate_checks(self, written_reg: int | None) -> None:
        if written_reg is None:
            self._checked.clear()
            return
        stale = [
            key
            for key in self._checked
            if written_reg in (key[1], key[2] if len(key) > 4 else None)
        ]
        for key in stale:
            self._checked.discard(key)

    # ------------------------------------------------------------------
    # Function body

    def run(self) -> list[isa.Insn]:
        cfg = self._config
        fn = self._func
        if cfg.cfi and not cfg.shadow_stack:
            bits = isa.mcall_bits(
                [int(v.taint) for v in _sig_arg_taints(fn)],
                _sig_ret_bit(fn),
                len(fn.sig.params),
            )
            self._emit(isa.MagicWord("call", bits))
        self._label(fn.name)
        if cfg.shadow_stack:
            self._emit(isa.ShadowPush())
        for reg in self._assign.used_callee_saves:
            self._emit(isa.Push(reg))
        if self._frame.size:
            self._emit(
                isa.Alu("sub", regs.RSP, regs.RSP, Imm(self._frame.size))
            )
        if cfg.chkstk:
            self._emit(isa.ChkStk())
        self._move_params_in()
        for block in fn.blocks:
            self._checked.clear()
            if block is not fn.blocks[0]:
                self._label(_blk(fn.name, block.name))
            for instr in block.instrs:
                self._lower(instr)
        return self._out

    def _move_params_in(self) -> None:
        pairs = []
        for index, vreg in enumerate(self._func.param_vregs):
            src = regs.ARG_REGS[index]
            loc = self._loc(vreg)
            if loc[0] == "reg":
                pairs.append((src, loc[1]))
            else:
                self._emit(
                    isa.Store(self._spill_mem(loc[1], loc[2]), src, WORD)
                )
        self._parallel_moves(pairs)

    def _parallel_moves(self, pairs: list[tuple[int, int]]) -> None:
        """Emit reg->reg moves that may permute, using R10 to break
        cycles."""
        pending = [(s, d) for s, d in pairs if s != d]
        while pending:
            progressed = False
            sources = {s for s, _d in pending}
            for i, (s, d) in enumerate(pending):
                # Safe to emit when nothing still needs to read d.
                if d not in sources:
                    self._emit(isa.MovRR(d, s))
                    pending.pop(i)
                    progressed = True
                    break
            if not progressed:
                # A cycle: break it by parking one source in scratch.
                s, d = pending.pop(0)
                self._emit(isa.MovRR(regs.R10, s))
                pending.append((regs.R10, d))
        return

    # ------------------------------------------------------------------
    # Per-instruction lowering

    def _lower(self, instr: ir.Instr) -> None:
        cfg = self._config
        fn = self._func
        if isinstance(instr, ir.Const):
            dst, flush = self._write(instr.dst)
            self._emit(isa.MovRI(dst, instr.value))
            flush()
        elif isinstance(instr, ir.Copy):
            src = self._read(instr.src, regs.R11)
            dst, flush = self._write(instr.dst)
            if isinstance(src, Imm):
                self._emit(isa.MovRI(dst, src.value))
            elif src != dst:
                self._emit(isa.MovRR(dst, src))
            flush()
            self._invalidate_checks(dst)
        elif isinstance(instr, ir.Un):
            src = self._read(instr.src, regs.R11)
            dst, flush = self._write(instr.dst)
            self._emit(isa.Alu(instr.op, dst, src, Imm(0)))
            flush()
            self._invalidate_checks(dst)
        elif isinstance(instr, ir.Bin):
            a = self._read(instr.a, regs.R11)
            b = self._read(instr.b, regs.R10 if a != regs.R10 else regs.R11)
            dst, flush = self._write(instr.dst)
            if instr.op in isa.COND_OPS:
                self._emit(isa.SetCC(instr.op, dst, a, b))
            else:
                self._emit(isa.Alu(instr.op, dst, a, b))
            flush()
            self._invalidate_checks(dst)
        elif isinstance(instr, ir.Load):
            pool = [regs.R11, regs.R10]
            mem = self._mem_operand(instr.mem, pool)
            self._maybe_check(mem)
            dst, flush = self._write(instr.dst)
            self._emit(isa.Load(dst, mem, instr.size))
            flush()
            self._invalidate_checks(dst)
        elif isinstance(instr, ir.Store):
            pool = [regs.R11, regs.R10]
            mem = self._mem_operand(instr.mem, pool)
            if not pool:
                # Both scratches used for addressing: collapse them.
                lea_mem = Mem(
                    base=mem.base, index=mem.index, scale=mem.scale,
                    disp=mem.disp, seg=mem.seg, use32=mem.use32,
                    region=mem.region,
                )
                self._emit(isa.Lea(regs.R10, lea_mem))
                self._invalidate_checks(regs.R10)
                mem = Mem(
                    base=regs.R10, seg=None, region=mem.region,
                )
                self._apply_seg_after_lea(mem)
                pool = [regs.R11]
            src = self._read(instr.src, pool[-1])
            self._maybe_check(mem)
            self._emit(isa.Store(mem, src, instr.size))
        elif isinstance(instr, ir.Lea):
            pool = [regs.R11, regs.R10]
            mem = self._mem_operand(instr.mem, pool)
            dst, flush = self._write(instr.dst)
            self._emit(isa.Lea(dst, mem))
            flush()
            self._invalidate_checks(dst)
        elif isinstance(instr, ir.LocalAddr):
            off, is_priv = self._frame.slot_offsets[instr.slot.uid]
            dst, flush = self._write(instr.dst)
            self._emit(isa.Lea(dst, self._stack_mem(off, private=is_priv)))
            flush()
        elif isinstance(instr, ir.GlobalAddr):
            dst, flush = self._write(instr.dst)
            gtaint = self._module.globals[instr.name].taint
            mem = Mem(global_name=instr.name, region=_region_tag(gtaint))
            self._emit(isa.Lea(dst, mem))
            flush()
        elif isinstance(instr, ir.FuncAddr):
            dst, flush = self._write(instr.dst)
            self._emit(isa.MovFuncAddr(dst, instr.fname))
            flush()
        elif isinstance(instr, ir.TlsBaseAddr):
            dst, flush = self._write(instr.dst)
            self._emit(isa.TlsBase(dst))
            flush()
        elif isinstance(instr, ir.VarArgAddr):
            dst, flush = self._write(instr.dst)
            base_disp = (
                self._frame.size
                + len(self._assign.used_callee_saves) * WORD
                + WORD  # skip the pushed return address
            )
            if isinstance(instr.index, int):
                mem = self._stack_mem(
                    base_disp + instr.index * WORD, private=False
                )
            else:
                idx = self._read(instr.index, regs.R11)
                if isinstance(idx, Imm):  # pragma: no cover
                    raise CodegenError("vararg index")
                mem = self._stack_mem(
                    base_disp, private=False, index=idx, scale=WORD
                )
            self._emit(isa.Lea(dst, mem))
            flush()
        elif isinstance(instr, (ir.Call, ir.CallIndirect)):
            self._lower_call(instr)
            self._checked.clear()
        elif isinstance(instr, ir.Jump):
            self._emit(isa.Jmp(_blk(fn.name, instr.target)))
        elif isinstance(instr, ir.Branch):
            cond = self._read(instr.cond, regs.R11)
            self._emit(
                isa.Br("ne", cond, Imm(0), _blk(fn.name, instr.if_true))
            )
            self._emit(isa.Jmp(_blk(fn.name, instr.if_false)))
        elif isinstance(instr, ir.SwitchBr):
            self._lower_switch_br(instr)
        elif isinstance(instr, ir.Ret):
            self._lower_ret(instr)
        else:  # pragma: no cover
            raise CodegenError(f"cannot lower {instr!r}")

    def _lower_switch_br(self, instr) -> None:
        from ..arith import wrap

        fn_name = self._func.name
        cond = self._read(instr.cond, regs.R11)
        default_label = _blk(fn_name, instr.default)
        values = [v for v, _t in instr.table]
        lo, hi = min(values), max(values)
        span = hi - lo + 1
        dense = len(values) >= 3 and span <= 2 * len(values) and span <= 512
        if self._config.pipeline == "vanilla" and dense:
            # Jump-table lowering (an indirect jump): range-guard, then
            # dispatch through a read-only table.
            if isinstance(cond, Imm):  # pragma: no cover - folded earlier
                cond_reg = regs.R11
                self._emit(isa.MovRI(cond_reg, cond.value))
            else:
                cond_reg = cond
            self._emit(isa.Br("lt", cond_reg, Imm(wrap(lo)), default_label))
            self._emit(isa.Br("gt", cond_reg, Imm(wrap(hi)), default_label))
            by_value = {v: t for v, t in instr.table}
            targets = [
                _blk(fn_name, by_value.get(lo + i, instr.default))
                for i in range(span)
            ]
            self._emit(isa.JmpTable(cond_reg, lo, targets))
            return
        # Compare chain: the only lowering ConfVerify accepts.
        for value, target in instr.table:
            self._emit(
                isa.Br("eq", cond, Imm(wrap(value)), _blk(fn_name, target))
            )
        self._emit(isa.Jmp(default_label))

    def _apply_seg_after_lea(self, mem: Mem) -> None:
        # After a Lea produced a full VA, re-apply the segment prefix so
        # the access is still confined to its region.
        self._apply_seg(mem)

    def _lower_call(self, instr) -> None:
        cfg = self._config
        n_fixed = instr.n_fixed
        # 1. Variadic arguments to the public outgoing area.
        for j, arg in enumerate(instr.args[n_fixed:]):
            src = self._read(arg, regs.R11)
            self._emit(
                isa.Store(self._stack_mem(j * WORD, private=False), src, WORD)
            )
        # 2. Fixed arguments into ARG_REGS (parallel-safe).
        reg_pairs: list[tuple[int, int]] = []
        imm_moves: list[tuple[int, int]] = []
        spill_loads: list[tuple[int, Mem]] = []
        for index, arg in enumerate(instr.args[:n_fixed]):
            target = regs.ARG_REGS[index]
            if isinstance(arg, int):
                imm_moves.append((target, arg))
                continue
            loc = self._loc(arg)
            if loc[0] == "reg":
                reg_pairs.append((loc[1], target))
            else:
                spill_loads.append((target, self._spill_mem(loc[1], loc[2])))
        self._parallel_moves(reg_pairs)
        for target, mem in spill_loads:
            self._emit(isa.Load(target, mem, WORD))
        for target, value in imm_moves:
            self._emit(isa.MovRI(target, value))
        # 3. The transfer itself.
        site_bits = isa.mcall_bits(
            [int(t) for t in instr.arg_taints],
            int(instr.ret_taint),
            n_fixed,
        )
        if isinstance(instr, ir.Call):
            target_label = instr.name
            if instr.name in self._module.externs:
                target_label = f"stub.{instr.name}"
            call = isa.CallD(target_label)
            call.site_bits = site_bits
            self._emit(call)
        else:
            target = self._read(instr.target, regs.R11)
            if isinstance(target, Imm):  # pragma: no cover
                raise CodegenError("icall immediate")
            if cfg.cfi and not cfg.shadow_stack:
                events.counter(
                    "codegen.checks", kind="cfi", outcome="emitted"
                ).inc()
                self._emit(isa.CheckMagic(target, "call", site_bits))
            self._emit(isa.CallI(target))
        # 4. Return-site magic.
        if cfg.cfi and not cfg.shadow_stack:
            self._emit(isa.MagicWord("ret", isa.mret_bits(instr.ret_taint)))
        # 5. Result.
        if instr.dst is not None:
            loc = self._loc(instr.dst)
            if loc[0] == "reg":
                if loc[1] != regs.RAX:
                    self._emit(isa.MovRR(loc[1], regs.RAX))
            else:
                self._emit(
                    isa.Store(self._spill_mem(loc[1], loc[2]), regs.RAX, WORD)
                )

    def _lower_ret(self, instr: ir.Ret) -> None:
        cfg = self._config
        if instr.value is not None:
            value = self._read(instr.value, regs.R11)
            if isinstance(value, Imm):
                self._emit(isa.MovRI(regs.RAX, value.value))
            elif value != regs.RAX:
                self._emit(isa.MovRR(regs.RAX, value))
        elif cfg.instrumented:
            # Void return: rax is dead and conservatively private, but
            # the magic encodes a public return bit — clear it so no
            # private residue rides back to the caller.
            self._emit(isa.MovRI(regs.RAX, 0))
        if self._frame.size:
            self._emit(
                isa.Alu("add", regs.RSP, regs.RSP, Imm(self._frame.size))
            )
        for reg in reversed(self._assign.used_callee_saves):
            self._emit(isa.Pop(reg))
        if cfg.shadow_stack:
            self._emit(isa.ShadowPop())
            self._emit(isa.RetPlain())
            return
        if cfg.cfi:
            ret_bit = _sig_ret_bit(self._func)
            self._emit(isa.Pop(regs.R11))
            events.counter(
                "codegen.checks", kind="cfi", outcome="emitted"
            ).inc()
            self._emit(isa.CheckMagic(regs.R11, "ret", isa.mret_bits(ret_bit)))
            self._emit(isa.JmpReg(regs.R11, skip=1))
        else:
            self._emit(isa.RetPlain())


def _blk(fn_name: str, block_name: str) -> str:
    # Block names already carry the function prefix from IRFunction.
    return block_name if block_name.startswith(fn_name) else f"{fn_name}.{block_name}"


def _sig_arg_taints(fn: ir.IRFunction):
    return [p for p in fn.sig.params]


def _sig_ret_bit(fn: ir.IRFunction) -> int:
    from ..minic.types import VoidType

    if isinstance(fn.sig.ret, VoidType):
        return 0
    taint = fn.sig.ret.taint
    return int(taint)


def compile_function(
    func: ir.IRFunction, module: ir.IRModule, config: BuildConfig
):
    """Compile one IR function to instructions + CFI metadata."""
    from ..link.objfile import CompiledFunction
    from ..minic.types import VoidType

    with events.span("codegen.function", function=func.name):
        gen = FunctionCodegen(func, module, config)
        insns = gen.run()
    arg_taints = [p.taint for p in func.sig.params]
    ret_taint = (
        PUBLIC if isinstance(func.sig.ret, VoidType) else func.sig.ret.taint
    )
    entry_bits = isa.mcall_bits(
        [int(t) for t in arg_taints], int(ret_taint), len(arg_taints)
    )
    return CompiledFunction(
        name=func.name,
        insns=insns,
        entry_bits=entry_bits,
        arg_taints=list(arg_taints),
        ret_taint=ret_taint,
        n_args=len(arg_taints),
    )


def compile_module(module: ir.IRModule, config: BuildConfig):
    """Compile every function in a module into a UObject."""
    from ..link.objfile import UObject

    with events.span("compile.codegen", config=config.name):
        functions = [
            compile_function(func, module, config)
            for func in module.functions.values()
        ]
    imports = sorted(module.externs.values(), key=lambda e: e.name)
    externals = sorted(module.u_externs.values(), key=lambda e: e.name)
    return UObject(
        name=module.name,
        functions=functions,
        globals=dict(module.globals),
        imports=imports,
        config=config,
        externals=externals,
    )
