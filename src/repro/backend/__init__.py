"""Backend: ConfISA, register allocation, code generation."""

from .codegen import compile_function, compile_module

__all__ = ["compile_function", "compile_module"]
