"""Physical register model (x64-flavoured).

The calling convention follows the paper's x64 Windows convention:
four argument registers, one return register.  Callee-save registers
may only ever hold *public* values — ConfLLVM achieves the same
invariant by having callers save and clear private-tainted callee-saves
before calls; restricting allocation is an equivalent, simpler policy
with identical observable behaviour (private values never survive in
registers across a call boundary).
"""

from __future__ import annotations

RAX = 0
RCX = 1
RDX = 2
R8 = 3
R9 = 4
R10 = 5
R11 = 6
RBX = 7
RSI = 8
RDI = 9
R12 = 10
R13 = 11
R14 = 12
R15 = 13
RSP = 14

NUM_GPRS = 15

# Segment registers (separate space; only the machine and T wrappers
# may write them — ConfVerify rejects U code that modifies them).
FS = 100
GS = 101

REG_NAMES = {
    RAX: "rax",
    RCX: "rcx",
    RDX: "rdx",
    R8: "r8",
    R9: "r9",
    R10: "r10",
    R11: "r11",
    RBX: "rbx",
    RSI: "rsi",
    RDI: "rdi",
    R12: "r12",
    R13: "r13",
    R14: "r14",
    R15: "r15",
    RSP: "rsp",
    FS: "fs",
    GS: "gs",
}

ARG_REGS = (RCX, RDX, R8, R9)
RET_REG = RAX

CALLER_SAVE = (RAX, RCX, RDX, R8, R9, R10, R11)
CALLEE_SAVE = (RBX, RSI, RDI, R12, R13, R14, R15)

# Registers the code generator reserves for its own addressing/spill
# scratch; never handed to the register allocator.
SCRATCH = (R10, R11)

# Allocatable pools.
ALLOC_PRIVATE = (RAX, RCX, RDX, R8, R9)  # caller-save only
ALLOC_PUBLIC = (RBX, RSI, RDI, R12, R13, R14, R15, RAX, RCX, RDX, R8, R9)


def name(reg: int) -> str:
    return REG_NAMES.get(reg, f"r?{reg}")
