"""ConfISA: the abstract x64-flavoured target instruction set.

The ISA keeps exactly the properties the ConfLLVM scheme relies on:

* memory operands of the x64 shape ``seg:[base + index*scale + disp]``
  with optional 32-bit sub-register addressing (the segmentation
  scheme's ``fs+eax`` trick);
* MPX-style bound checks against the ``bnd0``/``bnd1`` registers;
* code that is *readable as data*: each word of the code space has a
  deterministic 64-bit encoding, so the magic-sequence machinery (the
  uniqueness scan at link time, and the runtime ``cmp [r], imm`` of the
  CFI checks) is real, not pretend;
* magic words executing as no-ops, so direct calls fall past a callee's
  entry sequence and CFI returns skip over return-site markers.

Arithmetic is 3-address rather than x64's 2-address form — a cosmetic
simplification that changes nothing the scheme checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..arith import MASK64, wrap
from . import regs

COND_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

# Segment selector constants for memory operands.
SEG_NONE = None
SEG_FS = "fs"  # public segment
SEG_GS = "gs"  # private segment

MAGIC_PREFIX_BITS = 59
MAGIC_TAINT_BITS = 5


@dataclass
class Mem:
    """A memory operand.

    Exactly one of ``base`` (register id) or ``abs`` (absolute address,
    produced by the linker for globals) anchors the operand.  ``region``
    tags which region the access must land in ('pub'/'priv') — it is
    *metadata* consumed by the instrumentation pass and the verifier,
    not by the machine.
    """

    base: int | None = None
    index: int | None = None
    scale: int = 1
    disp: int = 0
    seg: str | None = None
    use32: bool = False
    abs: int | None = None
    global_name: str | None = None  # pre-link; linker resolves to abs
    region: str = "pub"

    def __repr__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(regs.name(self.base) + ("32" if self.use32 else ""))
        if self.abs is not None:
            parts.append(f"{self.abs:#x}")
        if self.global_name is not None:
            parts.append(f"@{self.global_name}")
        if self.index is not None:
            parts.append(f"{regs.name(self.index)}*{self.scale}")
        if self.disp:
            parts.append(f"{self.disp:+d}")
        body = "+".join(parts) or "0"
        prefix = f"{self.seg}:" if self.seg else ""
        return f"{prefix}[{body}]"


class Insn:
    """Base class for instructions (one code word each)."""

    __slots__ = ()
    cost_class = "alu"

    def encoding(self) -> int:
        """Deterministic 64-bit encoding of this word, used for the
        magic-uniqueness scan and for reads of code memory."""
        digest = hashlib.blake2b(repr(self).encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little") & MASK64


@dataclass(repr=False)
class Label(Insn):
    """Pseudo-instruction: marks an address; occupies no code word."""

    name: str

    def __repr__(self):
        return f"{self.name}:"


@dataclass(repr=False)
class MagicWord(Insn):
    """A 64-bit magic-sequence word (data; executes as a no-op).

    ``kind`` is 'call' (procedure entry: 4 argument taint bits + return
    taint bit) or 'ret' (return site: return taint bit + 4 zero bits).
    ``value`` is patched by the linker once the 59-bit prefixes are
    chosen.
    """

    kind: str
    taint_bits: int
    value: int = 0
    cost_class = "nop"

    def encoding(self) -> int:
        return self.value & MASK64

    def __repr__(self):
        return f"magic.{self.kind} bits={self.taint_bits:05b} ({self.value:#x})"


@dataclass(repr=False)
class MovRI(Insn):
    dst: int
    imm: int

    def __repr__(self):
        return f"mov {regs.name(self.dst)}, {self.imm:#x}"


@dataclass(repr=False)
class MovRR(Insn):
    dst: int
    src: int

    def __repr__(self):
        return f"mov {regs.name(self.dst)}, {regs.name(self.src)}"


@dataclass(repr=False)
class MovFuncAddr(Insn):
    """Materialize a function's address (patched by the linker).

    In instrumented binaries the value points at the function's MCall
    magic word, so CFI checks at indirect call sites can read it.
    """

    dst: int
    func: str
    value: int = 0

    def __repr__(self):
        return f"mov {regs.name(self.dst)}, &{self.func} ({self.value:#x})"


@dataclass(repr=False)
class Alu(Insn):
    """3-address ALU op; ops as in the IR (add/sub/.../shr)."""

    op: str
    dst: int
    a: "int | Imm"
    b: "int | Imm"

    def __repr__(self):
        return (
            f"{self.op} {regs.name(self.dst)}, {_opnd(self.a)}, {_opnd(self.b)}"
        )


@dataclass(frozen=True, repr=False)
class Imm:
    """An immediate ALU operand (distinguished from register ids)."""

    value: int

    def __repr__(self):
        return f"${self.value}"


@dataclass(repr=False)
class SetCC(Insn):
    op: str  # one of COND_OPS
    dst: int
    a: "int | Imm"
    b: "int | Imm"

    def __repr__(self):
        return f"set{self.op} {regs.name(self.dst)}, {_opnd(self.a)}, {_opnd(self.b)}"


@dataclass(repr=False)
class Load(Insn):
    dst: int
    mem: Mem
    size: int
    cost_class = "mem"

    def __repr__(self):
        return f"load{self.size} {regs.name(self.dst)}, {self.mem!r}"


@dataclass(repr=False)
class Store(Insn):
    mem: Mem
    src: "int | Imm"
    size: int
    cost_class = "mem"

    def __repr__(self):
        return f"store{self.size} {self.mem!r}, {_opnd(self.src)}"


@dataclass(repr=False)
class Lea(Insn):
    dst: int
    mem: Mem

    def __repr__(self):
        return f"lea {regs.name(self.dst)}, {self.mem!r}"


@dataclass(repr=False)
class Push(Insn):
    src: "int | Imm"
    cost_class = "mem"

    def __repr__(self):
        return f"push {_opnd(self.src)}"


@dataclass(repr=False)
class Pop(Insn):
    dst: int
    cost_class = "mem"

    def __repr__(self):
        return f"pop {regs.name(self.dst)}"


@dataclass(repr=False)
class Jmp(Insn):
    target: str
    addr: int = -1
    cost_class = "branch"

    def __repr__(self):
        return f"jmp {self.target}"


@dataclass(repr=False)
class Br(Insn):
    """Compare-and-branch (folds x64's cmp+jcc into one word)."""

    op: str
    a: "int | Imm"
    b: "int | Imm"
    target: str
    addr: int = -1
    cost_class = "branch"

    def __repr__(self):
        return f"b{self.op} {_opnd(self.a)}, {_opnd(self.b)}, {self.target}"


@dataclass(repr=False)
class JmpTable(Insn):
    """Jump-table dispatch: ``pc = table[reg - base]``.

    Only the *vanilla* pipeline emits this (dense switches).  ConfLLVM
    disables jump-table lowering — ConfVerify rejects indirect jumps —
    and uses compare chains instead (Section 4, "Indirect jumps").
    The table itself is part of the instruction word (conceptually:
    read-only memory next to the code).
    """

    reg: int
    base: int
    targets: list[str] = field(default_factory=list)
    addrs: list[int] = field(default_factory=list)
    cost_class = "jmptable"

    def __repr__(self):
        return (
            f"jmp table[{regs.name(self.reg)} - {self.base}] "
            f"({len(self.targets)} entries)"
        )


@dataclass(repr=False)
class CallD(Insn):
    """Direct call: pushes the return address, jumps to the label.

    ``site_bits`` records the call site's register taints so the linker
    can perform the static direct-call taint check and ConfVerify can
    re-check it against the callee's magic word.
    """

    target: str
    addr: int = -1
    site_bits: int = 0
    cost_class = "call"

    def __repr__(self):
        return f"call {self.target} bits={self.site_bits:05b}"


@dataclass(repr=False)
class CallI(Insn):
    """Indirect call through a register (CFI-checked beforehand)."""

    reg: int
    cost_class = "call"

    def __repr__(self):
        return f"call {regs.name(self.reg)}"


@dataclass(repr=False)
class RetPlain(Insn):
    """Vanilla return; only the Base pipeline emits it."""

    cost_class = "call"

    def __repr__(self):
        return "ret"


@dataclass(repr=False)
class JmpInd(Insn):
    """Memory-indirect jump; only linker-generated T-import stubs use
    it, through the read-only externals table (ConfVerify enforces
    this)."""

    mem: Mem
    cost_class = "branch"

    def __repr__(self):
        return f"jmp {self.mem!r}"


@dataclass(repr=False)
class JmpReg(Insn):
    """Jump to reg+skip; the tail of the CFI return sequence (the
    ``add r, 8; jmp r`` of Section 4)."""

    reg: int
    skip: int = 1
    cost_class = "branch"

    def __repr__(self):
        return f"jmp {regs.name(self.reg)}+{self.skip}"


@dataclass(repr=False)
class CheckMagic(Insn):
    """The CFI compare: fault unless ``code[reg]`` equals the expected
    magic word.  Stores the *bitwise negation* of the expected word so
    the magic sequence itself never appears in instruction encodings
    (the paper's M_ret_inverted trick); the comparison negates again.

    Folds the paper's ``mov r2, ~M; not r2; cmp [r1], r2; jne fail``
    into one word with an equivalent cost.
    """

    reg: int
    kind: str  # 'call' or 'ret'
    taint_bits: int
    inv_value: int = 0
    cost_class = "cfi"

    def __repr__(self):
        return (
            f"chkmagic.{self.kind} [{regs.name(self.reg)}], "
            f"~{self.inv_value:#x} bits={self.taint_bits:05b}"
        )


@dataclass(repr=False)
class BndChk(Insn):
    """MPX bound check (bndcl+bndcu pair folded into one word of cost
    2x a single check).  ``bnd`` is 0 (public) or 1 (private).  The
    operand is either a register or a full memory operand; register
    checks are cheaper (the paper's observation)."""

    bnd: int
    reg: int | None = None
    mem: Mem | None = None
    cost_class = "bndchk"

    def __repr__(self):
        what = regs.name(self.reg) if self.reg is not None else repr(self.mem)
        return f"bndchk bnd{self.bnd}, {what}"


@dataclass(repr=False)
class ChkStk(Insn):
    """Inline ``_chkstk``: fault if rsp escaped the thread's stack."""

    cost_class = "alu"

    def __repr__(self):
        return "chkstk"


@dataclass(repr=False)
class TlsBase(Insn):
    """Compute the TLS base: mask the low 20 bits of rsp to zero
    (Section 3, multi-threading support)."""

    dst: int

    def __repr__(self):
        return f"tlsbase {regs.name(self.dst)}"


@dataclass(repr=False)
class ShadowPush(Insn):
    """Shadow-stack ablation: record the return address on entry."""

    cost_class = "mem"

    def __repr__(self):
        return "shadowpush"


@dataclass(repr=False)
class ShadowPop(Insn):
    """Shadow-stack ablation: check [rsp] against the shadow top."""

    cost_class = "shadow"

    def __repr__(self):
        return "shadowpop"


@dataclass(repr=False)
class Halt(Insn):
    """Terminate the program (the loader plants the top-level return
    here)."""

    cost_class = "nop"

    def __repr__(self):
        return "halt"


@dataclass(repr=False)
class Fail(Insn):
    """__debugbreak: unconditional CFI failure trap."""

    cost_class = "nop"

    def __repr__(self):
        return "fail"


def _opnd(x) -> str:
    if isinstance(x, Imm):
        return repr(x)
    return regs.name(x)


def mcall_bits(arg_taints: list, ret_taint, n_args: int) -> int:
    """Encode entry taint bits: arg0..arg3 then return; unused argument
    registers are conservatively private (bit 1), per Section 4."""
    bits = 0
    for i in range(4):
        if i < n_args:
            bit = int(arg_taints[i])
        else:
            bit = 1
        bits |= bit << i
    bits |= int(ret_taint) << 4
    return bits


def mret_bits(ret_taint) -> int:
    """Return-site taint bits: 1 taint bit padded with four zeros."""
    return int(ret_taint)


# ---------------------------------------------------------------------------
# Check-site classification.
#
# Every instruction the instrumentation passes insert to *enforce*
# confidentiality falls into one of these categories; the linker records
# the classification of every code address in ``Binary.check_sites`` so
# profilers and the verifier agree on what counts as a check.  The
# categories line up with the paper's Fig. 5-8 overhead decomposition:
# MPX bound checks, magic-sequence CFI checks, the magic words
# themselves (zero-cost landing pads), stack probes, and the
# shadow-stack ablation.

CHECK_CATEGORIES = ("bnd", "cfi", "magic", "chkstk", "shadow")

_CHECK_KINDS = {
    BndChk: "bnd",
    CheckMagic: "cfi",
    MagicWord: "magic",
    ChkStk: "chkstk",
    ShadowPush: "shadow",
    ShadowPop: "shadow",
}


def check_kind(insn: Insn) -> str | None:
    """The check category of ``insn``, or None for ordinary code."""
    return _CHECK_KINDS.get(type(insn))
