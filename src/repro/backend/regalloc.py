"""Taint-aware linear-scan register allocation.

The allocator enforces the paper's register-taint discipline:

* callee-save registers only ever hold **public** values (equivalent to
  ConfLLVM's caller-save-and-clear of private callee-saves: private
  data never survives in a register across a call boundary);
* private virtual registers live across a call are spilled — to the
  **private** stack, which is the taint-aware spilling of Section 5.1;
* spill slots inherit the taint of the value they hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.core import Call, CallIndirect, IRFunction, VReg
from ..taint.lattice import PRIVATE, Taint
from . import regs


@dataclass
class Interval:
    vreg: VReg
    start: int
    end: int

    @property
    def taint(self) -> Taint:
        return self.vreg.taint


@dataclass
class Assignment:
    """Result of allocation for one function."""

    # vreg id -> physical register
    reg_of: dict[int, int] = field(default_factory=dict)
    # vreg id -> spill index (dense, per taint)
    spill_of: dict[int, tuple[str, int]] = field(default_factory=dict)
    n_spills_public: int = 0
    n_spills_private: int = 0
    used_callee_saves: list[int] = field(default_factory=list)

    def location(self, vreg: VReg):
        if vreg.id in self.reg_of:
            return ("reg", self.reg_of[vreg.id])
        return ("spill", *self.spill_of[vreg.id])


def _compute_liveness(func: IRFunction):
    """Block-level liveness (live-in/live-out sets of vreg ids)."""
    use_sets: dict[str, set[int]] = {}
    def_sets: dict[str, set[int]] = {}
    for block in func.blocks:
        uses: set[int] = set()
        defs: set[int] = set()
        for instr in block.instrs:
            for u in instr.uses():
                if u.id not in defs:
                    uses.add(u.id)
            for d in instr.defs():
                defs.add(d.id)
        use_sets[block.name] = uses
        def_sets[block.name] = defs
    live_in: dict[str, set[int]] = {b.name: set() for b in func.blocks}
    live_out: dict[str, set[int]] = {b.name: set() for b in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            out: set[int] = set()
            for succ in block.successors():
                out |= live_in[succ]
            new_in = use_sets[block.name] | (out - def_sets[block.name])
            if out != live_out[block.name] or new_in != live_in[block.name]:
                live_out[block.name] = out
                live_in[block.name] = new_in
                changed = True
    return live_in, live_out


def _build_intervals(func: IRFunction):
    live_in, live_out = _compute_liveness(func)
    position = 0
    starts: dict[int, int] = {}
    ends: dict[int, int] = {}
    vregs: dict[int, VReg] = {}
    call_positions: list[int] = []

    def touch(vreg: VReg, pos: int):
        vregs[vreg.id] = vreg
        if vreg.id not in starts or pos < starts[vreg.id]:
            starts[vreg.id] = pos
        if vreg.id not in ends or pos > ends[vreg.id]:
            ends[vreg.id] = pos

    for vreg in func.param_vregs:
        touch(vreg, 0)

    block_bounds: dict[str, tuple[int, int]] = {}
    instr_positions: dict[int, int] = {}
    for block in func.blocks:
        first = position
        for instr in block.instrs:
            if isinstance(instr, (Call, CallIndirect)):
                call_positions.append(position)
            for u in instr.uses():
                touch(u, position)
            for d in instr.defs():
                touch(d, position)
            position += 1
        block_bounds[block.name] = (first, position - 1)

    # Extend intervals to block boundaries where the value is live.
    for block in func.blocks:
        first, last = block_bounds[block.name]
        for vid in live_in[block.name]:
            if vid in vregs:
                starts[vid] = min(starts[vid], first)
        for vid in live_out[block.name]:
            if vid in vregs:
                ends[vid] = max(ends[vid], last)

    intervals = [
        Interval(vregs[vid], starts[vid], ends[vid]) for vid in vregs
    ]
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, call_positions


def allocate(func: IRFunction) -> Assignment:
    intervals, call_positions = _build_intervals(func)
    result = Assignment()

    def crosses_call(iv: Interval) -> bool:
        return any(iv.start < p < iv.end for p in call_positions)

    active: list[tuple[int, int, Interval]] = []  # (end, reg, interval)
    callee_saves_used: set[int] = set()

    def spill(iv: Interval) -> None:
        if iv.taint is PRIVATE:
            result.spill_of[iv.vreg.id] = ("priv", result.n_spills_private)
            result.n_spills_private += 1
        else:
            result.spill_of[iv.vreg.id] = ("pub", result.n_spills_public)
            result.n_spills_public += 1

    for iv in intervals:
        active = [entry for entry in active if entry[0] >= iv.start]
        in_use = {entry[1] for entry in active}
        if crosses_call(iv):
            if iv.taint is PRIVATE:
                # Private values never survive a call in a register.
                spill(iv)
                continue
            pool = regs.CALLEE_SAVE
        elif iv.taint is PRIVATE:
            pool = regs.ALLOC_PRIVATE
        else:
            pool = regs.ALLOC_PUBLIC
        chosen = None
        for reg in pool:
            if reg in regs.SCRATCH or reg in in_use:
                continue
            chosen = reg
            break
        if chosen is None:
            spill(iv)
            continue
        result.reg_of[iv.vreg.id] = chosen
        if chosen in regs.CALLEE_SAVE:
            callee_saves_used.add(chosen)
        active.append((iv.end, chosen, iv))

    result.used_callee_saves = sorted(callee_saves_used)
    return result
