"""Lowering from the checked MiniC AST to taint-annotated IR.

By this point qualifier inference has produced concrete taints on every
type, so the lowering simply copies them onto virtual registers, frame
slots, and memory references.  Aggregates (arrays, structs) live in
frame slots; scalars also start in slots and are promoted to registers
by the ``promote_slots`` optimization pass.
"""

from __future__ import annotations

import hashlib

from ..errors import CodegenError
from ..ir.core import (
    Bin,
    Block,
    Branch,
    Call,
    CallIndirect,
    Const,
    Copy,
    ExternSig,
    FuncAddr,
    IRFunction,
    IRGlobal,
    IRModule,
    Jump,
    Lea,
    Load,
    MemRef,
    Ret,
    StackSlot,
    Store,
    SwitchBr,
    TlsBaseAddr,
    Un,
    VarArgAddr,
    VReg,
)
from ..minic import ast_nodes as ast
from ..minic.sema import CheckedProgram, FunctionInfo, LocalSymbol
from ..minic.types import (
    ArrayType,
    FuncType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
)
from ..taint.lattice import PRIVATE, PUBLIC, Taint

_BINOP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}


def _value_size(type_: Type) -> int:
    if isinstance(type_, IntType):
        return type_.width
    return 8


class FunctionLowerer:
    def __init__(
        self,
        module: IRModule,
        checked: CheckedProgram,
        info: FunctionInfo,
        string_names: dict[bytes, str],
    ):
        self._module = module
        self._checked = checked
        self._info = info
        self._strings = string_names
        self._func = IRFunction(info.name, info.type, info.param_names)
        self._slots: dict[int, StackSlot] = {}  # local uid -> slot
        self._block: Block = self._func.new_block("entry")
        self._break_stack: list[str] = []
        self._continue_stack: list[str] = []

    # -- plumbing -----------------------------------------------------

    def _emit(self, instr) -> None:
        if self._block.instrs and self._block.terminator.is_terminator:
            # Unreachable code after return/break; park it in a fresh
            # block that simplifycfg will delete.
            self._block = self._func.new_block("dead")
        self._block.instrs.append(instr)

    def _terminate(self, instr) -> None:
        self._emit(instr)

    def _switch_to(self, block: Block) -> None:
        if not self._block.instrs or not self._block.terminator.is_terminator:
            self._terminate(Jump(block.name))
        self._block = block

    def _temp(self, taint: Taint, hint: str = "t") -> VReg:
        return self._func.new_vreg(taint, hint)

    def _as_vreg(self, operand, taint: Taint = PUBLIC) -> VReg:
        if isinstance(operand, VReg):
            return operand
        vreg = self._temp(taint, "imm")
        self._emit(Const(vreg, operand))
        return vreg

    def _taint_of(self, node: ast.Expr) -> Taint:
        taint = node.type.taint
        assert isinstance(taint, Taint), f"unsolved taint on {node!r}"
        return taint

    # -- top level ------------------------------------------------------

    def lower(self) -> IRFunction:
        info = self._info
        for symbol in info.locals:
            slot = self._func.new_slot(
                symbol.name,
                max(symbol.type.size, 1),
                symbol.type.align,
                _slot_taint(symbol.type),
            )
            slot.address_taken = symbol.address_taken or not symbol.type.is_scalar
            self._slots[symbol.uid] = slot
        # Parameters arrive in virtual registers and are spilled to
        # their slots (promotion un-spills the scalar ones).
        for index, symbol in enumerate(s for s in info.locals if s.is_param):
            taint = _slot_taint(symbol.type)
            vreg = self._func.new_vreg(taint, f"arg{index}")
            self._func.param_vregs.append(vreg)
            slot = self._slots[symbol.uid]
            self._emit(
                Store(
                    MemRef(region=taint, slot=slot),
                    vreg,
                    _value_size(symbol.type),
                )
            )
        assert info.body is not None
        self._lower_block(info.body)
        if not self._block.instrs or not self._block.terminator.is_terminator:
            if isinstance(info.type.ret, VoidType):
                self._terminate(Ret(None))
            else:
                self._terminate(Ret(0))
        return self._func

    # -- statements -------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            self._lower_local_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = self._lower_expr(stmt.value)
            self._terminate(Ret(value))
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_stack:
                raise CodegenError("break outside loop")
            self._terminate(Jump(self._break_stack[-1]))
        elif isinstance(stmt, ast.Continue):
            if not self._continue_stack:
                raise CodegenError("continue outside loop")
            self._terminate(Jump(self._continue_stack[-1]))
        else:  # pragma: no cover
            raise CodegenError(f"unknown stmt {type(stmt).__name__}")

    def _lower_local_decl(self, stmt: ast.LocalDecl) -> None:
        if stmt.init is None:
            return
        symbol = stmt.symbol
        slot = self._slots[symbol.uid]
        value = self._lower_expr(stmt.init)
        self._emit(
            Store(
                MemRef(region=slot.taint, slot=slot),
                value,
                _value_size(symbol.type),
            )
        )

    def _lower_cond_branch(self, cond: ast.Expr, true_bb: str, false_bb: str):
        value = self._lower_expr(cond)
        if isinstance(value, int):
            self._terminate(Jump(true_bb if value != 0 else false_bb))
            return
        self._terminate(Branch(value, true_bb, false_bb))

    def _lower_if(self, stmt: ast.If) -> None:
        then_bb = self._func.new_block("then")
        end_bb = self._func.new_block("endif")
        else_bb = self._func.new_block("else") if stmt.els else end_bb
        self._lower_cond_branch(stmt.cond, then_bb.name, else_bb.name)
        self._block = then_bb
        self._lower_stmt(stmt.then)
        self._switch_to(end_bb) if stmt.els is None else None
        if stmt.els is not None:
            if not self._block.instrs or not self._block.terminator.is_terminator:
                self._terminate(Jump(end_bb.name))
            self._block = else_bb
            self._lower_stmt(stmt.els)
            self._switch_to(end_bb)

    def _lower_while(self, stmt: ast.While) -> None:
        head = self._func.new_block("while.head")
        body = self._func.new_block("while.body")
        end = self._func.new_block("while.end")
        self._switch_to(head)
        self._lower_cond_branch(stmt.cond, body.name, end.name)
        self._block = body
        self._break_stack.append(end.name)
        self._continue_stack.append(head.name)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._switch_to_target(head.name)
        self._block = end

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._func.new_block("for.head")
        body = self._func.new_block("for.body")
        step = self._func.new_block("for.step")
        end = self._func.new_block("for.end")
        self._switch_to(head)
        if stmt.cond is not None:
            self._lower_cond_branch(stmt.cond, body.name, end.name)
        else:
            self._terminate(Jump(body.name))
        self._block = body
        self._break_stack.append(end.name)
        self._continue_stack.append(step.name)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._switch_to_target(step.name)
        self._block = step
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._terminate(Jump(head.name))
        self._block = end

    def _lower_switch(self, stmt: ast.Switch) -> None:
        cond = self._as_vreg(self._lower_expr(stmt.cond))
        end = self._func.new_block("sw.end")
        case_blocks = [
            self._func.new_block(f"sw.case{i}")
            for i in range(len(stmt.cases))
        ]
        if stmt.default_stmts is not None:
            default_block = self._func.new_block("sw.default")
        else:
            default_block = end
        table = [
            (case.value, blk.name)
            for case, blk in zip(stmt.cases, case_blocks)
        ]
        self._terminate(SwitchBr(cond, table, default_block.name))
        # `break` exits the switch (C semantics); `continue` still
        # targets the enclosing loop, so only the break stack grows.
        self._break_stack.append(end.name)
        for i, case in enumerate(stmt.cases):
            self._block = case_blocks[i]
            for inner in case.stmts:
                self._lower_stmt(inner)
            fall = (
                case_blocks[i + 1].name
                if i + 1 < len(case_blocks)
                else default_block.name
            )
            self._switch_to_target(fall)
        if stmt.default_stmts is not None:
            self._block = default_block
            for inner in stmt.default_stmts:
                self._lower_stmt(inner)
            self._switch_to_target(end.name)
        self._break_stack.pop()
        self._block = end

    def _switch_to_target(self, name: str) -> None:
        if not self._block.instrs or not self._block.terminator.is_terminator:
            self._terminate(Jump(name))

    # -- lvalues ----------------------------------------------------------

    def _lower_lvalue(self, node: ast.Expr) -> tuple[MemRef, int]:
        """Return (memref, access size in bytes) for an lvalue node."""
        if isinstance(node, ast.Ident):
            kind, info = node.binding
            if kind == "local":
                slot = self._slots[info.uid]
                return (
                    MemRef(region=slot.taint, slot=slot),
                    _value_size(info.type),
                )
            if kind == "global":
                return (
                    MemRef(
                        region=_slot_taint(info.type), global_name=info.name
                    ),
                    _value_size(info.type),
                )
            raise CodegenError("function used as lvalue")
        if isinstance(node, ast.Unary) and node.op == "*":
            addr = self._as_vreg(self._lower_expr(node.operand))
            return (
                MemRef(region=self._taint_of(node), base=addr),
                _value_size(node.type),
            )
        if isinstance(node, ast.Index):
            return self._lower_index_lvalue(node)
        if isinstance(node, ast.Member):
            return self._lower_member_lvalue(node)
        raise CodegenError(f"not an lvalue: {type(node).__name__}")

    def _storage_memref(self, node: ast.Expr) -> MemRef:
        """MemRef of an expression's *storage* (for decayed arrays and
        struct bases): like _lower_lvalue but ignores value size."""
        mem, _size = self._lower_lvalue(node)
        return mem

    def _lower_index_lvalue(self, node: ast.Index) -> tuple[MemRef, int]:
        elem_size = _value_size(node.type)
        full_elem = node.type
        # The element's full storage size (structs differ from value size).
        storage = _elem_storage_size(node)
        region = self._taint_of(node)
        index = self._lower_expr(node.index)
        base = node.base
        if getattr(base, "decayed_array", False) and isinstance(
            base, (ast.Ident, ast.Member)
        ):
            mem = self._storage_memref(base)
            return self._apply_index(mem, index, storage, region), elem_size
        ptr = self._as_vreg(self._lower_expr(base))
        mem = MemRef(region=region, base=ptr)
        return self._apply_index(mem, index, storage, region), elem_size

    def _apply_index(
        self, mem: MemRef, index, elem_size: int, region: Taint
    ) -> MemRef:
        mem = MemRef(
            region=region,
            base=mem.base,
            slot=mem.slot,
            global_name=mem.global_name,
            index=mem.index,
            scale=mem.scale,
            disp=mem.disp,
        )
        if isinstance(index, int):
            mem.disp += index * elem_size
            return mem
        if mem.index is not None:
            # Two index registers: fold the old one into the base.
            folded = self._temp(PUBLIC, "addr")
            self._emit(Lea(folded, mem))
            mem = MemRef(region=region, base=folded)
        if elem_size in (1, 2, 4, 8):
            mem.index = index
            mem.scale = elem_size
        else:
            scaled = self._temp(index.taint, "scaled")
            self._emit(Bin("mul", scaled, index, elem_size))
            mem.index = scaled
            mem.scale = 1
        return mem

    def _lower_member_lvalue(self, node: ast.Member) -> tuple[MemRef, int]:
        struct, fld = self._member_field(node)
        size = _value_size(node.type)
        region = self._taint_of(node)
        if node.arrow:
            ptr = self._as_vreg(self._lower_expr(node.base))
            return MemRef(region=region, base=ptr, disp=fld.offset), size
        mem = self._storage_memref(node.base)
        mem = MemRef(
            region=region,
            base=mem.base,
            slot=mem.slot,
            global_name=mem.global_name,
            index=mem.index,
            scale=mem.scale,
            disp=mem.disp + fld.offset,
        )
        return mem, size

    def _member_field(self, node: ast.Member):
        base_type = node.base.type
        if node.arrow:
            assert isinstance(base_type, PointerType)
            struct = base_type.pointee
        else:
            struct = base_type
        assert isinstance(struct, StructType)
        fld = struct.field(node.name)
        assert fld is not None
        return struct, fld

    # -- expressions ---------------------------------------------------------

    def _lower_expr(self, node: ast.Expr):
        """Lower an expression to an operand (VReg or int immediate)."""
        if getattr(node, "decayed_array", False):
            mem = self._storage_memref_decayed(node)
            dst = self._temp(PUBLIC, "decay")
            self._emit(Lea(dst, mem))
            return dst
        return self._lower_expr_value(node)

    def _storage_memref_decayed(self, node: ast.Expr) -> MemRef:
        """MemRef of the storage behind a decayed-array expression."""
        if isinstance(node, ast.Ident):
            kind, info = node.binding
            if kind == "local":
                slot = self._slots[info.uid]
                return MemRef(region=slot.taint, slot=slot)
            if kind == "global":
                return MemRef(
                    region=_slot_taint(info.type), global_name=info.name
                )
            raise CodegenError("bad decayed ident")
        if isinstance(node, ast.Member):
            mem, _ = self._lower_member_lvalue_storage(node)
            return mem
        if isinstance(node, ast.Index):
            mem, _ = self._lower_index_lvalue(node)
            return mem
        if isinstance(node, ast.Unary) and node.op == "*":
            mem, _ = self._lower_lvalue(node)
            return mem
        raise CodegenError(
            f"unsupported decayed array expr {type(node).__name__}"
        )

    def _lower_member_lvalue_storage(self, node: ast.Member):
        # Same as member lvalue but size is the aggregate size.
        return self._lower_member_lvalue(node)

    def _lower_expr_value(self, node: ast.Expr):
        if isinstance(node, ast.IntLit):
            return node.value
        if isinstance(node, ast.SizeofType):
            return _sizeof_from_sema(node)
        if isinstance(node, ast.StringLit):
            name = self._strings[node.value + b"\x00"]
            dst = self._temp(PUBLIC, "str")
            self._emit(Lea(dst, MemRef(region=PUBLIC, global_name=name)))
            return dst
        if isinstance(node, ast.Ident):
            return self._lower_ident_value(node)
        if isinstance(node, ast.Unary):
            return self._lower_unary(node)
        if isinstance(node, ast.Binary):
            return self._lower_binary(node)
        if isinstance(node, ast.Assign):
            return self._lower_assign(node)
        if isinstance(node, ast.IncDec):
            return self._lower_incdec(node)
        if isinstance(node, ast.Call):
            return self._lower_call(node)
        if isinstance(node, (ast.Index, ast.Member)):
            mem, size = self._lower_lvalue(node)
            dst = self._temp(self._taint_of(node), "ld")
            self._emit(Load(dst, mem, size))
            return dst
        if isinstance(node, ast.Cast):
            return self._lower_cast(node)
        if isinstance(node, ast.TlsBase):
            dst = self._temp(PUBLIC, "tls")
            self._emit(TlsBaseAddr(dst))
            return dst
        if isinstance(node, ast.VarArg):
            index = self._lower_expr(node.index)
            addr = self._temp(PUBLIC, "va")
            self._emit(VarArgAddr(addr, index))
            dst = self._temp(PUBLIC, "vaval")
            self._emit(Load(dst, MemRef(region=PUBLIC, base=addr), 8))
            return dst
        raise CodegenError(f"unknown expr {type(node).__name__}")

    def _lower_ident_value(self, node: ast.Ident):
        kind, info = node.binding
        if kind == "func":
            dst = self._temp(PUBLIC, "fn")
            self._emit(FuncAddr(dst, info.name))
            return dst
        mem, size = self._lower_lvalue(node)
        dst = self._temp(self._taint_of(node), node.name)
        self._emit(Load(dst, mem, size))
        return dst

    def _lower_unary(self, node: ast.Unary):
        if node.op == "&":
            if isinstance(node.operand, ast.Ident) and node.operand.binding[0] == "func":
                dst = self._temp(PUBLIC, "fn")
                self._emit(FuncAddr(dst, node.operand.binding[1].name))
                return dst
            if getattr(node.operand, "decayed_array", False):
                mem = self._storage_memref_decayed(node.operand)
            else:
                mem, _ = self._lower_lvalue(node.operand)
            dst = self._temp(self._taint_of(node), "addr")
            self._emit(Lea(dst, mem))
            return dst
        if node.op == "*":
            mem, size = self._lower_lvalue(node)
            dst = self._temp(self._taint_of(node), "deref")
            self._emit(Load(dst, mem, size))
            return dst
        value = self._lower_expr(node.operand)
        if node.op == "-":
            if isinstance(value, int):
                return -value
            dst = self._temp(self._taint_of(node), "neg")
            self._emit(Un("neg", dst, value))
            return dst
        if node.op == "~":
            if isinstance(value, int):
                return ~value
            dst = self._temp(self._taint_of(node), "not")
            self._emit(Un("not", dst, value))
            return dst
        if node.op == "!":
            if isinstance(value, int):
                return 0 if value else 1
            dst = self._temp(self._taint_of(node), "lnot")
            self._emit(Bin("eq", dst, value, 0))
            return dst
        raise CodegenError(f"unknown unary {node.op}")

    def _lower_binary(self, node: ast.Binary):
        if node.op in ("&&", "||"):
            return self._lower_logical(node)
        left = self._lower_expr(node.left)
        right = self._lower_expr(node.right)
        op = _BINOP_MAP[node.op]
        # Pointer arithmetic scaling.
        lt, rt = node.left.type, node.right.type
        if node.op in ("+", "-") and isinstance(lt, PointerType):
            if isinstance(rt, IntType):
                right = self._scale(right, lt.pointee.size)
            elif node.op == "-" and isinstance(rt, PointerType):
                diff = self._temp(self._taint_of(node), "pdiff")
                self._emit(Bin("sub", diff, left, right))
                if lt.pointee.size > 1:
                    out = self._temp(self._taint_of(node), "pdiv")
                    self._emit(Bin("div", out, diff, lt.pointee.size))
                    return out
                return diff
        elif node.op == "+" and isinstance(rt, PointerType):
            left = self._scale(left, rt.pointee.size)
        if isinstance(left, int) and isinstance(right, int):
            folded = _const_fold(op, left, right)
            if folded is not None:
                return folded
        dst = self._temp(self._taint_of(node), "bin")
        self._emit(Bin(op, dst, left, right))
        return dst

    def _scale(self, operand, size: int):
        if size == 1:
            return operand
        if isinstance(operand, int):
            return operand * size
        dst = self._temp(operand.taint, "scale")
        self._emit(Bin("mul", dst, operand, size))
        return dst

    def _lower_logical(self, node: ast.Binary):
        is_and = node.op == "&&"
        result = self._temp(PUBLIC, "logic")
        rhs_bb = self._func.new_block("logic.rhs")
        short_bb = self._func.new_block("logic.short")
        end_bb = self._func.new_block("logic.end")
        left = self._lower_expr(node.left)
        left = self._as_vreg(left)
        if is_and:
            self._terminate(Branch(left, rhs_bb.name, short_bb.name))
        else:
            self._terminate(Branch(left, short_bb.name, rhs_bb.name))
        self._block = rhs_bb
        right = self._as_vreg(self._lower_expr(node.right))
        self._emit(Bin("ne", result, right, 0))
        self._terminate(Jump(end_bb.name))
        self._block = short_bb
        self._emit(Const(result, 0 if is_and else 1))
        self._terminate(Jump(end_bb.name))
        self._block = end_bb
        return result

    def _lower_assign(self, node: ast.Assign):
        if node.op is None:
            value = self._lower_expr(node.value)
            mem, size = self._lower_lvalue(node.target)
            self._emit(Store(mem, value, size))
            return value
        mem, size = self._lower_lvalue(node.target)
        old = self._temp(self._taint_of(node.target), "cload")
        self._emit(Load(old, mem, size))
        value = self._lower_expr(node.value)
        ttype = node.target.type
        if (
            node.op in ("+", "-")
            and isinstance(ttype, PointerType)
        ):
            value = self._scale(value, ttype.pointee.size)
        dst = self._temp(self._taint_of(node.target), "cbin")
        self._emit(Bin(_BINOP_MAP[node.op], dst, old, value))
        self._emit(Store(mem, dst, size))
        return dst

    def _lower_incdec(self, node: ast.IncDec):
        mem, size = self._lower_lvalue(node.target)
        old = self._temp(self._taint_of(node.target), "inc")
        self._emit(Load(old, mem, size))
        delta = node.delta
        ttype = node.target.type
        if isinstance(ttype, PointerType):
            delta *= ttype.pointee.size
        dst = self._temp(self._taint_of(node.target), "incv")
        self._emit(Bin("add", dst, old, delta))
        self._emit(Store(mem, dst, size))
        return dst

    def _lower_call(self, node: ast.Call):
        callee_type = node.callee.type
        assert isinstance(callee_type, PointerType)
        ftype = callee_type.pointee
        assert isinstance(ftype, FuncType)
        n_fixed = len(ftype.params)
        args = [self._lower_expr(arg) for arg in node.args]
        arg_taints = [_outer_taint(p) for p in ftype.params]
        ret_taint = (
            PUBLIC
            if isinstance(ftype.ret, VoidType)
            else _outer_taint(ftype.ret)
        )
        dst = None
        if not isinstance(ftype.ret, VoidType):
            dst = self._temp(ret_taint, "ret")
        if isinstance(node.callee, ast.Ident) and node.callee.binding[0] == "func":
            self._emit(
                Call(dst, node.callee.binding[1].name, args, arg_taints,
                     ret_taint, n_fixed)
            )
        else:
            target = self._as_vreg(self._lower_expr(node.callee))
            self._emit(
                CallIndirect(dst, target, args, arg_taints, ret_taint, n_fixed)
            )
        return dst if dst is not None else 0

    def _lower_cast(self, node: ast.Cast):
        value = self._lower_expr(node.operand)
        to = node.type
        src_type = node.operand.type
        if (
            isinstance(to, IntType)
            and to.width == 1
            and not (isinstance(src_type, IntType) and src_type.width == 1)
        ):
            if isinstance(value, int):
                return value & 0xFF
            dst = self._temp(self._taint_of(node), "trunc")
            self._emit(Bin("and", dst, value, 0xFF))
            return dst
        return value


def _const_fold(op: str, a: int, b: int) -> int | None:
    from ..arith import eval_bin
    from ..errors import MachineFault

    try:
        return eval_bin(op, a, b)
    except MachineFault:
        return None


def _outer_taint(type_: Type) -> Taint:
    taint = type_.taint
    assert isinstance(taint, Taint)
    return taint


def _slot_taint(type_: Type) -> Taint:
    taint = type_.taint
    assert isinstance(taint, Taint), f"unsolved slot taint for {type_!r}"
    return taint


def _sizeof_from_sema(node: ast.SizeofType) -> int:
    # Sema validated the type; recompute its size cheaply via the node's
    # own resolved .type? SizeofType's .type is int; we re-resolve from
    # the recorded width at parse level is not available, so sema stores
    # the computed size on the node.
    return getattr(node, "computed_size")


def _elem_storage_size(node: ast.Index) -> int:
    base_type = node.base.type
    if isinstance(base_type, PointerType):
        return max(base_type.pointee.size, 1)
    if isinstance(base_type, ArrayType):  # pragma: no cover
        return max(base_type.elem.size, 1)
    raise CodegenError("index base is not a pointer")


def lower_program(
    checked: CheckedProgram,
    module_name: str = "U",
    allow_undefined: bool = False,
) -> IRModule:
    """Lower a checked program to an IR module.

    ``allow_undefined`` enables separate compilation: untrusted
    functions that are declared but not defined become *cross-object
    externals* (``module.u_externs``) for the multi-object linker to
    resolve against another unit, instead of a hard error.
    """
    module = IRModule(module_name)
    string_names: dict[bytes, str] = {}
    for data in dict.fromkeys(checked.strings):
        # Content-addressed names: identical literals in separately
        # compiled units deduplicate at link time instead of colliding.
        name = f".str.{hashlib.blake2b(data, digest_size=8).hexdigest()}"
        string_names[data] = name
        module.globals[name] = IRGlobal(
            name=name,
            size=len(data),
            align=1,
            taint=PUBLIC,
            init_bytes=data,
            read_only=True,
        )
    for ginfo in checked.globals.values():
        init: bytes | None = None
        if ginfo.init_string is not None:
            if not isinstance(ginfo.type, ArrayType):
                raise CodegenError(
                    f"global {ginfo.name!r}: string initializers are only "
                    "supported for char arrays"
                )
            data = ginfo.init_string
            if len(data) > ginfo.type.size:
                raise CodegenError(f"global {ginfo.name!r}: string too long")
            init = data + b"\x00" * (ginfo.type.size - len(data))
        elif ginfo.init_int is not None:
            width = _value_size(ginfo.type)
            init = (ginfo.init_int % (1 << (8 * width))).to_bytes(
                width, "little"
            )
        module.globals[ginfo.name] = IRGlobal(
            name=ginfo.name,
            size=max(ginfo.type.size, 1),
            align=ginfo.type.align,
            taint=_slot_taint(ginfo.type),
            init_bytes=init,
        )
    for info in checked.functions.values():
        if info.trusted:
            module.externs[info.name] = ExternSig(
                name=info.name,
                sig=info.type,
                arg_taints=[_outer_taint(p) for p in info.type.params],
                ret_taint=(
                    PUBLIC
                    if isinstance(info.type.ret, VoidType)
                    else _outer_taint(info.type.ret)
                ),
            )
        elif info.body is None:
            if not allow_undefined:
                raise CodegenError(
                    f"function {info.name!r} declared but never defined "
                    "(only 'extern trusted' imports may lack bodies; "
                    "compile with allow_undefined for separate units)"
                )
            module.u_externs[info.name] = ExternSig(
                name=info.name,
                sig=info.type,
                arg_taints=[_outer_taint(p) for p in info.type.params],
                ret_taint=(
                    PUBLIC
                    if isinstance(info.type.ret, VoidType)
                    else _outer_taint(info.type.ret)
                ),
            )
    for info in checked.functions.values():
        if info.body is None:
            continue
        lowerer = FunctionLowerer(module, checked, info, string_names)
        func = lowerer.lower()
        # Provenance metadata for the certified opt pipeline: a digest
        # of the as-lowered body that witnesses quote and the witness
        # checker verifies (repro.opt.witness).
        digest = hashlib.blake2b(
            repr(func).encode(), digest_size=8
        ).hexdigest()
        func.origin = f"{module_name}:{func.name}:{digest}"
        module.add_function(func)
    return module
