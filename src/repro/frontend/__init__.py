"""AST-to-IR lowering."""

from .lower import lower_program

__all__ = ["lower_program"]
