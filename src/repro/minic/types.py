"""MiniC's type system with taint qualifiers.

Every type node carries a *taint term* describing the secrecy of values
of that type (and hence the memory region in which objects of that type
live).  During semantic analysis the terms may be
:class:`~repro.taint.lattice.TaintVar` inference variables; after the
solver runs, :func:`concretize` replaces every variable by its solution,
so the IR and backend only ever see concrete :class:`Taint` levels.

Conventions mirroring the paper (Section 5.1):

* ``private int x`` — the int value is private.
* ``private int *p`` — a *public* pointer to a private int (the
  qualifier binds to the base type, as in the paper's examples).
* Struct and union fields inherit their *outermost* annotation from the
  struct-typed variable, so each object is laid out contiguously in a
  single region.
* Arrays take the taint of their elements: an object is uniform.
"""

from __future__ import annotations

from ..taint.lattice import PUBLIC, Taint, TaintTerm, TaintVar
from ..taint.solve import Solution

WORD_SIZE = 8
CHAR_SIZE = 1


class Type:
    """Base class for MiniC types.  Subclasses define size/alignment."""

    taint: TaintTerm

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def align(self) -> int:
        raise NotImplementedError

    def with_taint(self, taint: TaintTerm) -> "Type":
        """A copy of this type with a different outermost taint."""
        raise NotImplementedError

    def same_shape(self, other: "Type") -> bool:
        """Structural equality ignoring taint terms."""
        raise NotImplementedError

    @property
    def is_scalar(self) -> bool:
        """True for types that fit in a register (int, char, pointer)."""
        return isinstance(self, (IntType, PointerType))


class VoidType(Type):
    def __init__(self) -> None:
        self.taint = PUBLIC

    @property
    def size(self) -> int:
        return 0

    @property
    def align(self) -> int:
        return 1

    def with_taint(self, taint: TaintTerm) -> "VoidType":
        return self

    def same_shape(self, other: Type) -> bool:
        return isinstance(other, VoidType)

    def __repr__(self) -> str:
        return "void"


class IntType(Type):
    """Integer type; width 8 is ``int``, width 1 is ``char``."""

    def __init__(self, width: int, taint: TaintTerm = PUBLIC):
        assert width in (CHAR_SIZE, WORD_SIZE)
        self.width = width
        self.taint = taint

    @property
    def size(self) -> int:
        return self.width

    @property
    def align(self) -> int:
        return self.width

    def with_taint(self, taint: TaintTerm) -> "IntType":
        return IntType(self.width, taint)

    def same_shape(self, other: Type) -> bool:
        return isinstance(other, IntType) and other.width == self.width

    def __repr__(self) -> str:
        name = "int" if self.width == WORD_SIZE else "char"
        return f"{self.taint!r}:{name}" if self.taint != PUBLIC else name


class PointerType(Type):
    """A pointer.  ``taint`` is the secrecy of the pointer *value*;
    ``pointee.taint`` determines the region the pointer must point into.
    """

    def __init__(self, pointee: Type, taint: TaintTerm = PUBLIC):
        self.pointee = pointee
        self.taint = taint

    @property
    def size(self) -> int:
        return WORD_SIZE

    @property
    def align(self) -> int:
        return WORD_SIZE

    def with_taint(self, taint: TaintTerm) -> "PointerType":
        return PointerType(self.pointee, taint)

    def same_shape(self, other: Type) -> bool:
        return isinstance(other, PointerType) and self.pointee.same_shape(
            other.pointee
        )

    @property
    def is_void_ptr(self) -> bool:
        return isinstance(self.pointee, VoidType)

    def __repr__(self) -> str:
        return f"ptr({self.pointee!r})"


class ArrayType(Type):
    """Fixed-length array.  The element taint is the object taint."""

    def __init__(self, elem: Type, count: int):
        self.elem = elem
        self.count = count

    @property
    def taint(self) -> TaintTerm:  # type: ignore[override]
        return self.elem.taint

    @property
    def size(self) -> int:
        return self.elem.size * self.count

    @property
    def align(self) -> int:
        return self.elem.align

    def with_taint(self, taint: TaintTerm) -> "ArrayType":
        return ArrayType(self.elem.with_taint(taint), self.count)

    def same_shape(self, other: Type) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.count == self.count
            and self.elem.same_shape(other.elem)
        )

    def __repr__(self) -> str:
        return f"{self.elem!r}[{self.count}]"


class StructField:
    __slots__ = ("name", "type", "offset")

    def __init__(self, name: str, type_: Type, offset: int):
        self.name = name
        self.type = type_
        self.offset = offset


class StructType(Type):
    """A struct.  Field storage lives in the region of the struct's own
    (outermost) taint; field *types* keep their declared inner taints
    (e.g. the pointee level of a pointer field), but their outermost
    level is substituted by the variable's taint on member access.
    """

    def __init__(self, name: str, taint: TaintTerm = PUBLIC):
        self.name = name
        self.taint = taint
        self.fields: list[StructField] = []
        self._size = 0
        self._align = 1
        self.complete = False

    def set_fields(self, fields: list[tuple[str, Type]]) -> None:
        offset = 0
        align = 1
        for fname, ftype in fields:
            fa = ftype.align
            offset = (offset + fa - 1) // fa * fa
            self.fields.append(StructField(fname, ftype, offset))
            offset += ftype.size
            align = max(align, fa)
        self._size = (offset + align - 1) // align * align
        self._align = align
        self.complete = True

    def field(self, name: str) -> StructField | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    @property
    def size(self) -> int:
        return self._size

    @property
    def align(self) -> int:
        return self._align

    def with_taint(self, taint: TaintTerm) -> "StructType":
        clone = StructType(self.name, taint)
        clone.fields = self.fields
        clone._size = self._size
        clone._align = self._align
        clone.complete = self.complete
        return clone

    def same_shape(self, other: Type) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __repr__(self) -> str:
        return f"struct {self.name}"


class FuncType(Type):
    """The type of a function (not a first-class value; appears only
    under a PointerType for function pointers)."""

    def __init__(self, ret: Type, params: list[Type], varargs: bool = False):
        self.ret = ret
        self.params = params
        self.varargs = varargs
        self.taint = PUBLIC

    @property
    def size(self) -> int:
        return WORD_SIZE

    @property
    def align(self) -> int:
        return WORD_SIZE

    def with_taint(self, taint: TaintTerm) -> "FuncType":
        return self

    def same_shape(self, other: Type) -> bool:
        if not isinstance(other, FuncType):
            return False
        if len(other.params) != len(self.params) or other.varargs != self.varargs:
            return False
        if not self.ret.same_shape(other.ret):
            return False
        return all(a.same_shape(b) for a, b in zip(self.params, other.params))

    def __repr__(self) -> str:
        args = ", ".join(repr(p) for p in self.params)
        return f"fn({args}) -> {self.ret!r}"


INT = IntType(WORD_SIZE)
CHAR = IntType(CHAR_SIZE)
VOID = VoidType()


def concretize(type_: Type, solution: Solution) -> Type:
    """Substitute the solver's assignment into every taint position."""
    if isinstance(type_, IntType):
        return IntType(type_.width, solution.resolve(type_.taint))
    if isinstance(type_, PointerType):
        return PointerType(
            concretize(type_.pointee, solution), solution.resolve(type_.taint)
        )
    if isinstance(type_, ArrayType):
        return ArrayType(concretize(type_.elem, solution), type_.count)
    if isinstance(type_, StructType):
        return type_.with_taint(solution.resolve(type_.taint))
    if isinstance(type_, FuncType):
        return FuncType(
            concretize(type_.ret, solution),
            [concretize(p, solution) for p in type_.params],
            type_.varargs,
        )
    return type_


def taint_positions(type_: Type) -> list[TaintTerm]:
    """All taint terms appearing in a type, outermost first."""
    if isinstance(type_, PointerType):
        return [type_.taint, *taint_positions(type_.pointee)]
    if isinstance(type_, ArrayType):
        return taint_positions(type_.elem)
    if isinstance(type_, FuncType):
        terms = taint_positions(type_.ret)
        for p in type_.params:
            terms.extend(taint_positions(p))
        return terms
    return [type_.taint]


def pointee_region(type_: Type) -> TaintTerm:
    """The memory-region taint a pointer of this type must respect."""
    assert isinstance(type_, PointerType)
    return type_.pointee.taint
