"""Hand-written lexer for MiniC."""

from __future__ import annotations

from ..errors import LexError, SourceLocation
from .tokens import (
    KEYWORDS,
    PUNCTUATORS,
    TK_CHAR,
    TK_EOF,
    TK_IDENT,
    TK_INT,
    TK_KEYWORD,
    TK_PUNCT,
    TK_STRING,
    Token,
)

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
}


class Lexer:
    """Converts MiniC source text into a list of tokens."""

    def __init__(self, source: str, filename: str = "<input>"):
        self._src = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._src):
            return ""
        return self._src[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._src):
                return
            if self._src[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if not ch:
                return
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#":
                # Preprocessor-style lines (#define is handled by the
                # driver's textual substitution; here we just skip them).
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self._pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self._src[start : self._pos]
            return Token(TK_INT, text, loc, value=int(text, 16))
        while self._peek().isdigit():
            self._advance()
        text = self._src[start : self._pos]
        return Token(TK_INT, text, loc, value=int(text))

    def _lex_escape(self, loc: SourceLocation) -> int:
        self._advance()  # backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF" and len(digits) < 2:
                digits += self._peek()
                self._advance()
            if not digits:
                raise LexError("empty hex escape", loc)
            return int(digits, 16)
        if ch not in _ESCAPES:
            raise LexError(f"unknown escape \\{ch}", loc)
        self._advance()
        return _ESCAPES[ch]

    def _lex_char(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = self._lex_escape(loc)
        else:
            if not self._peek():
                raise LexError("unterminated char literal", loc)
            value = ord(self._peek())
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated char literal", loc)
        self._advance()
        return Token(TK_CHAR, "", loc, value=value)

    def _lex_string(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        data = bytearray()
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", loc)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                data.append(self._lex_escape(loc))
            else:
                data.append(ord(ch))
                self._advance()
        return Token(TK_STRING, "", loc, value=bytes(data))

    def _lex_word(self) -> Token:
        loc = self._loc()
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._src[start : self._pos]
        kind = TK_KEYWORD if text in KEYWORDS else TK_IDENT
        return Token(kind, text, loc)

    def tokens(self) -> list[Token]:
        """Lex the whole input, returning tokens terminated by EOF."""
        result: list[Token] = []
        while True:
            self._skip_trivia()
            ch = self._peek()
            if not ch:
                result.append(Token(TK_EOF, "", self._loc()))
                return result
            if ch.isdigit():
                result.append(self._lex_number())
            elif ch == "'":
                result.append(self._lex_char())
            elif ch == '"':
                result.append(self._lex_string())
            elif ch.isalpha() or ch == "_":
                result.append(self._lex_word())
            else:
                loc = self._loc()
                for punct in PUNCTUATORS:
                    if self._src.startswith(punct, self._pos):
                        self._advance(len(punct))
                        result.append(Token(TK_PUNCT, punct, loc))
                        break
                else:
                    raise LexError(f"unexpected character {ch!r}", loc)


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokens()
