"""MiniC: the C subset with ``private`` qualifiers that U code is written in."""

from .lexer import tokenize
from .parser import parse
from .sema import CheckedProgram, FunctionInfo, GlobalInfo, LocalSymbol, analyze
from .types import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    FuncType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
)

__all__ = [
    "tokenize",
    "parse",
    "analyze",
    "CheckedProgram",
    "FunctionInfo",
    "GlobalInfo",
    "LocalSymbol",
    "Type",
    "IntType",
    "PointerType",
    "ArrayType",
    "StructType",
    "FuncType",
    "VoidType",
    "INT",
    "CHAR",
    "VOID",
]
