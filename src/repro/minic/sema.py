"""Semantic analysis for MiniC: names, types, and taint constraints.

This stage performs what ConfLLVM's front-end and qualifier-inference
pass do together (Section 5.1):

* resolve names and check MiniC's typing rules;
* build the subtyping constraint set over taint qualifiers — top-level
  positions (globals, function signatures, struct fields, casts) get
  *concrete* taints from their ``private`` annotations, while locals
  and temporaries get fresh inference variables;
* solve the constraints (``repro.taint.solve``) and substitute the
  solution back into every type, so later stages see concrete taints;
* in strict mode (the paper's default for all experiments), reject
  branches on private data (implicit flows) at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ImplicitFlowError, SemaError, SourceLocation
from ..taint.lattice import PRIVATE, PUBLIC, Taint, TaintTerm, TaintVar, is_concrete, join
from ..taint.solve import ConstraintSet, Solution, solve
from . import ast_nodes as ast
from .types import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    FuncType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    concretize,
    taint_positions,
)

_COMPARISONS = {"==", "!=", "<", ">", "<=", ">="}
_LOGICAL = {"&&", "||"}


@dataclass
class LocalSymbol:
    """A local variable (or parameter) within a function."""

    name: str
    type: Type
    loc: SourceLocation
    is_param: bool = False
    param_index: int = -1
    address_taken: bool = False
    uid: int = -1


@dataclass
class FunctionInfo:
    name: str
    type: FuncType
    param_names: list[str]
    trusted: bool
    extern: bool
    loc: SourceLocation
    body: ast.Block | None = None
    locals: list[LocalSymbol] = field(default_factory=list)
    varargs: bool = False


@dataclass
class GlobalInfo:
    name: str
    type: Type
    loc: SourceLocation
    init_int: int | None = None
    init_string: bytes | None = None


@dataclass
class CheckedProgram:
    """Output of semantic analysis, consumed by IR lowering."""

    structs: dict[str, StructType]
    functions: dict[str, FunctionInfo]
    globals: dict[str, GlobalInfo]
    strings: list[bytes]
    implicit_flow_warnings: list[SourceLocation]
    ast: ast.Program


class Sema:
    def __init__(
        self,
        program: ast.Program,
        strict: bool = True,
        all_private: bool = False,
    ):
        self._program = program
        # In the all-private scenario branching on private data cannot
        # leak (there is nothing public to leak into), so strict mode
        # is moot (§5.1, "Implicit flows").
        self._strict = strict and not all_private
        self._all_private = all_private
        self._structs: dict[str, StructType] = {}
        self._functions: dict[str, FunctionInfo] = {}
        self._globals: dict[str, GlobalInfo] = {}
        self._strings: list[bytes] = []
        self._constraints = ConstraintSet()
        self._branch_terms: list[tuple[TaintTerm, SourceLocation]] = []
        self._typed_nodes: list[ast.Expr] = []
        self._local_uid = 0
        # Per-function state:
        self._scopes: list[dict[str, LocalSymbol]] = []
        self._current: FunctionInfo | None = None

    # ------------------------------------------------------------------
    # Type resolution

    def _resolve_type(
        self, texpr: ast.TypeExpr, concrete: bool, allow_void: bool = False
    ) -> Type:
        """Convert a TypeExpr to a Type.

        ``concrete`` selects the annotation policy: top-level positions
        default to PUBLIC; inferred positions (locals) get fresh
        TaintVars.  ``private`` always pins the base level to PRIVATE.
        """

        def level(label: str) -> TaintTerm:
            if concrete:
                # All-private mode: unannotated top-level data defaults
                # to private (pointer levels stay public so function
                # pointers remain callable).
                if self._all_private and label not in ("ptr", "fnptr"):
                    return PRIVATE
                return PUBLIC
            return TaintVar(label)

        if texpr.base == "void":
            base: Type = VOID
        elif texpr.base == "int":
            base = IntType(8, PRIVATE if texpr.private else level("int"))
        elif texpr.base == "char":
            base = IntType(1, PRIVATE if texpr.private else level("char"))
        else:
            struct = self._structs.get(texpr.struct_name or "")
            if struct is None:
                raise SemaError(
                    f"unknown struct {texpr.struct_name!r}", texpr.loc
                )
            if not struct.complete and texpr.ptr == 0:
                # Pointers to incomplete (self-referential) structs are
                # fine; by-value use of one is not.
                raise SemaError(
                    f"struct {texpr.struct_name!r} is incomplete here",
                    texpr.loc,
                )
            base = struct.with_taint(
                PRIVATE if texpr.private else level("struct")
            )
        if texpr.base == "void" and texpr.private:
            raise SemaError("void cannot be private", texpr.loc)

        result = base
        for _ in range(texpr.ptr):
            result = PointerType(result, level("ptr"))

        if texpr.func is not None:
            params = [
                self._resolve_type(p, concrete=True) for p in texpr.func.params
            ]
            ftype = FuncType(result, params, texpr.func.varargs)
            result = PointerType(ftype, level("fnptr"))
        elif texpr.array_len is not None:
            if isinstance(result, VoidType):
                raise SemaError("array of void", texpr.loc)
            result = ArrayType(result, texpr.array_len)

        if isinstance(result, VoidType) and not allow_void:
            raise SemaError("variable of type void", texpr.loc)
        return result

    # ------------------------------------------------------------------
    # Top-level collection

    def run(self) -> CheckedProgram:
        self._collect_structs()
        self._collect_signatures_and_globals()
        for decl in self._program.decls:
            if isinstance(decl, ast.FuncDef) and decl.body is not None:
                self._check_function(decl)
        solution = solve(self._constraints)
        warnings = self._handle_implicit_flows(solution)
        self._substitute(solution)
        return CheckedProgram(
            structs=self._structs,
            functions=self._functions,
            globals=self._globals,
            strings=self._strings,
            implicit_flow_warnings=warnings,
            ast=self._program,
        )

    def _collect_structs(self) -> None:
        # Two passes so structs can contain pointers to later structs.
        for decl in self._program.decls:
            if isinstance(decl, ast.StructDef):
                if decl.name in self._structs:
                    raise SemaError(f"duplicate struct {decl.name!r}", decl.loc)
                self._structs[decl.name] = StructType(decl.name)
        for decl in self._program.decls:
            if isinstance(decl, ast.StructDef):
                struct = self._structs[decl.name]
                fields: list[tuple[str, Type]] = []
                for texpr, fname in decl.fields:
                    ftype = self._resolve_type(texpr, concrete=True)
                    if isinstance(ftype, StructType) and not ftype.complete:
                        raise SemaError(
                            f"recursive struct field {fname!r}", texpr.loc
                        )
                    fields.append((fname, ftype))
                struct.set_fields(fields)

    def _collect_signatures_and_globals(self) -> None:
        for decl in self._program.decls:
            if isinstance(decl, ast.FuncDef):
                self._declare_function(decl)
            elif isinstance(decl, ast.GlobalVar):
                self._declare_global(decl)

    def _declare_function(self, decl: ast.FuncDef) -> None:
        # Trusted (T) signatures are part of the trusted interface and
        # keep their literal annotations even in all-private mode.
        saved_all_private = self._all_private
        if decl.trusted:
            self._all_private = False
        try:
            ret = self._resolve_type(
                decl.ret_type, concrete=True, allow_void=True
            )
            params = [
                self._resolve_type(p.decl_type, concrete=True)
                for p in decl.params
            ]
        finally:
            self._all_private = saved_all_private
        for p, ptype in zip(decl.params, params):
            if isinstance(ptype, ArrayType):
                raise SemaError("array parameters must be pointers", p.loc)
        if len(params) > 4:
            # The paper's x64 (Windows) calling convention: 4 argument
            # registers, whose taints the CFI magic sequence encodes.
            raise SemaError(
                "at most 4 fixed parameters are supported (the calling "
                "convention has 4 argument registers)",
                decl.loc,
            )
        ftype = FuncType(ret, params, decl.varargs)
        existing = self._functions.get(decl.name)
        if existing is not None:
            if not existing.type.same_shape(ftype):
                raise SemaError(
                    f"conflicting declarations of {decl.name!r}", decl.loc
                )
            if decl.body is not None:
                if existing.body is not None:
                    raise SemaError(f"redefinition of {decl.name!r}", decl.loc)
                existing.body = decl.body
                existing.extern = False
                existing.param_names = [p.name for p in decl.params]
            return
        self._functions[decl.name] = FunctionInfo(
            name=decl.name,
            type=ftype,
            param_names=[p.name for p in decl.params],
            trusted=decl.trusted,
            extern=decl.body is None,
            loc=decl.loc,
            body=decl.body,
            varargs=decl.varargs,
        )

    def _declare_global(self, decl: ast.GlobalVar) -> None:
        if decl.name in self._globals:
            raise SemaError(f"duplicate global {decl.name!r}", decl.loc)
        gtype = self._resolve_type(decl.decl_type, concrete=True)
        info = GlobalInfo(decl.name, gtype, decl.loc)
        if decl.init is not None:
            info.init_int, info.init_string = self._const_init(decl.init, gtype)
        self._globals[decl.name] = info

    def _const_init(
        self, init: ast.Expr, gtype: Type
    ) -> tuple[int | None, bytes | None]:
        if isinstance(init, ast.InitList):
            if not isinstance(gtype, ArrayType) or not isinstance(
                gtype.elem, IntType
            ):
                raise SemaError(
                    "initializer lists need an int/char array", init.loc
                )
            if len(init.values) > gtype.count:
                raise SemaError("too many initializers", init.loc)
            width = gtype.elem.width
            data = b"".join(
                (v % (1 << (8 * width))).to_bytes(width, "little")
                for v in init.values
            )
            return None, data.ljust(gtype.size, b"\x00")
        if isinstance(init, ast.IntLit):
            return init.value, None
        if isinstance(init, ast.Unary) and init.op == "-":
            operand = init.operand
            if isinstance(operand, ast.IntLit):
                return -operand.value, None
        if isinstance(init, ast.StringLit):
            if isinstance(gtype, (PointerType, ArrayType)):
                return None, init.value + b"\x00"
            raise SemaError("string initializer needs char* or char[]", init.loc)
        raise SemaError("global initializer must be a constant", init.loc)

    # ------------------------------------------------------------------
    # Function bodies

    def _check_function(self, decl: ast.FuncDef) -> None:
        info = self._functions[decl.name]
        self._current = info
        self._scopes = [{}]
        for index, (pname, ptype) in enumerate(
            zip(info.param_names, info.type.params)
        ):
            symbol = LocalSymbol(
                pname, ptype, decl.loc, is_param=True, param_index=index
            )
            self._bind(symbol)
        assert decl.body is not None
        self._check_block(decl.body)
        self._current = None

    def _bind(self, symbol: LocalSymbol) -> None:
        scope = self._scopes[-1]
        if symbol.name in scope:
            raise SemaError(f"duplicate local {symbol.name!r}", symbol.loc)
        symbol.uid = self._local_uid
        self._local_uid += 1
        scope[symbol.name] = symbol
        assert self._current is not None
        self._current.locals.append(symbol)

    def _lookup_local(self, name: str) -> LocalSymbol | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _check_block(self, block: ast.Block) -> None:
        self._scopes.append({})
        for stmt in block.stmts:
            self._check_stmt(stmt)
        self._scopes.pop()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            self._check_local_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._check_branch_cond(stmt.cond)
            self._check_stmt(stmt.then)
            if stmt.els is not None:
                self._check_stmt(stmt.els)
        elif isinstance(stmt, ast.While):
            self._check_branch_cond(stmt.cond)
            self._check_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            self._scopes.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_branch_cond(stmt.cond)
            if stmt.step is not None:
                self._check_expr(stmt.step, discard=True)
            self._check_stmt(stmt.body)
            self._scopes.pop()
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, discard=True)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemaError(f"unknown statement {type(stmt).__name__}", stmt.loc)

    def _check_local_decl(self, stmt: ast.LocalDecl) -> None:
        ltype = self._resolve_type(stmt.decl_type, concrete=False)
        symbol = LocalSymbol(stmt.name, ltype, stmt.loc)
        if stmt.init is not None:
            if isinstance(ltype, ArrayType):
                raise SemaError("array locals cannot have initializers", stmt.loc)
            itype = self._check_expr(stmt.init)
            self._check_shape_assignable(itype, ltype, stmt.loc)
            self._flow(itype, ltype, "initializer", stmt.loc)
        self._bind(symbol)
        stmt.symbol = symbol

    def _check_switch(self, stmt: ast.Switch) -> None:
        ctype = self._check_expr(stmt.cond)
        if not isinstance(ctype, IntType):
            raise SemaError("switch condition must be an integer", stmt.loc)
        # A switch is a (multi-way) branch: strict mode rejects private
        # scrutinees just like if/while conditions.
        self._note_branch(ctype.taint, stmt.loc)
        seen: set[int] = set()
        for case in stmt.cases:
            if case.value in seen:
                raise SemaError(
                    f"duplicate case label {case.value}", case.loc
                )
            seen.add(case.value)
        self._scopes.append({})
        for case in stmt.cases:
            for inner in case.stmts:
                self._check_stmt(inner)
        if stmt.default_stmts is not None:
            for inner in stmt.default_stmts:
                self._check_stmt(inner)
        self._scopes.pop()

    def _check_return(self, stmt: ast.Return) -> None:
        assert self._current is not None
        ret = self._current.type.ret
        if stmt.value is None:
            if not isinstance(ret, VoidType):
                raise SemaError("missing return value", stmt.loc)
            return
        if isinstance(ret, VoidType):
            raise SemaError("void function returns a value", stmt.loc)
        vtype = self._check_expr(stmt.value)
        self._flow(vtype, ret, "return value", stmt.loc)

    def _check_branch_cond(self, cond: ast.Expr) -> None:
        ctype = self._check_expr(cond)
        if not ctype.is_scalar:
            raise SemaError("branch condition must be scalar", cond.loc)
        self._note_branch(ctype.taint, cond.loc)

    def _note_branch(self, term: TaintTerm, loc: SourceLocation) -> None:
        """Record a branch condition's taint for implicit-flow handling."""
        self._branch_terms.append((term, loc))

    def _handle_implicit_flows(self, solution: Solution) -> list[SourceLocation]:
        warnings: list[SourceLocation] = []
        for term, loc in self._branch_terms:
            if solution.resolve(term) is PRIVATE:
                if self._strict:
                    raise ImplicitFlowError(
                        "branch on private data (implicit flow)", loc
                    )
                warnings.append(loc)
        return warnings

    # ------------------------------------------------------------------
    # Flow constraints

    def _flow(self, src: Type, dst: Type, reason: str, loc: SourceLocation) -> None:
        """Constrain a data flow from ``src`` into ``dst``.

        Outermost levels are covariant (src ⊑ dst); all inner positions
        of pointers are invariant, the standard soundness requirement
        for mutable references.
        """
        self._constraints.add_le(src.taint, dst.taint, reason, loc)
        if isinstance(src, PointerType) and isinstance(dst, PointerType):
            if dst.is_void_ptr or src.is_void_ptr:
                return
            self._invariant(src.pointee, dst.pointee, reason, loc)

    def _invariant(self, a: Type, b: Type, reason: str, loc: SourceLocation) -> None:
        for ta, tb in zip(taint_positions(a), taint_positions(b)):
            self._constraints.add_eq(ta, tb, reason + " (pointee)", loc)

    def _check_shape_assignable(
        self, src: Type, dst: Type, loc: SourceLocation
    ) -> None:
        if isinstance(dst, IntType) and isinstance(src, IntType):
            return  # int <-> char conversions are fine
        if isinstance(dst, PointerType) and isinstance(src, PointerType):
            if dst.is_void_ptr or src.is_void_ptr:
                return
            if src.pointee.same_shape(dst.pointee):
                return
            raise SemaError(
                f"incompatible pointer assignment ({src!r} to {dst!r}); "
                "use an explicit cast",
                loc,
            )
        if isinstance(dst, PointerType) and isinstance(src, IntType):
            raise SemaError("assigning int to pointer needs a cast", loc)
        if isinstance(dst, IntType) and isinstance(src, PointerType):
            raise SemaError("assigning pointer to int needs a cast", loc)
        raise SemaError(f"cannot assign {src!r} to {dst!r}", loc)

    # ------------------------------------------------------------------
    # Expressions

    def _set_type(self, node: ast.Expr, type_: Type) -> Type:
        node.type = type_
        self._typed_nodes.append(node)
        return type_

    def _decay(self, node: ast.Expr, type_: Type) -> Type:
        """Array-to-pointer decay for value contexts.

        The node is flagged so IR lowering knows the pointer value is
        the *address of in-place storage*, not a loaded pointer.
        """
        if isinstance(type_, ArrayType):
            node.decayed_array = True
            node.array_type = type_
            return PointerType(type_.elem, PUBLIC)
        return type_

    def _check_expr(self, node: ast.Expr, discard: bool = False) -> Type:
        type_ = self._check_expr_inner(node, discard)
        return type_

    def _check_expr_inner(self, node: ast.Expr, discard: bool) -> Type:
        if isinstance(node, ast.IntLit):
            return self._set_type(node, IntType(8, PUBLIC))
        if isinstance(node, ast.StringLit):
            self._strings.append(node.value + b"\x00")
            return self._set_type(node, PointerType(IntType(1, PUBLIC), PUBLIC))
        if isinstance(node, ast.Ident):
            return self._check_ident(node)
        if isinstance(node, ast.Unary):
            return self._check_unary(node)
        if isinstance(node, ast.Binary):
            return self._check_binary(node)
        if isinstance(node, ast.Assign):
            return self._check_assign(node)
        if isinstance(node, ast.IncDec):
            if not discard:
                raise SemaError("++/-- value is not supported; use x += 1", node.loc)
            ttype = self._check_expr(node.target)
            if not self._is_lvalue(node.target):
                raise SemaError("++/-- needs an lvalue", node.loc)
            if not ttype.is_scalar:
                raise SemaError("++/-- needs a scalar", node.loc)
            return self._set_type(node, ttype)
        if isinstance(node, ast.Call):
            return self._check_call(node)
        if isinstance(node, ast.Index):
            return self._check_index(node)
        if isinstance(node, ast.Member):
            return self._check_member(node)
        if isinstance(node, ast.Cast):
            return self._check_cast(node)
        if isinstance(node, ast.SizeofType):
            of = self._resolve_type(node.of, concrete=True)
            node.computed_size = of.size
            return self._set_type(node, IntType(8, PUBLIC))
        if isinstance(node, ast.VarArg):
            return self._check_vararg(node)
        if isinstance(node, ast.TlsBase):
            # The TLS base is an address into the (public) stack.
            return self._set_type(node, IntType(8, PUBLIC))
        raise SemaError(f"unknown expression {type(node).__name__}", node.loc)

    def _check_ident(self, node: ast.Ident) -> Type:
        symbol = self._lookup_local(node.name)
        if symbol is not None:
            node.binding = ("local", symbol)
            return self._set_type(node, self._decay(node, symbol.type))
        if node.name in self._globals:
            info = self._globals[node.name]
            node.binding = ("global", info)
            return self._set_type(node, self._decay(node, info.type))
        if node.name in self._functions:
            info = self._functions[node.name]
            node.binding = ("func", info)
            return self._set_type(node, PointerType(info.type, PUBLIC))
        raise SemaError(f"unknown identifier {node.name!r}", node.loc)

    def _is_lvalue(self, node: ast.Expr) -> bool:
        if isinstance(node, ast.Ident):
            return node.binding[0] in ("local", "global") and not isinstance(
                self._binding_type(node), ArrayType
            )
        if isinstance(node, ast.Unary) and node.op == "*":
            return True
        if isinstance(node, (ast.Index, ast.Member)):
            return True
        return False

    def _binding_type(self, node: ast.Ident) -> Type:
        kind, info = node.binding
        return info.type

    def _lvalue_storage_type(self, node: ast.Expr) -> Type:
        """The declared type of the storage an lvalue denotes (before
        array decay), used for address-of."""
        if isinstance(node, ast.Ident):
            return self._binding_type(node)
        assert node.type is not None
        return node.type

    def _check_unary(self, node: ast.Unary) -> Type:
        if node.op == "&":
            otype = self._check_expr(node.operand)
            if isinstance(node.operand, ast.Ident):
                kind, info = node.operand.binding
                if kind == "func":
                    return self._set_type(node, PointerType(info.type, PUBLIC))
                if kind == "local":
                    info.address_taken = True
                storage = info.type
            elif self._is_lvalue(node.operand):
                storage = self._lvalue_storage_type(node.operand)
            else:
                raise SemaError("cannot take address of rvalue", node.loc)
            if isinstance(storage, ArrayType):
                storage = storage.elem
            return self._set_type(
                node, PointerType(storage, TaintVar("addrof"))
            )
        otype = self._check_expr(node.operand)
        if node.op == "*":
            if not isinstance(otype, PointerType):
                raise SemaError("dereference of non-pointer", node.loc)
            if isinstance(otype.pointee, (VoidType, FuncType)):
                raise SemaError("dereference of void*/function pointer", node.loc)
            return self._set_type(node, self._decay(node, otype.pointee))
        if not isinstance(otype, IntType):
            raise SemaError(f"unary {node.op} needs an integer", node.loc)
        return self._set_type(node, IntType(8, otype.taint))

    def _join_terms(self, a: TaintTerm, b: TaintTerm, loc) -> TaintTerm:
        if is_concrete(a) and is_concrete(b):
            return join(a, b)
        if a is b:
            return a
        result = TaintVar("join")
        self._constraints.add_le(a, result, "operand", loc)
        self._constraints.add_le(b, result, "operand", loc)
        return result

    def _check_binary(self, node: ast.Binary) -> Type:
        ltype = self._check_expr(node.left)
        rtype = self._check_expr(node.right)
        if node.op in _LOGICAL:
            # Short-circuit operators branch on their operands.
            self._note_branch(ltype.taint, node.loc)
            self._note_branch(rtype.taint, node.loc)
            if not (ltype.is_scalar and rtype.is_scalar):
                raise SemaError("&&/|| need scalar operands", node.loc)
            return self._set_type(node, IntType(8, PUBLIC))
        if isinstance(ltype, PointerType) or isinstance(rtype, PointerType):
            return self._check_pointer_binary(node, ltype, rtype)
        if not (isinstance(ltype, IntType) and isinstance(rtype, IntType)):
            raise SemaError(f"invalid operands to {node.op}", node.loc)
        taint = self._join_terms(ltype.taint, rtype.taint, node.loc)
        return self._set_type(node, IntType(8, taint))

    def _check_pointer_binary(
        self, node: ast.Binary, ltype: Type, rtype: Type
    ) -> Type:
        if node.op in _COMPARISONS:
            taint = self._join_terms(ltype.taint, rtype.taint, node.loc)
            return self._set_type(node, IntType(8, taint))
        if node.op == "+" or node.op == "-":
            if isinstance(ltype, PointerType) and isinstance(rtype, IntType):
                return self._set_type(node, ltype)
            if (
                node.op == "-"
                and isinstance(ltype, PointerType)
                and isinstance(rtype, PointerType)
            ):
                taint = self._join_terms(ltype.taint, rtype.taint, node.loc)
                return self._set_type(node, IntType(8, taint))
            if (
                node.op == "+"
                and isinstance(ltype, IntType)
                and isinstance(rtype, PointerType)
            ):
                return self._set_type(node, rtype)
        raise SemaError(f"invalid pointer arithmetic {node.op}", node.loc)

    def _check_assign(self, node: ast.Assign) -> Type:
        ttype = self._check_expr(node.target)
        if not self._is_lvalue(node.target):
            raise SemaError("assignment target is not an lvalue", node.loc)
        vtype = self._check_expr(node.value)
        if node.op is not None:
            if not (isinstance(ttype, IntType) or isinstance(ttype, PointerType)):
                raise SemaError("compound assignment needs scalar", node.loc)
            if isinstance(ttype, PointerType) and node.op not in ("+", "-"):
                raise SemaError("invalid compound op on pointer", node.loc)
            if isinstance(ttype, PointerType) and not isinstance(vtype, IntType):
                raise SemaError("pointer += needs integer", node.loc)
            if isinstance(ttype, IntType) and not isinstance(vtype, IntType):
                raise SemaError("compound assignment needs integer value", node.loc)
            self._constraints.add_le(
                vtype.taint, ttype.taint, "compound assignment", node.loc
            )
            return self._set_type(node, ttype)
        self._check_shape_assignable(vtype, ttype, node.loc)
        self._flow(vtype, ttype, "assignment", node.loc)
        return self._set_type(node, ttype)

    def _check_call(self, node: ast.Call) -> Type:
        callee_type = self._check_expr(node.callee)
        if not (
            isinstance(callee_type, PointerType)
            and isinstance(callee_type.pointee, FuncType)
        ):
            raise SemaError("call of non-function", node.loc)
        ftype = callee_type.pointee
        is_direct = (
            isinstance(node.callee, ast.Ident) and node.callee.binding[0] == "func"
        )
        if not is_direct:
            # Indirect call: the function pointer must be public (the
            # CFI check requires a public target, Appendix A icall rule).
            self._constraints.add_le(
                callee_type.taint, PUBLIC, "indirect call target", node.loc
            )
        fixed = len(ftype.params)
        if len(node.args) < fixed or (len(node.args) > fixed and not ftype.varargs):
            raise SemaError(
                f"wrong number of arguments ({len(node.args)} for {fixed})",
                node.loc,
            )
        for arg, ptype in zip(node.args, ftype.params):
            atype = self._check_expr(arg)
            self._check_shape_assignable(atype, ptype, arg.loc)
            self._flow(atype, ptype, "argument", arg.loc)
        for arg in node.args[fixed:]:
            atype = self._check_expr(arg)
            if not atype.is_scalar:
                raise SemaError("variadic argument must be scalar", arg.loc)
            # Variadic arguments are spilled to the public stack, so
            # every taint position must be public.
            for term in taint_positions(atype):
                self._constraints.add_eq(
                    term, PUBLIC, "variadic argument", arg.loc
                )
        return self._set_type(node, self._decay(node, ftype.ret))

    def _check_index(self, node: ast.Index) -> Type:
        btype = self._check_expr(node.base)
        itype = self._check_expr(node.index)
        if not isinstance(itype, IntType):
            raise SemaError("array index must be an integer", node.loc)
        if isinstance(btype, PointerType):
            elem = btype.pointee
        elif isinstance(btype, ArrayType):  # pragma: no cover - decay hides this
            elem = btype.elem
        else:
            raise SemaError("indexing a non-pointer", node.loc)
        if isinstance(elem, (VoidType, FuncType)):
            raise SemaError("indexing void*/function pointer", node.loc)
        return self._set_type(node, self._decay(node, elem))

    def _check_member(self, node: ast.Member) -> Type:
        btype = self._check_expr(node.base)
        if node.arrow:
            if not isinstance(btype, PointerType) or not isinstance(
                btype.pointee, StructType
            ):
                raise SemaError("-> on non-struct-pointer", node.loc)
            struct = btype.pointee
        else:
            if not isinstance(btype, StructType):
                raise SemaError(". on non-struct", node.loc)
            struct = btype
        fld = struct.field(node.name)
        if fld is None:
            raise SemaError(
                f"struct {struct.name} has no field {node.name!r}", node.loc
            )
        # Fields inherit their outermost annotation from the variable.
        ftype = fld.type.with_taint(struct.taint)
        return self._set_type(node, self._decay(node, ftype))

    def _check_cast(self, node: ast.Cast) -> Type:
        self._check_expr(node.operand)
        to = self._resolve_type(node.to, concrete=True)
        # Casts deliberately generate no taint constraints: annotations
        # inside U are untrusted, and runtime checks catch lies.
        return self._set_type(node, to)

    def _check_vararg(self, node: ast.VarArg) -> Type:
        assert self._current is not None
        if not self._current.varargs:
            raise SemaError("__vararg outside a variadic function", node.loc)
        itype = self._check_expr(node.index)
        if not isinstance(itype, IntType):
            raise SemaError("__vararg index must be an integer", node.loc)
        return self._set_type(node, IntType(8, PUBLIC))

    # ------------------------------------------------------------------
    # Solution substitution

    def _substitute(self, solution: Solution) -> None:
        for node in self._typed_nodes:
            node.type = concretize(node.type, solution)
        for info in self._functions.values():
            info.type = concretize(info.type, solution)
            for symbol in info.locals:
                symbol.type = concretize(symbol.type, solution)
        for ginfo in self._globals.values():
            ginfo.type = concretize(ginfo.type, solution)


def analyze(
    program: ast.Program, strict: bool = True, all_private: bool = False
) -> CheckedProgram:
    """Run semantic analysis and qualifier inference on a parsed program."""
    return Sema(program, strict=strict, all_private=all_private).run()
