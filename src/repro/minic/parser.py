"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from ..errors import ParseError
from ..obs import events
from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    FuncSigExpr,
    GlobalVar,
    Ident,
    If,
    IncDec,
    Index,
    InitList,
    IntLit,
    LocalDecl,
    Member,
    Param,
    Program,
    Return,
    SizeofType,
    Stmt,
    StringLit,
    StructDef,
    Switch,
    TlsBase,
    SwitchCase,
    TypeExpr,
    Unary,
    VarArg,
    While,
)
from .lexer import tokenize
from .tokens import TK_CHAR, TK_EOF, TK_IDENT, TK_INT, TK_STRING, Token

_TYPE_STARTERS = {"int", "char", "void", "struct", "private"}

_ASSIGN_OPS = {
    "=": None,
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
}

# Binary operator precedence tiers, loosest first.
_BINARY_TIERS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(
        self,
        source: str,
        filename: str = "<input>",
        tokens: list[Token] | None = None,
    ):
        self._toks = tokens if tokens is not None else tokenize(source, filename)
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._toks) - 1)
        return self._toks[index]

    def _next(self) -> Token:
        tok = self._toks[self._pos]
        if tok.kind != TK_EOF:
            self._pos += 1
        return tok

    def _expect_punct(self, spelling: str) -> Token:
        tok = self._next()
        if not tok.is_punct(spelling):
            raise ParseError(f"expected {spelling!r}, found {tok.text!r}", tok.loc)
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind != TK_IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.loc)
        return tok

    def _accept_punct(self, spelling: str) -> bool:
        if self._peek().is_punct(spelling):
            self._next()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._next()
            return True
        return False

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind == "keyword" and tok.text in _TYPE_STARTERS

    # -- types and declarators ----------------------------------------------

    def _parse_type_prefix(self) -> TypeExpr:
        """Parse ``[private] base *...`` (no declarator)."""
        loc = self._peek().loc
        private = self._accept_keyword("private")
        tok = self._next()
        if tok.kind != "keyword" or tok.text not in ("int", "char", "void", "struct"):
            raise ParseError(f"expected type, found {tok.text!r}", tok.loc)
        struct_name = None
        if tok.text == "struct":
            struct_name = self._expect_ident().text
        texpr = TypeExpr(tok.text, loc, struct_name=struct_name, private=private)
        while self._accept_punct("*"):
            texpr.ptr += 1
        return texpr

    def _parse_declarator(self, texpr: TypeExpr) -> tuple[TypeExpr, str]:
        """Parse the declarator after a type prefix.

        Handles plain names, ``name[N]`` arrays, and function-pointer
        declarators ``(*name)(params)``.
        """
        if self._peek().is_punct("(") and self._peek(1).is_punct("*"):
            self._next()  # (
            self._next()  # *
            name = self._expect_ident().text
            self._expect_punct(")")
            self._expect_punct("(")
            params, varargs = self._parse_param_types()
            texpr.func = FuncSigExpr(params, varargs)
            return texpr, name
        name = self._expect_ident().text
        if self._accept_punct("["):
            tok = self._next()
            if tok.kind != TK_INT:
                raise ParseError("array length must be an integer literal", tok.loc)
            texpr.array_len = tok.value
            self._expect_punct("]")
        return texpr, name

    def _parse_param_types(self) -> tuple[list[TypeExpr], bool]:
        """Types-only parameter list (for function-pointer declarators)."""
        params: list[TypeExpr] = []
        varargs = False
        if self._accept_punct(")"):
            return params, varargs
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self._next()
            self._next()
            return params, varargs
        while True:
            if self._accept_punct("..."):
                varargs = True
                break
            texpr = self._parse_type_prefix()
            # Parameter name is optional in a type-only list.
            if self._peek().kind == TK_IDENT:
                self._next()
            params.append(texpr)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return params, varargs

    def _parse_params(self) -> tuple[list[Param], bool]:
        params: list[Param] = []
        varargs = False
        if self._accept_punct(")"):
            return params, varargs
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self._next()
            self._next()
            return params, varargs
        while True:
            if self._accept_punct("..."):
                varargs = True
                break
            loc = self._peek().loc
            texpr = self._parse_type_prefix()
            texpr, name = self._parse_declarator(texpr)
            params.append(Param(texpr, name, loc))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return params, varargs

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self._peek().kind != TK_EOF:
            program.decls.append(self._parse_top_decl())
        return program

    def _parse_top_decl(self):
        loc = self._peek().loc
        if (
            self._peek().is_keyword("struct")
            and self._peek(1).kind == TK_IDENT
            and self._peek(2).is_punct("{")
        ):
            return self._parse_struct_def()
        extern = self._accept_keyword("extern")
        trusted = self._accept_keyword("trusted") if extern else False
        texpr = self._parse_type_prefix()
        texpr, name = self._parse_declarator(texpr)
        if texpr.func is None and self._peek().is_punct("("):
            self._next()
            params, varargs = self._parse_params()
            if self._accept_punct(";"):
                return FuncDef(
                    texpr, name, params, varargs, None, loc,
                    trusted=trusted, extern=True,
                )
            if extern:
                raise ParseError("extern function cannot have a body", loc)
            body = self._parse_block()
            return FuncDef(texpr, name, params, varargs, body, loc)
        init = None
        if self._accept_punct("="):
            if self._peek().is_punct("{"):
                init = self._parse_init_list()
            else:
                init = self._parse_expr()
        self._expect_punct(";")
        if extern:
            raise ParseError("extern variables are not supported", loc)
        return GlobalVar(texpr, name, init, loc)

    def _parse_init_list(self) -> InitList:
        loc = self._expect_punct("{").loc
        values: list[int] = []
        if not self._accept_punct("}"):
            while True:
                negative = self._accept_punct("-")
                tok = self._next()
                if tok.kind not in (TK_INT, TK_CHAR):
                    raise ParseError(
                        "initializer lists take integer constants", tok.loc
                    )
                values.append(-tok.value if negative else tok.value)
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
        return InitList(values, loc)

    def _parse_struct_def(self) -> StructDef:
        loc = self._next().loc  # struct
        name = self._expect_ident().text
        self._expect_punct("{")
        fields: list[tuple[TypeExpr, str]] = []
        while not self._accept_punct("}"):
            texpr = self._parse_type_prefix()
            texpr, fname = self._parse_declarator(texpr)
            self._expect_punct(";")
            fields.append((texpr, fname))
        self._expect_punct(";")
        return StructDef(name, fields, loc)

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> Block:
        loc = self._expect_punct("{").loc
        stmts: list[Stmt] = []
        while not self._accept_punct("}"):
            stmts.append(self._parse_stmt())
        return Block(stmts, loc)

    def _parse_stmt(self) -> Stmt:
        tok = self._peek()
        loc = tok.loc
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            self._next()
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            then = self._parse_stmt()
            els = self._parse_stmt() if self._accept_keyword("else") else None
            return If(cond, then, els, loc)
        if tok.is_keyword("while"):
            self._next()
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            return While(cond, self._parse_stmt(), loc)
        if tok.is_keyword("for"):
            return self._parse_for(loc)
        if tok.is_keyword("switch"):
            return self._parse_switch(loc)
        if tok.is_keyword("return"):
            self._next()
            value = None if self._peek().is_punct(";") else self._parse_expr()
            self._expect_punct(";")
            return Return(value, loc)
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return Break(loc)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return Continue(loc)
        if self._at_type():
            return self._parse_local_decl()
        expr = self._parse_expr()
        self._expect_punct(";")
        return ExprStmt(expr, loc)

    def _parse_for(self, loc) -> For:
        self._next()  # for
        self._expect_punct("(")
        init: Stmt | None = None
        if not self._accept_punct(";"):
            if self._at_type():
                init = self._parse_local_decl()
            else:
                init = ExprStmt(self._parse_expr(), loc)
                self._expect_punct(";")
        cond = None if self._peek().is_punct(";") else self._parse_expr()
        self._expect_punct(";")
        step = None if self._peek().is_punct(")") else self._parse_expr()
        self._expect_punct(")")
        return For(init, cond, step, self._parse_stmt(), loc)

    def _parse_switch(self, loc) -> Switch:
        self._next()  # switch
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[SwitchCase] = []
        default_stmts: list[Stmt] | None = None
        current: list[Stmt] | None = None
        while not self._accept_punct("}"):
            tok = self._peek()
            if self._accept_keyword("case"):
                if default_stmts is not None:
                    raise ParseError(
                        "case labels after default are not supported",
                        tok.loc,
                    )
                negative = self._accept_punct("-")
                vtok = self._next()
                if vtok.kind not in (TK_INT, TK_CHAR):
                    raise ParseError(
                        "case label must be an integer constant", vtok.loc
                    )
                self._expect_punct(":")
                value = -vtok.value if negative else vtok.value
                cases.append(SwitchCase(value, [], tok.loc))
                current = cases[-1].stmts
            elif self._accept_keyword("default"):
                self._expect_punct(":")
                if default_stmts is not None:
                    raise ParseError("duplicate default label", tok.loc)
                default_stmts = []
                current = default_stmts
            else:
                if current is None:
                    raise ParseError(
                        "statement before first case label", tok.loc
                    )
                current.append(self._parse_stmt())
        return Switch(cond, cases, default_stmts, loc)

    def _parse_local_decl(self) -> LocalDecl:
        loc = self._peek().loc
        texpr = self._parse_type_prefix()
        texpr, name = self._parse_declarator(texpr)
        init = self._parse_expr() if self._accept_punct("=") else None
        self._expect_punct(";")
        return LocalDecl(texpr, name, init, loc)

    # -- expressions -------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_binary(0)
        tok = self._peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            return Assign(left, value, tok.loc, op=_ASSIGN_OPS[tok.text])
        return left

    def _parse_binary(self, tier: int) -> Expr:
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        ops = _BINARY_TIERS[tier]
        while self._peek().kind == "punct" and self._peek().text in ops:
            tok = self._next()
            right = self._parse_binary(tier + 1)
            left = Binary(tok.text, left, right, tok.loc)
        return left

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        loc = tok.loc
        if tok.kind == "punct" and tok.text in ("-", "~", "!", "*", "&"):
            self._next()
            return Unary(tok.text, self._parse_unary(), loc)
        if tok.is_punct("++") or tok.is_punct("--"):
            self._next()
            delta = 1 if tok.text == "++" else -1
            return IncDec(self._parse_unary(), delta, loc)
        if tok.is_keyword("sizeof"):
            self._next()
            self._expect_punct("(")
            texpr = self._parse_type_prefix()
            self._expect_punct(")")
            return SizeofType(texpr, loc)
        if tok.is_punct("(") and self._at_type(1):
            self._next()
            texpr = self._parse_type_prefix()
            # Abstract function-pointer declarator: (ret (*)(params)).
            if (
                self._peek().is_punct("(")
                and self._peek(1).is_punct("*")
                and self._peek(2).is_punct(")")
            ):
                self._next()  # (
                self._next()  # *
                self._next()  # )
                self._expect_punct("(")
                params, varargs = self._parse_param_types()
                texpr.func = FuncSigExpr(params, varargs)
            self._expect_punct(")")
            return Cast(texpr, self._parse_unary(), loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("("):
                self._next()
                args: list[Expr] = []
                if not self._accept_punct(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept_punct(","):
                            break
                    self._expect_punct(")")
                if isinstance(expr, Ident) and expr.name == "__vararg":
                    if len(args) != 1:
                        raise ParseError("__vararg takes one argument", tok.loc)
                    expr = VarArg(args[0], tok.loc)
                elif isinstance(expr, Ident) and expr.name == "__tlsbase":
                    if args:
                        raise ParseError("__tlsbase takes no arguments", tok.loc)
                    expr = TlsBase(tok.loc)
                else:
                    expr = Call(expr, args, tok.loc)
            elif tok.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = Index(expr, index, tok.loc)
            elif tok.is_punct(".") or tok.is_punct("->"):
                self._next()
                name = self._expect_ident().text
                expr = Member(expr, name, tok.text == "->", tok.loc)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._next()
                expr = IncDec(expr, 1 if tok.text == "++" else -1, tok.loc)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self._next()
        if tok.kind == TK_INT or tok.kind == TK_CHAR:
            return IntLit(tok.value, tok.loc)
        if tok.kind == TK_STRING:
            return StringLit(tok.value, tok.loc)
        if tok.kind == TK_IDENT:
            return Ident(tok.text, tok.loc)
        if tok.is_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.loc)


def parse(source: str, filename: str = "<input>") -> Program:
    """Parse MiniC source text into a :class:`Program` AST."""
    with events.span("compile.lex", filename=filename):
        tokens = tokenize(source, filename)
    events.counter("frontend.tokens").inc(len(tokens))
    with events.span("compile.parse", filename=filename):
        return Parser(source, filename, tokens=tokens).parse_program()
