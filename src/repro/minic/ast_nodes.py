"""Abstract syntax tree for MiniC.

The parser produces *type expressions* (:class:`TypeExpr`) rather than
resolved types; semantic analysis converts them to
:mod:`repro.minic.types` values, choosing concrete taints for top-level
positions and fresh inference variables for locals (Section 2 of the
paper: only top-level definitions need annotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SourceLocation

# --------------------------------------------------------------------------
# Type expressions


@dataclass
class FuncSigExpr:
    """Parameter list of a function-pointer declarator."""

    params: list["TypeExpr"]
    varargs: bool


@dataclass
class TypeExpr:
    """An unresolved type as written in source.

    ``private`` qualifies the *base* type (the innermost level), as in
    the paper's ``private int *p``.  ``ptr`` counts pointer levels
    applied outside the base.  ``func`` marks a function-pointer
    declarator ``ret (*name)(params)`` — in that case ``ptr`` levels and
    the base describe the return type.
    """

    base: str  # "int" | "char" | "void" | "struct"
    loc: SourceLocation
    struct_name: str | None = None
    private: bool = False
    ptr: int = 0
    array_len: int | None = None
    func: FuncSigExpr | None = None


# --------------------------------------------------------------------------
# Expressions


class Expr:
    loc: SourceLocation
    # Filled in by semantic analysis:
    type = None  # resolved Type


@dataclass
class IntLit(Expr):
    value: int
    loc: SourceLocation


@dataclass
class StringLit(Expr):
    value: bytes
    loc: SourceLocation


@dataclass
class Ident(Expr):
    name: str
    loc: SourceLocation


@dataclass
class Unary(Expr):
    op: str  # "-", "~", "!", "*", "&"
    operand: Expr
    loc: SourceLocation


@dataclass
class Binary(Expr):
    op: str  # arithmetic/comparison/logical/bitwise/shift
    left: Expr
    right: Expr
    loc: SourceLocation


@dataclass
class Assign(Expr):
    """``target = value`` or compound ``target op= value``."""

    target: Expr
    value: Expr
    loc: SourceLocation
    op: str | None = None  # None for plain "=", else "+", "-", ...


@dataclass
class IncDec(Expr):
    """``x++`` / ``--x``; only legal in value-discarding positions."""

    target: Expr
    delta: int  # +1 or -1
    loc: SourceLocation


@dataclass
class Call(Expr):
    callee: Expr
    args: list[Expr]
    loc: SourceLocation


@dataclass
class Index(Expr):
    base: Expr
    index: Expr
    loc: SourceLocation


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool
    loc: SourceLocation


@dataclass
class Cast(Expr):
    to: TypeExpr
    operand: Expr
    loc: SourceLocation


@dataclass
class SizeofType(Expr):
    of: TypeExpr
    loc: SourceLocation


@dataclass
class InitList(Expr):
    """A brace-enclosed list of integer constants (global arrays)."""

    values: list[int]
    loc: SourceLocation


@dataclass
class TlsBase(Expr):
    """``__tlsbase()`` — the per-thread TLS base: rsp with its low 20
    bits masked to zero (Section 3, multi-threading support)."""

    loc: SourceLocation


@dataclass
class VarArg(Expr):
    """``__vararg(i)`` — read the i-th variadic stack slot (public)."""

    index: Expr
    loc: SourceLocation


# --------------------------------------------------------------------------
# Statements


class Stmt:
    loc: SourceLocation


@dataclass
class Block(Stmt):
    stmts: list[Stmt]
    loc: SourceLocation


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    els: Stmt | None
    loc: SourceLocation


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt
    loc: SourceLocation


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt
    loc: SourceLocation


@dataclass
class SwitchCase:
    value: int
    stmts: list[Stmt]
    loc: SourceLocation


@dataclass
class Switch(Stmt):
    """C-style switch with fallthrough; case values are int literals."""

    cond: Expr
    cases: list[SwitchCase]
    default_stmts: "list[Stmt] | None"
    loc: SourceLocation


@dataclass
class Return(Stmt):
    value: Expr | None
    loc: SourceLocation


@dataclass
class Break(Stmt):
    loc: SourceLocation


@dataclass
class Continue(Stmt):
    loc: SourceLocation


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    loc: SourceLocation


@dataclass
class LocalDecl(Stmt):
    decl_type: TypeExpr
    name: str
    init: Expr | None
    loc: SourceLocation


# --------------------------------------------------------------------------
# Top-level declarations


@dataclass
class Param:
    decl_type: TypeExpr
    name: str
    loc: SourceLocation


@dataclass
class FuncDef:
    """A function definition or an ``extern``/``extern trusted``
    prototype.  ``trusted`` marks a T-library import whose annotated
    signature is *trusted* (the paper's exported-from-T interface)."""

    ret_type: TypeExpr
    name: str
    params: list[Param]
    varargs: bool
    body: Block | None
    loc: SourceLocation
    trusted: bool = False
    extern: bool = False


@dataclass
class GlobalVar:
    decl_type: TypeExpr
    name: str
    init: Expr | None
    loc: SourceLocation


@dataclass
class StructDef:
    name: str
    fields: list[tuple[TypeExpr, str]]
    loc: SourceLocation


@dataclass
class Program:
    decls: list[object] = field(default_factory=list)  # FuncDef|GlobalVar|StructDef
