"""Token definitions for the MiniC language.

MiniC is the C subset this reproduction compiles: it keeps every
feature the ConfLLVM scheme must defend against (pointers, casts,
address-of, arrays, structs, function pointers, varargs) and adds the
``private`` type qualifier from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SourceLocation

KEYWORDS = frozenset(
    {
        "int",
        "char",
        "void",
        "struct",
        "private",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "sizeof",
        "extern",
        "trusted",
        "switch",
        "case",
        "default",
    }
)

# Multi-character punctuators first so the lexer can do longest-match.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "->",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    ":",
)

TK_IDENT = "ident"
TK_KEYWORD = "keyword"
TK_INT = "int_lit"
TK_CHAR = "char_lit"
TK_STRING = "string_lit"
TK_PUNCT = "punct"
TK_EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of the ``TK_*`` constants; ``text`` is the lexeme
    (for keywords and punctuators, the spelling itself); ``value``
    carries the decoded literal for int/char/string tokens.
    """

    kind: str
    text: str
    loc: SourceLocation
    value: int | bytes | None = None

    def is_punct(self, spelling: str) -> bool:
        return self.kind == TK_PUNCT and self.text == spelling

    def is_keyword(self, word: str) -> bool:
        return self.kind == TK_KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r}, {self.loc})"
