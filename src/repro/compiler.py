"""The one-call driver: MiniC source -> running process.

This is the public API most examples and benchmarks use::

    from repro import compile_and_load, OUR_MPX

    process = compile_and_load(source, OUR_MPX)
    exit_code = process.run()

The full pipeline is parse -> analyze (taint inference) -> lower to IR
-> optimize -> codegen (+instrumentation) -> link (magic selection) ->
verify (ConfVerify, unless disabled) -> load.
"""

from __future__ import annotations

from .backend.codegen import compile_module
from .config import BuildConfig
from .frontend.lower import lower_program
from .link.linker import link
from .link.loader import Process, load
from .link.objfile import Binary, UObject
from .minic.parser import parse
from .minic.sema import analyze
from .obs import events
from .opt.pipeline import optimize_module
from .runtime.trusted import TrustedRuntime


def compile_source(
    source: str,
    config: BuildConfig,
    entry: str = "main",
    filename: str = "<input>",
    seed: int | None = None,
    verify: bool = False,
) -> Binary:
    """Compile and link MiniC source into a binary.

    When an obs registry is active (``repro.obs.events``), every stage
    records a wall-clock span: lex/parse (frontend), sema + taint-solve,
    lower, opt passes, regalloc/codegen, link, and (optionally) verify,
    all nested under ``compile.total``.
    """
    with events.span("compile.total", config=config.name, filename=filename):
        program = parse(source, filename)
        with events.span("compile.sema"):
            checked = analyze(
                program,
                strict=config.strict,
                all_private=config.all_private,
            )
        with events.span("compile.lower"):
            module = lower_program(checked)
        optimize_module(module, pipeline=config.pipeline)
        obj: UObject = compile_module(module, config)
        binary = link(obj, entry=entry, seed=seed)
        if verify:
            from .verifier.verify import verify_binary

            verify_binary(binary)
    return binary


def compile_and_load(
    source: str,
    config: BuildConfig,
    runtime: TrustedRuntime | None = None,
    entry: str = "main",
    n_cores: int = 4,
    seed: int | None = None,
    verify: bool = False,
    engine: str = "predecoded",
) -> Process:
    """Compile, link, (optionally) verify, and load MiniC source.

    ``engine`` selects the execution engine: ``"predecoded"`` (default,
    fast) or ``"reference"`` (the one-step-at-a-time debug engine); both
    produce identical simulated cycles, stats, and faults.
    """
    binary = compile_source(
        source, config, entry=entry, seed=seed, verify=verify
    )
    return load(binary, runtime=runtime, n_cores=n_cores, engine=engine)
