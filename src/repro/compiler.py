"""The one-call drivers: MiniC source -> running process.

This is the public API most examples and benchmarks use::

    from repro import compile_and_load, OUR_MPX

    process = compile_and_load(source, OUR_MPX)
    exit_code = process.run()

Both entry points are thin compatibility wrappers over the staged
build layer (:mod:`repro.build`): they delegate to the process-wide
default :class:`~repro.build.session.BuildSession`, so an active
session override (``repro.build.use_session``) transparently gives
every caller object caching and parallel-build support.  The staged
pipeline is parse -> analyze (taint inference) -> lower to IR ->
optimize -> codegen (+instrumentation) -> link (magic selection) ->
verify (ConfVerify, unless disabled) -> load.
"""

from __future__ import annotations

from .build.session import default_session
from .config import BuildConfig
from .link.loader import Process, load
from .link.objfile import Binary
from .runtime.trusted import TrustedRuntime


def compile_source(
    source: str,
    config: BuildConfig,
    entry: str = "main",
    filename: str = "<input>",
    seed: int | None = None,
    verify: bool = False,
) -> Binary:
    """Compile and link MiniC source into a binary.

    When an obs registry is active (``repro.obs.events``), every stage
    records a wall-clock span: lex/parse (frontend), sema + taint-solve,
    lower, opt passes, regalloc/codegen, link, and (optionally) verify,
    all nested under ``compile.total``.  A warm object cache on the
    active build session skips everything up to the link (the cache hit
    is visible as a ``build.cache.hit`` counter instead of stage spans).
    """
    return default_session().build(
        source, config, entry=entry, filename=filename, seed=seed,
        verify=verify,
    )


def compile_and_load(
    source: str,
    config: BuildConfig,
    runtime: TrustedRuntime | None = None,
    entry: str = "main",
    n_cores: int = 4,
    seed: int | None = None,
    verify: bool = False,
    engine: str = "predecoded",
) -> Process:
    """Compile, link, (optionally) verify, and load MiniC source.

    ``engine`` selects the execution engine: ``"predecoded"`` (default,
    fast) or ``"reference"`` (the one-step-at-a-time debug engine); both
    produce identical simulated cycles, stats, and faults.
    """
    binary = compile_source(
        source, config, entry=entry, seed=seed, verify=verify
    )
    return load(binary, runtime=runtime, n_cores=n_cores, engine=engine)
