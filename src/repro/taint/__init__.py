"""Taint lattice, inference variables, and the constraint solver."""

from .lattice import PRIVATE, PUBLIC, Taint, TaintTerm, TaintVar, is_concrete, join, leq
from .solve import Constraint, ConstraintSet, Solution, solve

__all__ = [
    "Taint",
    "TaintVar",
    "TaintTerm",
    "PUBLIC",
    "PRIVATE",
    "join",
    "leq",
    "is_concrete",
    "Constraint",
    "ConstraintSet",
    "Solution",
    "solve",
]
