"""Worklist solver for taint-qualifier subtyping constraints.

ConfLLVM solves the subtyping constraints produced by qualifier
inference with an SMT solver (Z3).  Because the qualifier lattice has
exactly two points, the constraint system is equivalent to Horn clauses
over booleans and a least-fixed-point worklist solver is complete for
it; that is what we implement here.

The solver computes the *least* solution: every variable starts at
``PUBLIC`` and is raised to ``PRIVATE`` only when forced.  After the
fixed point is reached, any constraint of the form ``PRIVATE ⊑ PUBLIC``
(through constants or pinned variables) is reported as a
:class:`~repro.errors.TaintError` carrying the constraint's source
location and reason — this is the compile-time leak diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SourceLocation, TaintError
from ..obs import events
from .lattice import PRIVATE, PUBLIC, Taint, TaintTerm, TaintVar


@dataclass(frozen=True)
class Constraint:
    """A subtyping constraint ``lo ⊑ hi`` with provenance for errors."""

    lo: TaintTerm
    hi: TaintTerm
    reason: str = ""
    loc: SourceLocation | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.lo!r} <= {self.hi!r} ({self.reason})"


@dataclass
class ConstraintSet:
    """Accumulates constraints during semantic analysis."""

    constraints: list[Constraint] = field(default_factory=list)

    def add_le(
        self,
        lo: TaintTerm,
        hi: TaintTerm,
        reason: str = "",
        loc: SourceLocation | None = None,
    ) -> None:
        """Require ``lo ⊑ hi`` (a data flow from lo into hi)."""
        self.constraints.append(Constraint(lo, hi, reason, loc))

    def add_eq(
        self,
        a: TaintTerm,
        b: TaintTerm,
        reason: str = "",
        loc: SourceLocation | None = None,
    ) -> None:
        """Require ``a = b`` (pointer pointee invariance)."""
        self.add_le(a, b, reason, loc)
        self.add_le(b, a, reason, loc)

    def __len__(self) -> int:
        return len(self.constraints)


class Solution:
    """A satisfying assignment mapping every TaintVar to a Taint."""

    def __init__(self, assignment: dict[TaintVar, Taint]):
        self._assignment = assignment

    def resolve(self, term: TaintTerm) -> Taint:
        """Concretize a taint term under this solution.

        Variables that never appeared in any constraint default to
        PUBLIC (the least level), matching the solver's least-solution
        semantics.
        """
        if isinstance(term, Taint):
            return term
        return self._assignment.get(term, PUBLIC)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_priv = sum(1 for v in self._assignment.values() if v is PRIVATE)
        return f"<Solution {len(self._assignment)} vars, {n_priv} private>"


def solve(cs: ConstraintSet) -> Solution:
    """Solve a constraint set, returning the least solution.

    Raises
    ------
    TaintError
        If no solution exists, i.e. some constraint chain forces
        ``PRIVATE ⊑ PUBLIC``.  The error carries the location of the
        first violated constraint.
    """
    with events.span("compile.taint-solve", constraints=len(cs.constraints)):
        value: dict[TaintVar, Taint] = {}
        # Map each variable to the constraints in which it is the lower
        # side, so that raising it re-checks only those constraints.
        dependents: dict[TaintVar, list[Constraint]] = {}
        for c in cs.constraints:
            if isinstance(c.lo, TaintVar):
                dependents.setdefault(c.lo, []).append(c)
                value.setdefault(c.lo, PUBLIC)
            if isinstance(c.hi, TaintVar):
                value.setdefault(c.hi, PUBLIC)

        def current(term: TaintTerm) -> Taint:
            if isinstance(term, Taint):
                return term
            return value.get(term, PUBLIC)

        processed = 0
        worklist = list(cs.constraints)
        while worklist:
            c = worklist.pop()
            processed += 1
            if current(c.lo) is PRIVATE and current(c.hi) is PUBLIC:
                if isinstance(c.hi, TaintVar):
                    value[c.hi] = PRIVATE
                    worklist.extend(dependents.get(c.hi, ()))
                # If hi is the constant PUBLIC the constraint is violated;
                # defer the error to the final validation pass so we report
                # against the fully-raised assignment.

        events.counter("taint.constraints").inc(len(cs.constraints))
        events.counter("taint.constraints_solved").inc(processed)
        events.counter("taint.vars_private").inc(
            sum(1 for v in value.values() if v is PRIVATE)
        )
        for c in cs.constraints:
            if current(c.lo) is PRIVATE and current(c.hi) is PUBLIC:
                raise TaintError(
                    "private data flows into a public position"
                    + (f" ({c.reason})" if c.reason else ""),
                    c.loc,
                )
        return Solution(value)
