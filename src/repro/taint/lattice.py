"""The two-point taint lattice (public ⊑ private) and inference terms.

The paper uses the classic information-flow lattice with two levels:
``L`` (public) and ``H`` (private), with ``L ⊑ H``.  Qualifier inference
(Section 5.1, following Foster et al.'s type qualifiers) introduces
*taint variables* for unannotated positions and solves subtyping
constraints over them; :mod:`repro.taint.solve` implements the solver.
"""

from __future__ import annotations

import enum
import itertools


class Taint(enum.IntEnum):
    """A concrete taint level.  ``PUBLIC < PRIVATE`` so ``max`` is join."""

    PUBLIC = 0
    PRIVATE = 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PRIVATE" if self is Taint.PRIVATE else "PUBLIC"

    @property
    def bit(self) -> int:
        """The single-bit encoding used in CFI magic sequences."""
        return int(self)


PUBLIC = Taint.PUBLIC
PRIVATE = Taint.PRIVATE


def join(a: Taint, b: Taint) -> Taint:
    """Least upper bound of two taints."""
    return Taint(max(int(a), int(b)))


def leq(a: Taint, b: Taint) -> bool:
    """True iff ``a ⊑ b`` in the lattice."""
    return int(a) <= int(b)


_fresh_counter = itertools.count()


class TaintVar:
    """An inference variable standing for an unknown taint level.

    Instances are compared by identity; ``name`` exists only for
    diagnostics (it usually records the declaration the variable
    qualifies, e.g. ``"local passwd"``).
    """

    __slots__ = ("name", "uid")

    def __init__(self, name: str = ""):
        self.uid = next(_fresh_counter)
        self.name = name

    def __repr__(self) -> str:
        label = self.name or "t"
        return f"?{label}.{self.uid}"


# A taint *term* is either a concrete Taint or a TaintVar.
TaintTerm = Taint | TaintVar


def is_concrete(term: TaintTerm) -> bool:
    return isinstance(term, Taint)
