"""Virtual-address-space layout (Figure 3 of the paper).

Concrete constants are scaled-down but structurally faithful versions
of the paper's layouts:

* **MPX scheme** (Fig. 3b): a contiguous public region and private
  region, each surrounded by unmapped guard areas at least as large as
  the maximum elidable displacement (1 MiB), so dropping small
  displacements from bound checks is sound.  The two stacks are kept in
  lock-step at a constant ``OFFSET`` (here: the distance between the
  region bases).
* **Segmentation scheme** (Fig. 3a): 4 GiB-aligned segments whose bases
  live in ``fs`` (public) and ``gs`` (private); everything outside the
  usable windows is simply unmapped, which is what makes ``fs:[e...]``
  operands unable to escape.

Code lives in a distinct word-addressed space starting at
``CODE_BASE``; the externals table holds ``NATIVE_BASE``-range values
that the machine dispatches to trusted (T) wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# Usable bytes per region (scaled down from the paper's 4 GiB; the
# structure, not the size, is what the scheme depends on).
REGION_SIZE = 64 * MB
GUARD_SIZE = 2 * MB  # covers the +/- 1 MiB elidable displacement

THREAD_STACK_SIZE = 1 * MB  # paper default, 1 MiB aligned
MAX_THREADS = 8
STACK_AREA = THREAD_STACK_SIZE * MAX_THREADS
TLS_SIZE = 4 * KB  # per-thread TLS buffer at the base of each stack

CODE_BASE = 1 << 56
NATIVE_BASE = 1 << 60

# MPX layout anchors.
MPX_PUB_BASE = 0x1000_0000
# Segmentation layout anchors (4 GiB aligned, 40 GiB apart as in §3).
SEG_FS_BASE = 4 * GB
SEG_GS_BASE = SEG_FS_BASE + 40 * GB

# T's own region (U range checks can never reach it).
T_BASE = 0x7000_0000_0000
T_SIZE = 64 * MB

# The compile-time constant distance between the public and private
# stack tops under the MPX (and bare split-stack) layouts — the paper's
# OFFSET.  Equals private.base - public.base below.
MPX_STACK_OFFSET = REGION_SIZE + GUARD_SIZE


@dataclass(frozen=True)
class Region:
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end


@dataclass(frozen=True)
class MemoryLayout:
    """Resolved layout for one loaded process."""

    scheme: str | None  # None (flat/Base), "mpx", or "seg"
    split_memory: bool  # private region exists at all
    public: Region
    private: Region | None
    t_region: Region
    pub_globals_size: int
    priv_globals_size: int

    # Derived areas -----------------------------------------------------

    def globals_base(self, private: bool) -> int:
        region = self._pick(private)
        return region.base

    def heap_range(self, private: bool) -> tuple[int, int]:
        region = self._pick(private)
        gsize = self.priv_globals_size if private else self.pub_globals_size
        lo = region.base + _page_round(gsize)
        hi = region.end - STACK_AREA
        return lo, hi

    def stack_top(self, private: bool, thread: int = 0) -> int:
        region = self._pick(private)
        return region.end - thread * THREAD_STACK_SIZE

    def stack_range(self, private: bool, thread: int = 0) -> tuple[int, int]:
        top = self.stack_top(private, thread)
        return top - THREAD_STACK_SIZE, top

    @property
    def offset(self) -> int:
        """The lock-step distance between public and private stacks
        (the MPX scheme's OFFSET)."""
        if self.private is None:
            return 0
        return self.private.base - self.public.base

    def _pick(self, private: bool) -> Region:
        if private:
            assert self.private is not None, "layout has no private region"
            return self.private
        return self.public


def _page_round(n: int, page: int = 4096) -> int:
    return (n + page - 1) // page * page


def make_layout(
    scheme: str | None,
    split_memory: bool,
    pub_globals_size: int,
    priv_globals_size: int,
) -> MemoryLayout:
    """Build the layout for a configuration.

    ``split_memory`` is False for Base/BaseOA/Our1Mem, where everything
    (including "private" data, of which those configs have none or
    don't protect) lives in one flat region.
    """
    if scheme == "seg":
        public = Region(SEG_FS_BASE, REGION_SIZE)
        private = Region(SEG_GS_BASE, REGION_SIZE) if split_memory else None
    else:
        public = Region(MPX_PUB_BASE, REGION_SIZE)
        private = (
            Region(MPX_PUB_BASE + REGION_SIZE + GUARD_SIZE, REGION_SIZE)
            if split_memory
            else None
        )
    return MemoryLayout(
        scheme=scheme,
        split_memory=split_memory,
        public=public,
        private=private,
        t_region=Region(T_BASE, T_SIZE),
        pub_globals_size=pub_globals_size,
        priv_globals_size=priv_globals_size,
    )
