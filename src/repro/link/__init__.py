"""Linker, loader, layout, and binary containers."""

from .layout import CODE_BASE, NATIVE_BASE, MemoryLayout, make_layout
from .linker import link
from .loader import Process, load
from .objfile import Binary, CompiledFunction, UObject

__all__ = [
    "link",
    "load",
    "Process",
    "Binary",
    "CompiledFunction",
    "UObject",
    "MemoryLayout",
    "make_layout",
    "CODE_BASE",
    "NATIVE_BASE",
]
