"""Object-file containers passed between codegen, linker, and loader."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backend.isa import Insn
from ..config import BuildConfig
from ..ir.core import ExternSig, IRGlobal
from ..taint.lattice import Taint


@dataclass
class CompiledFunction:
    """One function's instruction stream plus CFI metadata."""

    name: str
    insns: list[Insn]
    # Taint bits for the entry magic word (4 args + return).
    entry_bits: int
    arg_taints: list[Taint]
    ret_taint: Taint
    n_args: int


@dataclass
class UObject:
    """The compiled-but-unlinked U module (the paper's pre-link dll).

    Units serialize to a stable, versioned format via
    ``repro.build.serialize`` (``dump_uobject``/``load_uobject``) so
    they can live in the content-addressed object cache and be linked
    in a later process.
    """

    name: str
    functions: list[CompiledFunction]
    globals: dict[str, IRGlobal]
    # Trusted imports, in stable order (their index is the externals-
    # table slot).
    imports: list[ExternSig]
    config: BuildConfig
    # Untrusted (U) functions this unit declares but does not define —
    # separate compilation's cross-object externals.  The multi-object
    # linker resolves each against a definition in another unit and
    # checks the declared taint signature against the definition.
    externals: list[ExternSig] = field(default_factory=list)


@dataclass
class Binary:
    """A linked, loadable U binary.

    ``code`` is the word-addressed code space.  ``label_addrs`` maps
    every label (functions and basic blocks) to its word address;
    ``func_magic_addrs`` maps function names to the address of their
    MCall magic word (what function pointers hold under CFI).
    ``check_sites`` maps the address of every instrumentation check
    (bnd / cfi / magic / chkstk / shadow, see ``isa.check_kind``) to its
    category — symbol-side metadata the profiler and overhead reports
    consume without rescanning the code.
    """

    code: list[Insn]
    label_addrs: dict[str, int]
    func_magic_addrs: dict[str, int]
    global_addrs: dict[str, int]
    global_inits: list[tuple[int, bytes]]
    imports: list[ExternSig]
    externals_table_addr: int
    entry: str
    config: BuildConfig
    mcall_prefix: int = 0
    mret_prefix: int = 0
    # Populated by the linker for diagnostics / the verifier.
    function_order: list[str] = field(default_factory=list)
    # Resolved memory layout (set by the linker) and the address ranges
    # the loader must map read-only (rodata + the externals table).
    layout: object = None
    read_only_ranges: list[tuple[int, int]] = field(default_factory=list)
    # Address -> check category (populated by the linker; see class doc).
    check_sites: dict[int, str] = field(default_factory=dict)

    @property
    def entry_addr(self) -> int:
        return self.label_addrs[self.entry]
