"""The loader (Section 6): maps regions, installs the externals table,
relocates and initializes globals, sets the MPX bound registers or
segment registers, creates heaps and stacks, and starts the process.
"""

from __future__ import annotations

from ..backend import regs
from ..errors import LoadError
from ..machine.cpu import Machine
from ..obs import events
from ..runtime.alloc import NativeAllocator, RegionAllocator
from ..runtime.trusted import TrustedRuntime
from .objfile import Binary


class Process:
    """A loaded program: machine + trusted runtime, ready to run."""

    def __init__(self, machine: Machine, runtime: TrustedRuntime):
        self.machine = machine
        self.runtime = runtime
        self._image_runtime_state = None

    def seal(self) -> None:
        """Capture the current machine + runtime state as this
        process's image; ``reset()`` rewinds to it.  ``load()`` seals
        every process once loading is complete."""
        self.machine.seal()
        self._image_runtime_state = self.runtime.snapshot_state()

    def reset(self) -> None:
        """Restore the sealed image — machine state (memory, caches,
        cycles, Stats, threads) and runtime state (channels, files,
        log, RNG, allocators) — without re-linking or re-loading."""
        if self._image_runtime_state is None:
            raise LoadError("process was never sealed; cannot reset")
        self.machine.reset()
        self.runtime.restore_state(self._image_runtime_state)

    def run(self, max_instructions: int = 500_000_000) -> int:
        registry = events.active()
        if registry is None:
            return self.machine.run(max_instructions)
        machine = self.machine
        start = machine.wall_cycles
        try:
            return machine.run(max_instructions)
        finally:
            # Record the execution span on the simulated-cycle clock and
            # snapshot the counters — also on faults, so a stopped attack
            # still shows up in the trace and metrics.
            registry.add_span(
                "machine.run",
                ts=start,
                dur=machine.wall_cycles - start,
                clock=events.CYCLES,
                cat="machine",
                config=machine.config.name,
            )
            machine.publish_metrics(registry)

    @property
    def wall_cycles(self) -> int:
        return self.machine.wall_cycles

    @property
    def stats(self):
        return self.machine.stats

    @property
    def stdout(self) -> list[str]:
        return self.runtime.stdout


def load(
    binary: Binary,
    runtime: TrustedRuntime | None = None,
    n_cores: int = 4,
    engine: str = "predecoded",
) -> Process:
    if runtime is None:
        runtime = TrustedRuntime()
    layout = binary.layout
    if layout is None:
        raise LoadError("binary has no layout (not linked?)")
    config = binary.config

    natives = runtime.natives_for(binary)
    machine = Machine(binary, natives, n_cores=n_cores, engine=engine)

    # 1. Map the usable regions (guard areas stay unmapped).
    machine.mem.map_range(layout.public.base, layout.public.end)
    if layout.private is not None:
        machine.mem.map_range(layout.private.base, layout.private.end)
    machine.mem.map_range(layout.t_region.base, layout.t_region.end)

    # 2. Globals: write initializers, then drop write permission on
    #    read-only data (strings, the externals table).
    for addr, data in binary.global_inits:
        machine.mem.write_bytes_unprotected(addr, data)
    for lo, hi in binary.read_only_ranges:
        machine.mem.protect_read_only(lo, hi)

    # 3. Architectural region state.
    if config.scheme == "seg":
        machine.fs_base = layout.public.base & ~0xFFFFFFFF
        machine.gs_base = (
            layout.private.base & ~0xFFFFFFFF
            if layout.private is not None
            else machine.fs_base
        )
    machine.bnd[0] = (layout.public.base, layout.public.end)
    if layout.private is None:
        machine.bnd[1] = machine.bnd[0]
    elif not config.split_stacks:
        # Measurement-only stack-merged configuration (OurMPX-Sep):
        # private data may sit on the public stack, so bnd1 spans both
        # regions (the unmapped guard between them still faults).
        machine.bnd[1] = (layout.public.base, layout.private.end)
    else:
        machine.bnd[1] = (layout.private.base, layout.private.end)

    # 4. Heaps.
    alloc_cls = RegionAllocator if config.custom_allocator else NativeAllocator
    pub_lo, pub_hi = layout.heap_range(False)
    runtime.pub_alloc = alloc_cls(pub_lo, pub_hi)
    if layout.private is not None:
        priv_lo, priv_hi = layout.heap_range(True)
        runtime.priv_alloc = alloc_cls(priv_lo, priv_hi)
    else:
        runtime.priv_alloc = runtime.pub_alloc
    runtime.machine = machine

    # 5. Main thread.
    thread = machine.spawn(binary.label_addrs[binary.entry], stack_slot=0)
    assert thread.tid == 0

    # 6. Seal the post-load image so Process.reset()/Machine.reset()
    #    can rewind to this exact state without re-linking.  Cheap:
    #    only the pages touched by global initializers are materialized
    #    at this point, and the snapshot copies nothing else.
    process = Process(machine, runtime)
    process.seal()
    return process
