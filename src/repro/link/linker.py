"""The linker: lays out code and globals, generates T-import stubs,
chooses the magic-sequence prefixes post-link, and patches everything.

Mirrors Section 6 of the paper:

* U functions are linked into one code space; each T import gets a stub
  that indirect-jumps through the ``externals`` table (a read-only
  public global the loader populates with T-wrapper addresses — here,
  NATIVE_BASE-range dispatch ids);
* globals are assigned to the public or private region according to
  their inferred taint; references are patched to absolute addresses;
* the 59-bit MCall/MRet prefixes are chosen *after* linking by drawing
  random values and scanning every instruction encoding for collisions
  ("we find these sequences by generating random bit sequences and
  checking for uniqueness");
* direct calls are statically checked: the call site's register taints
  must match the callee's entry taint bits.
"""

from __future__ import annotations

import random

from ..arith import MASK64
from ..backend import isa
from ..errors import LinkError
from ..ir.core import IRGlobal
from ..obs import events
from ..taint.lattice import PRIVATE, PUBLIC
from .layout import CODE_BASE, NATIVE_BASE, MemoryLayout, make_layout
from .objfile import Binary, UObject

EXTERNALS_SYMBOL = "__externals"


def link(
    objs: UObject | list[UObject] | tuple[UObject, ...],
    entry: str = "main",
    seed: int | None = None,
) -> Binary:
    """Link one U object, or several separately-compiled ones.

    Multi-object linking resolves *cross-object externals*: a function
    declared-but-undefined in one unit (``UObject.externals``) binds to
    its definition in another, with the declared taint signature
    checked against the definition's entry bits (the same static check
    direct calls get).  Function code is laid out in unit order, then
    per-unit definition order; trusted imports are deduplicated by name
    into one externals table.
    """
    if isinstance(objs, UObject):
        objs = [objs]
    obj = merge_objects(list(objs))
    with events.span("compile.link", config=obj.config.name):
        return _link(obj, entry, seed)


def merge_objects(objs: list[UObject]) -> UObject:
    """Merge separately-compiled units into one linkable object.

    Validates config consistency, symbol uniqueness, trusted-import
    signature agreement, and that every cross-object external resolves
    to a definition with matching taint bits.  A single fully-defined
    object passes through untouched (bit-identical single-unit links).
    """
    if not objs:
        raise LinkError("no objects to link")
    config = objs[0].config
    for other in objs[1:]:
        if other.config != config:
            raise LinkError(
                "config mismatch across objects: "
                f"{objs[0].name!r} built with {config.name}, "
                f"{other.name!r} with {other.config.name}"
            )
    if len(objs) == 1 and not objs[0].externals:
        return objs[0]

    functions = []
    defined: dict[str, int] = {}
    for obj in objs:
        for func in obj.functions:
            if func.name in defined:
                raise LinkError(
                    f"duplicate definition of {func.name!r} "
                    f"(defined in more than one object)"
                )
            defined[func.name] = func.entry_bits
            functions.append(func)

    globals_merged: dict[str, IRGlobal] = {}
    for obj in objs:
        for name, g in obj.globals.items():
            existing = globals_merged.get(name)
            if existing is not None:
                # Deduplicated read-only literals (e.g. identical string
                # constants emitted by two units) may merge; anything
                # else is a symbol clash.
                if (
                    existing.read_only
                    and g.read_only
                    and existing.init_bytes == g.init_bytes
                    and existing.size == g.size
                ):
                    continue
                raise LinkError(
                    f"duplicate global {name!r} "
                    "(defined in more than one object)"
                )
            globals_merged[name] = g

    imports: dict[str, object] = {}
    for obj in objs:
        for ext in obj.imports:
            existing = imports.get(ext.name)
            if existing is None:
                imports[ext.name] = ext
            elif (
                list(existing.arg_taints) != list(ext.arg_taints)
                or existing.ret_taint != ext.ret_taint
            ):
                raise LinkError(
                    f"trusted import {ext.name!r} declared with "
                    "conflicting taint signatures across objects"
                )

    for obj in objs:
        for ext in obj.externals:
            callee_bits = defined.get(ext.name)
            if callee_bits is None:
                raise LinkError(
                    f"unresolved external {ext.name!r} "
                    f"(declared in {obj.name!r}, defined in no linked object)"
                )
            declared_bits = isa.mcall_bits(
                [int(t) for t in ext.arg_taints],
                int(ext.ret_taint),
                len(ext.arg_taints),
            )
            if declared_bits != callee_bits:
                raise LinkError(
                    f"external {ext.name!r}: declaration in {obj.name!r} "
                    f"(bits={declared_bits:05b}) does not match the "
                    f"definition (bits={callee_bits:05b})"
                )

    events.counter("linker.objects").inc(len(objs))
    return UObject(
        name="+".join(obj.name for obj in objs),
        functions=functions,
        globals=globals_merged,
        imports=sorted(imports.values(), key=lambda e: e.name),
        config=config,
        externals=[],
    )


def _link(obj: UObject, entry: str, seed: int | None) -> Binary:
    config = obj.config
    function_names = {f.name for f in obj.functions}
    if entry not in function_names:
        raise LinkError(f"entry function {entry!r} not found")

    # ------------------------------------------------------------------
    # 1. Globals layout (two regions, then absolute addresses).
    split_memory = config.split_stacks or config.scheme is not None
    pub_offsets: dict[str, int] = {}
    priv_offsets: dict[str, int] = {}
    pub_size = 0
    priv_size = 0

    def place(offsets: dict[str, int], size: int, g: IRGlobal) -> int:
        align = max(g.align, 1)
        size = (size + align - 1) // align * align
        offsets[g.name] = size
        return size + g.size

    # The externals table comes first in the public region so its
    # address is a link-time constant.
    n_imports = len(obj.imports)
    externals_global = IRGlobal(
        name=EXTERNALS_SYMBOL,
        size=max(8 * n_imports, 8),
        align=8,
        taint=PUBLIC,
        read_only=True,
    )

    all_globals = {EXTERNALS_SYMBOL: externals_global}
    all_globals.update(obj.globals)
    for g in all_globals.values():
        if split_memory and g.taint is PRIVATE:
            priv_size = place(priv_offsets, priv_size, g)
        else:
            pub_size = place(pub_offsets, pub_size, g)

    layout = make_layout(config.scheme, split_memory, pub_size, priv_size)
    global_addrs: dict[str, int] = {}
    for name, off in pub_offsets.items():
        global_addrs[name] = layout.public.base + off
    for name, off in priv_offsets.items():
        assert layout.private is not None
        global_addrs[name] = layout.private.base + off
    externals_addr = global_addrs[EXTERNALS_SYMBOL]

    # ------------------------------------------------------------------
    # 2. Code layout.
    code: list[isa.Insn] = []
    label_addrs: dict[str, int] = {}
    func_magic_addrs: dict[str, int] = {}

    def append_stream(insns) -> None:
        pending_magic: int | None = None
        for insn in insns:
            if isinstance(insn, isa.Label):
                label_addrs[insn.name] = len(code)
                if pending_magic is not None:
                    func_magic_addrs[insn.name] = pending_magic
                    pending_magic = None
                continue
            if isinstance(insn, isa.MagicWord) and insn.kind == "call":
                pending_magic = len(code)
            code.append(insn)

    # Start thunk: call main, then halt.
    entry_fn = next(f for f in obj.functions if f.name == entry)
    start: list[isa.Insn] = [isa.Label("__start"), isa.CallD(entry)]
    start[-1].site_bits = entry_fn.entry_bits
    if config.cfi and not config.shadow_stack:
        start.append(isa.MagicWord("ret", isa.mret_bits(entry_fn.ret_taint)))
    start.append(isa.Halt())
    append_stream(start)

    # Thread-exit thunk: where spawned threads return to.  The MRet
    # magic lets CFI returns from thread entry functions succeed.
    append_stream(
        [
            isa.MagicWord("ret", 0),
            isa.Label("__texit0"),
            isa.Halt(),
        ]
    )

    # Variant for thread entries with a *private* return taint (the
    # all-private scenario).
    append_stream(
        [
            isa.MagicWord("ret", 1),
            isa.Label("__texit1"),
            isa.Halt(),
        ]
    )

    # T-callback return thunk (§8): U functions invoked *by T* return
    # here — "trusted wrappers in U that return to a fixed location in
    # T".  The Fail body never executes; T regains control the moment
    # the callback's CFI return lands on this address.
    append_stream(
        [
            isa.MagicWord("ret", 0),
            isa.Label("__tret0"),
            isa.Fail(),
        ]
    )

    for func in obj.functions:
        append_stream(func.insns)

    # Stubs for T imports: jmp [externals + 8*i].
    for index, ext in enumerate(obj.imports):
        append_stream(
            [
                isa.Label(f"stub.{ext.name}"),
                isa.JmpInd(isa.Mem(abs=externals_addr + 8 * index)),
            ]
        )

    # ------------------------------------------------------------------
    # 3. Resolve references.
    entry_bits_of: dict[str, int] = {f.name: f.entry_bits for f in obj.functions}
    for ext in obj.imports:
        entry_bits_of[f"stub.{ext.name}"] = isa.mcall_bits(
            [int(t) for t in ext.arg_taints],
            int(ext.ret_taint),
            len(ext.arg_taints),
        )

    for insn in code:
        if isinstance(insn, isa.JmpTable):
            try:
                insn.addrs = [label_addrs[t] for t in insn.targets]
            except KeyError as missing:
                raise LinkError(f"unresolved jump-table target {missing}")
        if isinstance(insn, (isa.Jmp, isa.Br, isa.CallD)):
            if insn.target not in label_addrs:
                raise LinkError(f"unresolved label {insn.target!r}")
            insn.addr = label_addrs[insn.target]
        if isinstance(insn, isa.CallD):
            callee_bits = entry_bits_of.get(insn.target)
            if callee_bits is None:
                target_fn = insn.target
                raise LinkError(f"call to unknown function {target_fn!r}")
            if not _bits_compatible(insn.site_bits, callee_bits):
                raise LinkError(
                    f"direct-call taint mismatch calling {insn.target}: "
                    f"site={insn.site_bits:05b} callee={callee_bits:05b}"
                )
        if isinstance(insn, isa.MovFuncAddr):
            if insn.func not in label_addrs:
                raise LinkError(f"address of unknown function {insn.func!r}")
            if config.cfi and not config.shadow_stack:
                insn.value = CODE_BASE + func_magic_addrs[insn.func]
            else:
                insn.value = CODE_BASE + label_addrs[insn.func]
        mem = getattr(insn, "mem", None)
        if mem is not None and mem.global_name is not None:
            if mem.global_name not in global_addrs:
                raise LinkError(f"unresolved global {mem.global_name!r}")
            mem.abs = global_addrs[mem.global_name]

    # ------------------------------------------------------------------
    # 4. Choose magic prefixes and patch magic words / checks.
    rng = random.Random(seed if seed is not None else 0xC0FFEE)
    mcall_prefix, mret_prefix = _choose_prefixes(code, rng)
    for insn in code:
        if isinstance(insn, isa.MagicWord):
            prefix = mcall_prefix if insn.kind == "call" else mret_prefix
            insn.value = ((prefix << 5) | insn.taint_bits) & MASK64
        elif isinstance(insn, isa.CheckMagic):
            prefix = mcall_prefix if insn.kind == "call" else mret_prefix
            expected = ((prefix << 5) | insn.taint_bits) & MASK64
            insn.inv_value = ~expected & MASK64

    # ------------------------------------------------------------------
    # 5. Global initializers.
    global_inits: list[tuple[int, bytes]] = []
    for name, g in all_globals.items():
        if g.init_bytes is not None:
            global_inits.append((global_addrs[name], g.init_bytes))
    table_bytes = b"".join(
        (NATIVE_BASE + i).to_bytes(8, "little") for i in range(n_imports)
    )
    if table_bytes:
        global_inits.append((externals_addr, table_bytes))

    binary = Binary(
        code=code,
        label_addrs=label_addrs,
        func_magic_addrs=func_magic_addrs,
        global_addrs=global_addrs,
        global_inits=global_inits,
        imports=list(obj.imports),
        externals_table_addr=externals_addr,
        entry="__start",
        config=config,
        mcall_prefix=mcall_prefix,
        mret_prefix=mret_prefix,
        function_order=[f.name for f in obj.functions],
    )
    binary.layout = layout
    binary.read_only_ranges = _read_only_ranges(all_globals, global_addrs)
    # Classify every instrumentation check site into the binary's
    # symbol info (after magic patching, so the map covers final code).
    binary.check_sites = {
        addr: kind
        for addr, insn in enumerate(code)
        if (kind := isa.check_kind(insn)) is not None
    }
    events.counter("linker.code_words").inc(len(code))
    events.counter("linker.check_sites").inc(len(binary.check_sites))
    events.counter("linker.stubs").inc(n_imports)
    events.counter("linker.globals", region="pub").inc(len(pub_offsets))
    events.counter("linker.globals", region="priv").inc(len(priv_offsets))
    return binary


def _bits_compatible(site_bits: int, callee_bits: int) -> bool:
    """Site register taints must be ⊑ the callee's expectations bit-wise
    for arguments (a public register may flow into a private-expecting
    slot, never the reverse) and the return bit must match exactly."""
    for i in range(4):
        site = (site_bits >> i) & 1
        callee = (callee_bits >> i) & 1
        if site > callee:
            return False
    return (site_bits >> 4) == (callee_bits >> 4)


def _choose_prefixes(code, rng) -> tuple[int, int]:
    encodings = {
        insn.encoding() >> 5
        for insn in code
        if not isinstance(insn, isa.MagicWord)
    }
    for _ in range(64):
        # Each draw rescans every instruction encoding for collisions
        # with the candidate prefixes; normally one scan suffices.
        events.counter("linker.magic_rescans").inc()
        mcall = rng.getrandbits(59)
        mret = rng.getrandbits(59)
        if mcall == mret:
            continue
        if mcall in encodings or mret in encodings:
            continue
        return mcall, mret
    raise LinkError("could not find unique magic prefixes")  # pragma: no cover


def _read_only_ranges(all_globals, global_addrs):
    ranges = []
    for name, g in all_globals.items():
        if g.read_only:
            ranges.append((global_addrs[name], global_addrs[name] + g.size))
    return ranges
