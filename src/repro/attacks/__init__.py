"""Section 7.6 vulnerability-injection experiments."""

from .vulns import (
    ALL_ATTACKS,
    MINIZIP_DIRECT_SRC,
    AttackOutcome,
    run_all_attacks,
    run_format_string_attack,
    run_minizip_attack,
    run_mongoose_attack,
    run_rop_attack,
)

__all__ = [
    "ALL_ATTACKS",
    "AttackOutcome",
    "run_all_attacks",
    "run_mongoose_attack",
    "run_minizip_attack",
    "run_format_string_attack",
    "run_rop_attack",
    "MINIZIP_DIRECT_SRC",
]
