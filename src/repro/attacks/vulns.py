"""The three injected vulnerabilities of Section 7.6.

Each attack comes as (vulnerable MiniC source, exploit driver).  The
drivers run the exploit against a configuration and report whether
private data leaked — reproducing the paper's result that the ``Base``
build leaks and every full-ConfLLVM build does not.

1. **Mongoose stale-stack leak** — a buffer-bounds bug in the
   plain-file path sends stale stack memory.  A first request makes
   the server stage a private file on the stack; a second request
   over-reads.  ConfLLVM stops it because the private file only ever
   touched the *private* stack, and the over-read is physically
   confined to the public region.

2. **Minizip password-to-log leak** — the encryption password is
   written to a log file.  The direct version is caught statically by
   qualifier inference; after pointer-cast laundering (which makes the
   leak statically invisible), the dynamic checks stop it.

3. **printf format string** — a variadic ``mini_sprintf`` with an
   attacker-controlled format reads extra "arguments" from the stack.
   The variadic area is on the public stack, so the over-read can only
   produce public bytes under ConfLLVM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler import compile_and_load
from ..config import BuildConfig
from ..errors import MachineFault
from ..runtime.trusted import T_PROTOTYPES, TrustedRuntime
from ..apps.libmini import LIBMINI

SECRET_FILE = b"TOPSECRET-data-0123456789abcdef!" * 8  # 256 bytes
SECRET_MARKER = b"TOPSECRET"
PASSWORD = b"hunter2!"


@dataclass
class AttackOutcome:
    """What happened when the exploit ran — machine-readable.

    ``attack``/``config`` name the experiment cell, so a list of
    outcomes (see :func:`run_all_attacks`) serializes straight into the
    paper's Section 7.6 table without re-deriving context from the
    call site.
    """

    leaked: bool
    faulted: bool
    fault_kind: str | None
    output: bytes
    attack: str = ""
    config: str = ""

    @property
    def stopped(self) -> bool:
        """The defense held: no private bytes reached the attacker."""
        return not self.leaked

    def to_dict(self) -> dict:
        """JSON-safe record (output hex-encoded and truncated)."""
        return {
            "attack": self.attack,
            "config": self.config,
            "leaked": self.leaked,
            "stopped": self.stopped,
            "faulted": self.faulted,
            "fault_kind": self.fault_kind,
            "output_hex": self.output[:64].hex(),
            "output_len": len(self.output),
        }


# ---------------------------------------------------------------------------
# 1. Mongoose: stale stack data via buffer over-read

MONGOOSE_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
char req[32];
int g_served = 0;

// Serve an encrypted private file: contents live in a private stack
// buffer and leave only through ssl_send.
void serve_private_file() {
    private char uri[16];
    for (int i = 0; i < 8; i++) { uri[i] = (private char)req[4 + i]; }
    uri[8] = 0;
    private char fbuf[256];
    int n = serve_file(uri, fbuf, 256);
    if (n > 0) { ssl_send(1, fbuf, n); }
}

// Serve a canned public page -- with an injected bounds bug: the
// attacker controls how far *below* the page buffer the copy starts.
// The output buffer is global so this frame is shallow and the
// over-read window overlaps the previous handler's (deeper) frame.
char out_page[1024];

void serve_public_page(int back) {
    char page[16];
    for (int i = 0; i < 16; i++) { page[i] = (char)('A' + i); }
    int o = 0;
    // VULNERABILITY: back > 0 starts the copy before page[0], leaking
    // stale stack bytes from deeper (previously used) frames.
    for (int i = 0 - back; i < 16; i++) {
        out_page[o] = page[i];
        o++;
    }
    send(1, out_page, o);
}

int main() {
    while (1) {
        int got = recv(0, req, 32);
        if (got < 32) { break; }
        if (req[0] == 'Q') { break; }
        if (req[0] == 'P') { serve_private_file(); }
        if (req[0] == 'X') {
            int *amount = (int*)(req + 16);
            serve_public_page(*amount);
        }
        g_served++;
    }
    return g_served;
}
"""
)


def run_mongoose_attack(config: BuildConfig, overread: int = 400) -> AttackOutcome:
    runtime = TrustedRuntime()
    runtime.add_file("secret00", SECRET_FILE)
    # Request 1: private file (stages secret bytes on the stack).
    req1 = b"P   secret00".ljust(32, b"\x00")
    # Request 2: public page with the over-read exploit.
    req2 = bytearray(b"X".ljust(16, b"\x00"))
    req2 += overread.to_bytes(8, "little") + b"\x00" * 8
    quit_req = b"Q".ljust(32, b"\x00")
    runtime.channel(0).feed(req1 + bytes(req2) + quit_req)
    process = compile_and_load(MONGOOSE_SRC, config, runtime=runtime)
    faulted = False
    kind = None
    try:
        process.run()
    except MachineFault as fault:
        faulted = True
        kind = fault.kind
    leaked_bytes = runtime.channel(1).drain_out()
    return AttackOutcome(
        leaked=SECRET_MARKER in leaked_bytes,
        faulted=faulted,
        fault_kind=kind,
        output=leaked_bytes,
        attack="mongoose-stale-stack",
        config=config.name,
    )


# ---------------------------------------------------------------------------
# 2. Minizip: explicit password leak to the log, hidden behind casts

MINIZIP_DIRECT_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
void do_compress(char *name, private char *password) {
    // BUG: logs the cleartext password.
    log_write(password, 8);
}
int main() {
    private char pw[16];
    read_passwd("user", pw, 16);
    do_compress("archive", pw);
    return 0;
}
"""
)

MINIZIP_CASTED_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
void do_compress(char *name, private char *password) {
    // The same bug laundered through casts: statically invisible.
    int addr = (int)password;
    char *laundered = (char*)addr;
    log_write(laundered, 8);
}
int main() {
    private char pw[16];
    read_passwd("user", pw, 16);
    do_compress("archive", pw);
    return 0;
}
"""
)


def run_minizip_attack(config: BuildConfig) -> AttackOutcome:
    runtime = TrustedRuntime()
    runtime.set_password("user", PASSWORD)
    process = compile_and_load(MINIZIP_CASTED_SRC, config, runtime=runtime)
    faulted = False
    kind = None
    try:
        process.run()
    except MachineFault as fault:
        faulted = True
        kind = fault.kind
    log = bytes(runtime.log)
    return AttackOutcome(
        leaked=PASSWORD[:8] in log,
        faulted=faulted,
        fault_kind=kind,
        output=log,
        attack="minizip-cast-leak",
        config=config.name,
    )


# ---------------------------------------------------------------------------
# 3. Format string: %d-laddered stack dump through a variadic function

FORMAT_STRING_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
char fmt[64];
char msg[256];

int main() {
    private char key[32];
    read_passwd("admin", key, 32);
    // Attacker-supplied format string arrives over the network.
    recv(0, fmt, 64);
    // VULNERABILITY: fmt is used with no arguments; every directive
    // reads a stale slot from the (public) variadic stack area.
    mini_sprintf(msg, fmt);
    send(1, msg, mini_strlen(msg));
    return 0;
}
"""
)


def run_format_string_attack(config: BuildConfig) -> AttackOutcome:
    runtime = TrustedRuntime()
    runtime.set_password("admin", PASSWORD + b"FORMATSECRET")
    fmt = b"%x.%x.%x.%x.%x.%x.%x.%x.%x.%x.%x.%x"
    runtime.channel(0).feed(fmt.ljust(64, b"\x00"))
    process = compile_and_load(FORMAT_STRING_SRC, config, runtime=runtime)
    faulted = False
    kind = None
    try:
        process.run()
    except MachineFault as fault:
        faulted = True
        kind = fault.kind
    dumped = runtime.channel(1).drain_out()
    # Only the first 16 bytes are distinctive secret content; zero
    # padding words would false-positive against any '0' in the dump.
    secret = PASSWORD + b"FORMATSECRET"
    secret_words = {
        b"%x" % int.from_bytes(secret[i : i + 8], "little")
        for i in range(0, 16, 8)
    }
    leaked = any(w in dumped for w in secret_words)
    return AttackOutcome(
        leaked=leaked,
        faulted=faulted,
        fault_kind=kind,
        output=dumped,
        attack="format-string",
        config=config.name,
    )


# ---------------------------------------------------------------------------
# 4. Control-flow hijack: return-address overwrite (ROP-style)

ROP_SRC = (
    T_PROTOTYPES
    + LIBMINI
    + r"""
// A privileged routine the attacker wants to reach without
// authorization: it declassifies and transmits the secret.
void grant_access() {
    private char secret[16];
    read_passwd("vault", secret, 16);
    char out[16];
    encrypt(secret, out, 16);
    // The exploit goal is reaching this send of the *decrypted* value:
    // simulate the insider path by sending the raw key through the
    // log channel, which only this function may do after authz.
    log_write("ACCESS-GRANTED", 14);
    send(1, out, 16);
}

void handle(int idx, int value) {
    int scratch[4];
    // VULNERABILITY: attacker-controlled index writes beyond the
    // array — with idx aimed at the saved return address, this is the
    // classic stack-smash -> control-flow hijack.
    scratch[idx] = value;
}

int main() {
    char req[24];
    recv(0, req, 24);
    int *idx_field = (int*)req;
    int *val_field = (int*)(req + 8);
    handle(*idx_field, *val_field);
    return 0;
}
"""
)


def run_rop_attack(config: BuildConfig) -> AttackOutcome:
    """Overwrite handle()'s return address with grant_access's entry.

    The paper's taint-aware CFI stops this: the return check requires
    an MRet magic word at the target, and a procedure entry carries
    MCall — so diverting a return to a function entry faults.
    """
    from ..compiler import compile_source
    from ..link.layout import CODE_BASE
    from ..link.loader import load

    binary = compile_source(ROP_SRC, config)
    # The attacker learned grant_access's address (info leak assumed).
    target = CODE_BASE + binary.label_addrs["grant_access"]
    # handle's frame: scratch at offset 0; the saved return address
    # sits just above the frame: scratch[frame_size/8] (no saved
    # callee-saves in this tiny leaf).  Scan plausible slots.
    outcome = None
    for slot in range(2, 10):
        rt = TrustedRuntime()
        rt.set_password("vault", PASSWORD)
        req = slot.to_bytes(8, "little") + (target).to_bytes(8, "little")
        rt.channel(0).feed(req.ljust(24, b"\x00"))
        process = load(compile_source(ROP_SRC, config), runtime=rt)
        faulted = False
        kind = None
        try:
            process.run(max_instructions=5_000_000)
        except MachineFault as fault:
            faulted = True
            kind = fault.kind
        hijacked = b"ACCESS-GRANTED" in bytes(rt.log)
        outcome = AttackOutcome(
            leaked=hijacked,
            faulted=faulted,
            fault_kind=kind,
            output=rt.channel(1).drain_out(),
            attack="rop-return-hijack",
            config=config.name,
        )
        if hijacked:
            return outcome
        if faulted and kind == "cfi-check-failed":
            return outcome
    return outcome


ALL_ATTACKS = {
    "mongoose-stale-stack": run_mongoose_attack,
    "minizip-cast-leak": run_minizip_attack,
    "format-string": run_format_string_attack,
    "rop-return-hijack": run_rop_attack,
}


def run_all_attacks(configs) -> list[AttackOutcome]:
    """Run every Section 7.6 attack against every given config.

    Returns one :class:`AttackOutcome` per (attack, config) cell, in a
    stable order, each carrying its own ``attack``/``config`` labels —
    ``[o.to_dict() for o in run_all_attacks(...)]`` is the paper table.
    """
    outcomes = []
    for name, runner in ALL_ATTACKS.items():
        for config in configs:
            outcome = runner(config)
            # Belt and braces: the runners stamp these themselves, but
            # a forgotten label would silently corrupt the table.
            assert outcome.attack == name and outcome.config == config.name
            outcomes.append(outcome)
    return outcomes
