"""Taint-preserving IR optimization passes.

ConfLLVM runs the standard LLVM pipeline but must disable passes that
do not preserve its taint metadata (Section 5.1: "We disable the
remaining optimizations in our prototype").  We model this with a
supported set that every configuration runs, plus "unsupported" passes
(currently local CSE) that only the vanilla ``Base`` pipeline runs.
The OurBare-vs-Base gap in Figure 5 partly comes from exactly this.

All passes here preserve the taint invariants: they never change the
taint of a virtual register or the region of a memory access; they only
remove or replace instructions whose results are provably equivalent.

Each pass accepts an optional ``witness`` (a
:class:`repro.opt.witness.Witness`): when present, the pass records one
obligation per rewrite — the claims the independent translation checker
(:func:`repro.opt.witness.check_witness`) re-derives from the pre/post
IR before the pipeline commits the rewrite.  Passing ``witness=None``
runs the pass uncertified (direct unit-test use).
"""

from __future__ import annotations

from ..arith import eval_bin, eval_un
from ..errors import MachineFault
from ..ir.core import (
    Bin,
    Block,
    Branch,
    Call,
    CallIndirect,
    Const,
    Copy,
    IRFunction,
    IRModule,
    Jump,
    Lea,
    Load,
    MemRef,
    Ret,
    Store,
    SwitchBr,
    Un,
    VarArgAddr,
    VReg,
)

# ---------------------------------------------------------------------------
# Slot promotion (mem2reg-lite)


def promote_slots(func: IRFunction, witness=None) -> bool:
    """Turn non-address-taken scalar frame slots into virtual registers.

    Promoted registers are zero-initialized at entry so that reads of
    uninitialized locals (undefined behaviour in C) read a defined zero
    instead of tripping the IR verifier.
    """
    promotable = {
        slot.uid: slot
        for slot in func.slots
        if not slot.address_taken and slot.size in (1, 8)
    }
    if not promotable:
        return False
    # A slot is only promotable if every reference is a whole-slot
    # direct Load/Store (no index, no displacement, matching size).
    for block in func.blocks:
        for instr in block.instrs:
            mems: list[tuple[MemRef, int]] = []
            if isinstance(instr, Load):
                mems.append((instr.mem, instr.size))
            elif isinstance(instr, Store):
                mems.append((instr.mem, instr.size))
            elif isinstance(instr, Lea):
                if instr.mem.slot is not None:
                    promotable.pop(instr.mem.slot.uid, None)
                continue
            for mem, size in mems:
                if mem.slot is None:
                    continue
                clean = (
                    mem.index is None
                    and mem.disp == 0
                    and size == mem.slot.size
                )
                if not clean:
                    promotable.pop(mem.slot.uid, None)
    if not promotable:
        return False
    regs = {
        uid: func.new_vreg(slot.taint, f"p.{slot.name}")
        for uid, slot in promotable.items()
    }
    if witness is not None:
        for uid, slot in promotable.items():
            witness.add(
                "layout", f"slot:{uid}", "promoted", regs[uid].id,
                int(slot.taint),
            )
    for block in func.blocks:
        new_instrs = []
        for i, instr in enumerate(block.instrs):
            if isinstance(instr, Load) and instr.mem.slot is not None:
                reg = regs.get(instr.mem.slot.uid)
                if reg is not None:
                    if witness is not None:
                        witness.add(
                            "layout", f"{block.name}@{i}",
                            "slot-access", instr.mem.slot.uid, reg.id,
                        )
                    new_instrs.append(Copy(instr.dst, reg))
                    continue
            if isinstance(instr, Store) and instr.mem.slot is not None:
                reg = regs.get(instr.mem.slot.uid)
                if reg is not None:
                    if witness is not None:
                        witness.add(
                            "layout", f"{block.name}@{i}",
                            "slot-access", instr.mem.slot.uid, reg.id,
                        )
                    new_instrs.append(Copy(reg, instr.src))
                    continue
            new_instrs.append(instr)
        block.instrs = new_instrs
    entry = func.blocks[0]
    inits = [Const(reg, 0) for reg in regs.values()]
    entry.instrs[:0] = inits
    if witness is not None:
        witness.add(
            "taint", f"{entry.name}@init", "zero-init",
            tuple(reg.id for reg in regs.values()),
        )
    func.slots = [s for s in func.slots if s.uid not in promotable]
    return True


# ---------------------------------------------------------------------------
# Block-local copy propagation and constant folding


def _subst(operand, env):
    if isinstance(operand, VReg) and operand.id in env:
        return env[operand.id]
    return operand


def _def_taints(instr) -> tuple:
    return tuple(int(v.taint) for v in instr.defs())


def copyprop_and_fold(func: IRFunction, witness=None) -> bool:
    """Forward-propagate copies/constants within each block and fold
    constant expressions.  Taints are preserved: a propagated value is
    only substituted into positions whose taint the original register
    already had or exceeded (substitution never changes instruction
    taints, only operand identity)."""
    changed = False
    for block in func.blocks:
        env: dict[int, object] = {}  # vreg id -> replacement Operand
        new_instrs = []

        def note(i, old, new, block=block):
            if witness is not None and new != old:
                witness.add(
                    "taint", f"{block.name}@{i}", "rewrite",
                    _def_taints(old), _def_taints(new),
                )

        for i, original in enumerate(block.instrs):
            instr = _rewrite_uses(original, env)
            # Kill mappings for anything this instruction redefines.
            for d in instr.defs():
                env.pop(d.id, None)
                for key, val in list(env.items()):
                    if isinstance(val, VReg) and val.id == d.id:
                        del env[key]
            if isinstance(instr, Const):
                env[instr.dst.id] = instr.value
            elif isinstance(instr, Copy):
                if isinstance(instr.src, int):
                    env[instr.dst.id] = instr.src
                elif instr.src.taint == instr.dst.taint:
                    env[instr.dst.id] = instr.src
            elif isinstance(instr, Bin):
                if isinstance(instr.a, int) and isinstance(instr.b, int):
                    try:
                        value = eval_bin(instr.op, instr.a, instr.b)
                    except MachineFault:
                        value = None
                    if value is not None:
                        folded = Const(instr.dst, value)
                        note(i, original, folded)
                        new_instrs.append(folded)
                        env[instr.dst.id] = value
                        changed = True
                        continue
            elif isinstance(instr, Un):
                if isinstance(instr.src, int):
                    value = eval_un(instr.op, instr.src)
                    folded = Const(instr.dst, value)
                    note(i, original, folded)
                    new_instrs.append(folded)
                    env[instr.dst.id] = value
                    changed = True
                    continue
            note(i, original, instr)
            new_instrs.append(instr)
        if new_instrs != block.instrs:
            changed = True
        block.instrs = new_instrs
    return changed


def _rewrite_mem(mem: MemRef, env) -> MemRef:
    base = _subst(mem.base, env) if mem.base is not None else None
    index = _subst(mem.index, env) if mem.index is not None else None
    disp = mem.disp
    # Fold constant index registers into the displacement.
    if isinstance(index, int):
        disp += index * mem.scale
        index = None
    if isinstance(base, int):
        # An absolute base is unusual; keep the original register.
        base = mem.base
    if base is mem.base and index is mem.index and disp == mem.disp:
        return mem
    return MemRef(
        region=mem.region,
        base=base,
        slot=mem.slot,
        global_name=mem.global_name,
        index=index,
        scale=mem.scale,
        disp=disp,
    )


def _rewrite_uses(instr, env):
    if isinstance(instr, Copy):
        return Copy(instr.dst, _subst(instr.src, env))
    if isinstance(instr, Un):
        return Un(instr.op, instr.dst, _subst(instr.src, env))
    if isinstance(instr, Bin):
        return Bin(instr.op, instr.dst, _subst(instr.a, env), _subst(instr.b, env))
    if isinstance(instr, Load):
        return Load(instr.dst, _rewrite_mem(instr.mem, env), instr.size)
    if isinstance(instr, Store):
        return Store(
            _rewrite_mem(instr.mem, env), _subst(instr.src, env), instr.size
        )
    if isinstance(instr, Lea):
        return Lea(instr.dst, _rewrite_mem(instr.mem, env))
    if isinstance(instr, Call):
        return Call(
            instr.dst,
            instr.name,
            [_subst(a, env) for a in instr.args],
            instr.arg_taints,
            instr.ret_taint,
            instr.n_fixed,
        )
    if isinstance(instr, CallIndirect):
        target = _subst(instr.target, env)
        if isinstance(target, int):
            target = instr.target
        return CallIndirect(
            instr.dst,
            target,
            [_subst(a, env) for a in instr.args],
            instr.arg_taints,
            instr.ret_taint,
            instr.n_fixed,
        )
    if isinstance(instr, VarArgAddr):
        return VarArgAddr(instr.dst, _subst(instr.index, env))
    if isinstance(instr, Branch):
        cond = _subst(instr.cond, env)
        if isinstance(cond, int):
            return Jump(instr.if_true if cond != 0 else instr.if_false)
        return Branch(cond, instr.if_true, instr.if_false)
    if isinstance(instr, SwitchBr):
        cond = _subst(instr.cond, env)
        if isinstance(cond, int):
            from ..arith import wrap

            for value, target in instr.table:
                if wrap(value) == wrap(cond):
                    return Jump(target)
            return Jump(instr.default)
        return SwitchBr(cond, instr.table, instr.default)
    if isinstance(instr, Ret):
        if instr.value is not None:
            return Ret(_subst(instr.value, env))
        return instr
    return instr


# ---------------------------------------------------------------------------
# Dead code elimination


_PURE = (Const, Copy, Bin, Un, Lea, Load, VarArgAddr)


def dce(func: IRFunction, witness=None) -> bool:
    """Remove pure instructions whose results are never used."""
    changed = False
    # Witness sites key deletions by *pre-pass* index, so track each
    # surviving instruction's original position across rounds.
    orig = {b.name: list(range(len(b.instrs))) for b in func.blocks}
    while True:
        used: set[int] = set()
        for block in func.blocks:
            for instr in block.instrs:
                for use in instr.uses():
                    used.add(use.id)
        removed = False
        for block in func.blocks:
            kept = []
            kept_orig = []
            for pos, instr in enumerate(block.instrs):
                if (
                    isinstance(instr, _PURE)
                    and not instr.is_terminator
                    and instr.defs()
                    and all(d.id not in used for d in instr.defs())
                ):
                    removed = True
                    if witness is not None:
                        witness.add(
                            "layout",
                            f"{block.name}@{orig[block.name][pos]}",
                            "dead", tuple(d.id for d in instr.defs()),
                        )
                    continue
                kept.append(instr)
                kept_orig.append(orig[block.name][pos])
            block.instrs = kept
            orig[block.name] = kept_orig
        if not removed:
            return changed
        changed = True


# ---------------------------------------------------------------------------
# CFG simplification


def simplify_cfg(func: IRFunction, witness=None) -> bool:
    changed = False
    threaded: list[str] = []  # blocks whose terminator was rewritten
    # 1. Thread jumps to blocks that only contain a single Jump.
    block_map = func.block_map()
    forward: dict[str, str] = {}
    for block in func.blocks:
        if len(block.instrs) == 1 and isinstance(block.instrs[0], Jump):
            forward[block.name] = block.instrs[0].target

    def resolve(name: str) -> str:
        seen = set()
        while name in forward and name not in seen:
            seen.add(name)
            name = forward[name]
        return name

    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            target = resolve(term.target)
            if target != term.target:
                block.instrs[-1] = Jump(target)
                threaded.append(block.name)
                changed = True
        elif isinstance(term, Branch):
            t = resolve(term.if_true)
            f = resolve(term.if_false)
            if t == f:
                block.instrs[-1] = Jump(t)
                threaded.append(block.name)
                changed = True
            elif t != term.if_true or f != term.if_false:
                block.instrs[-1] = Branch(term.cond, t, f)
                threaded.append(block.name)
                changed = True

    # 2. Remove unreachable blocks.
    reachable: set[str] = set()
    stack = [func.blocks[0].name]
    block_map = func.block_map()
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        stack.extend(block_map[name].successors())
    if len(reachable) != len(func.blocks):
        if witness is not None:
            for block in func.blocks:
                if block.name not in reachable:
                    witness.add(
                        "layout", f"block:{block.name}", "unreachable"
                    )
        func.blocks = [b for b in func.blocks if b.name in reachable]
        changed = True

    # 3. Merge straight-line pairs (single successor with single pred).
    preds: dict[str, list[str]] = {b.name: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block.name)
    block_map = func.block_map()
    merged: set[str] = set()
    for block in func.blocks:
        if block.name in merged:
            continue
        while True:
            term = block.terminator
            if not isinstance(term, Jump):
                break
            succ_name = term.target
            if succ_name == block.name or len(preds[succ_name]) != 1:
                break
            succ = block_map[succ_name]
            if succ is func.blocks[0]:
                break
            block.instrs = block.instrs[:-1] + succ.instrs
            merged.add(succ_name)
            if witness is not None:
                witness.add(
                    "layout", f"block:{succ_name}", "merged", block.name
                )
            preds.pop(succ_name, None)
            for name, plist in preds.items():
                preds[name] = [
                    block.name if p == succ_name else p for p in plist
                ]
            changed = True
    if merged:
        func.blocks = [b for b in func.blocks if b.name not in merged]
    if witness is not None:
        # Threaded terminators of blocks that did not survive the run
        # (removed as unreachable or absorbed by a merge) need no
        # obligation — the blocks' own removal claims cover them.
        survivors = {b.name for b in func.blocks}
        for name in threaded:
            if name in survivors:
                witness.add("taint", f"{name}@term", "thread")
    return changed


# ---------------------------------------------------------------------------
# Local common-subexpression elimination (vanilla-only pass)


def cse_local(func: IRFunction, witness=None) -> bool:
    """Block-local CSE over pure register computations.

    This pass models the optimizations ConfLLVM *disables* ("we chose to
    modify only the most important ones ... we disable the remaining
    optimizations"): only the vanilla Base pipeline runs it.
    """
    changed = False
    for block in func.blocks:
        available: dict[tuple, VReg] = {}
        new_instrs = []
        for i, instr in enumerate(block.instrs):
            key = None
            if isinstance(instr, Bin):
                key = ("bin", instr.op, _okey(instr.a), _okey(instr.b))
            elif isinstance(instr, Un):
                key = ("un", instr.op, _okey(instr.src))
            replaced = False
            if key is not None:
                prev = available.get(key)
                if prev is not None and prev.taint == instr.defs()[0].taint:
                    if witness is not None:
                        witness.add(
                            "taint", f"{block.name}@{i}", "cse",
                            prev.id, instr.defs()[0].id,
                        )
                    new_instrs.append(Copy(instr.defs()[0], prev))
                    changed = True
                    replaced = True
            # Invalidate entries that read or hold any redefined reg...
            for d in instr.defs():
                stale = [
                    k
                    for k, v in available.items()
                    if v.id == d.id or _key_uses(k, d.id)
                ]
                for k in stale:
                    del available[k]
            if isinstance(instr, (Call, CallIndirect)):
                available.clear()
            if replaced:
                continue
            # ...then record this computation as available.
            if key is not None:
                available[key] = instr.defs()[0]
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def _okey(operand):
    if isinstance(operand, VReg):
        return ("r", operand.id)
    return ("i", operand)


def _key_uses(key: tuple, vreg_id: int) -> bool:
    return any(
        isinstance(part, tuple) and part == ("r", vreg_id) for part in key
    )
