"""Post-codegen check optimizer (the ``--checkopt=aggressive`` tier).

Runs between codegen and linking, on each function's pre-link ISA
stream.  Three transforms, each *verifier-legal by construction* — they
only rewrite within the extended basic block (no Label / branch / call
in between), mirroring exactly the evidence rules ConfVerify's
``_flow_block`` applies, so ``verify_binary`` and
``verify_check_sites`` accept the optimized binary unchanged:

* **redundant-check elision** — delete a ``BndChk`` whose key is
  already available: an earlier surviving check in the same extended
  block established an equal or covering key, and no instruction in
  between redefines the key's registers (available-check dataflow, the
  same invalidation rule the verifier applies);
* **lea rematerialization dedup** — delete the second of two identical
  global-address ``Lea``s into the same register when nothing between
  them redefines that register.  The machine state is unchanged (the
  register already holds that address) and the verifier still sees the
  register defined public by the first lea; deleting the
  rematerialization *extends check lifetimes*, turning the checks that
  followed it into redundant checks for the elision above;
* **check widening** — rewrite a memory-form ``BndChk`` (no index,
  displacement within the verifier's ±1 MiB ``ELIDE_LIMIT``) into the
  cheaper register form.  The linker's guard pages (``GUARD_SIZE``)
  give the bounds the same slack the verifier's elision rule assumes,
  and the register key covers strictly more later accesses.

Like the IR passes, every rewrite is certified: the optimizer emits a
:class:`CheckOptWitness` whose edits :func:`check_checkopt_witness`
replays against the pre/post streams — re-deriving provider coverage,
register liveness, and block boundaries from the pre-stream itself.  A
failed witness keeps the function's original (unoptimized, still
verified) stream and bumps ``opt.witness_rejected``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..backend import isa
from ..obs import events
from .witness import WitnessError

#: Mirrors the verifier's elidable-displacement window (verify.py).
ELIDE_LIMIT = 1 << 20

#: Instructions that end an extended basic block for check evidence:
#: labels (potential join points), control transfers, and calls (the
#: verifier clears its ``checked`` set at all of these, and calls may
#: clobber caller-save registers at runtime).
_BOUNDARY = (
    isa.Label,
    isa.Jmp,
    isa.Br,
    isa.JmpTable,
    isa.JmpInd,
    isa.JmpReg,
    isa.CallD,
    isa.CallI,
    isa.CheckMagic,
    isa.RetPlain,
    isa.Fail,
    isa.Halt,
)


def _defined_regs(insn) -> tuple[int, ...]:
    """Registers an instruction writes — the verifier's ``define`` sites."""
    if isinstance(
        insn,
        (
            isa.MovRI,
            isa.MovRR,
            isa.MovFuncAddr,
            isa.Alu,
            isa.SetCC,
            isa.Lea,
            isa.Load,
            isa.Pop,
            isa.TlsBase,
        ),
    ):
        return (insn.dst,)
    return ()


def _check_key(chk: isa.BndChk) -> tuple:
    if chk.mem is not None:
        return (
            "mem",
            chk.mem.base,
            chk.mem.index,
            chk.mem.scale,
            chk.mem.disp,
            chk.bnd,
        )
    return ("reg", chk.reg, chk.bnd)


def _key_regs(key: tuple) -> tuple:
    if key[0] == "mem":
        return tuple(r for r in (key[1], key[2]) if r is not None)
    return (key[1],)


def _widenable(chk: isa.BndChk) -> bool:
    return (
        chk.mem is not None
        and chk.mem.base is not None
        and chk.mem.index is None
        and chk.mem.abs is None
        and chk.mem.global_name is None
        and abs(chk.mem.disp) < ELIDE_LIMIT
    )


def _widen(chk: isa.BndChk) -> isa.BndChk:
    return isa.BndChk(chk.bnd, reg=chk.mem.base)


def _covers(provider_key: tuple, key: tuple) -> bool:
    """Does evidence ``provider_key`` satisfy an access needing ``key``?

    Mirrors ``_operand_region``: an exact key match, or a register key
    covering a no-index memory key on the same base within the elidable
    displacement window.  The provider's registers are always a subset
    of the covered key's, so any write invalidating the provider also
    invalidates the covered key — coverage never outlives its subject.
    """
    if provider_key == key:
        return True
    return (
        provider_key[0] == "reg"
        and key[0] == "mem"
        and key[1] == provider_key[1]  # same base
        and key[2] is None  # no index
        and abs(key[4]) < ELIDE_LIMIT
        and key[5] == provider_key[2]  # same bnd
    )


def _dedupable_lea(insn) -> bool:
    return (
        isinstance(insn, isa.Lea)
        and insn.mem.global_name is not None
        and insn.mem.base is None
        and insn.mem.index is None
    )


def insns_digest(insns: list) -> str:
    return hashlib.sha256(
        "\n".join(repr(i) for i in insns).encode()
    ).hexdigest()


@dataclass
class CheckOptWitness:
    """One function's check-optimization edit script.

    ``edits`` entries are keyed by *pre-stream* index:
    ``("elide", i, j)`` — the check at ``i`` is covered by the
    surviving check at ``j``; ``("dedup-lea", i, j)`` — the lea at
    ``i`` duplicates the surviving lea at ``j``; ``("widen", i)`` —
    the memory-form check at ``i`` becomes register-form.
    """

    function: str
    pre_digest: str
    post_digest: str = ""
    edits: list[tuple] = field(default_factory=list)

    def digest(self) -> str:
        parts = [self.function, self.pre_digest, self.post_digest]
        parts.extend(repr(e) for e in self.edits)
        return hashlib.sha256("\0".join(parts).encode()).hexdigest()


def optimize_checks(
    insns: list, function: str
) -> tuple[list, CheckOptWitness]:
    """One forward dataflow pass over a function's ISA stream.

    Returns the rewritten stream and its witness (empty ``edits`` means
    nothing fired).  The input list is not mutated.
    """
    witness = CheckOptWitness(function, insns_digest(insns))
    checked: dict[tuple, int] = {}  # available key -> provider index
    leas: dict[tuple, int] = {}  # (dst, mem repr) -> provider index
    out: list = []
    for i, insn in enumerate(insns):
        if isinstance(insn, _BOUNDARY):
            checked.clear()
            leas.clear()
            out.append(insn)
            continue
        if _dedupable_lea(insn):
            lkey = (insn.dst, repr(insn.mem))
            provider = leas.get(lkey)
            if provider is not None:
                # Identical address already in the register: deleting
                # the remat leaves both machine and verifier state
                # unchanged, so the check evidence on dst survives.
                witness.edits.append(("dedup-lea", i, provider))
                continue
            _invalidate(checked, leas, insn.dst)
            leas[lkey] = i
            out.append(insn)
            continue
        if isinstance(insn, isa.BndChk):
            widened = False
            if _widenable(insn):
                insn = _widen(insn)
                widened = True
            key = _check_key(insn)
            provider = checked.get(key)
            if provider is None and key[0] == "mem" and key[2] is None \
                    and abs(key[4]) < ELIDE_LIMIT:
                provider = checked.get(("reg", key[1], key[5]))
            if provider is not None:
                witness.edits.append(("elide", i, provider))
                continue
            if widened:
                witness.edits.append(("widen", i))
            checked[key] = i
            out.append(insn)
            continue
        for reg in _defined_regs(insn):
            _invalidate(checked, leas, reg)
        out.append(insn)
    witness.post_digest = insns_digest(out)
    return out, witness


def _invalidate(checked: dict, leas: dict, reg: int) -> None:
    for key in [k for k in checked if reg in _key_regs(k)]:
        del checked[key]
    for key in [k for k in leas if k[0] == reg]:
        del leas[key]


# ---------------------------------------------------------------------------
# The translation checker: replays the edit script against the
# pre-stream, re-deriving every claim.


def check_checkopt_witness(
    witness: CheckOptWitness, pre: list, post: list
) -> None:
    """Validate an edit script against the pre/post ISA streams."""
    name = witness.function
    if witness.pre_digest != insns_digest(pre):
        raise WitnessError(f"{name}: stale pre-stream digest in witness")
    if witness.post_digest != insns_digest(post):
        raise WitnessError(f"{name}: stale post-stream digest in witness")

    deleted: set[int] = set()
    widened: set[int] = set()
    for edit in witness.edits:
        kind, i = edit[0], edit[1]
        if i < 0 or i >= len(pre):
            raise WitnessError(f"{name}: edit index {i} out of range")
        if kind in ("elide", "dedup-lea"):
            if i in deleted:
                raise WitnessError(f"{name}: index {i} deleted twice")
            deleted.add(i)
        elif kind == "widen":
            widened.add(i)
        else:
            raise WitnessError(f"{name}: unknown edit {edit!r}")
    if deleted & widened:
        raise WitnessError(f"{name}: edit both deletes and widens a site")

    # The post stream must be exactly the edit script applied to pre.
    expected = []
    for i, insn in enumerate(pre):
        if i in deleted:
            continue
        if i in widened:
            if not (isinstance(insn, isa.BndChk) and _widenable(insn)):
                raise WitnessError(
                    f"{name}: widen at {i} targets a non-widenable "
                    f"instruction {insn!r}"
                )
            insn = _widen(insn)
        expected.append(insn)
    if [repr(x) for x in expected] != [repr(x) for x in post]:
        raise WitnessError(
            f"{name}: post stream is not the edit script applied to pre"
        )

    def clear_path(j: int, i: int, regs: tuple) -> None:
        """No boundary and no write to ``regs`` between j and i in the
        *post* ordering (deleted instructions never execute)."""
        for k in range(j + 1, i):
            if k in deleted:
                continue
            between = pre[k]
            if isinstance(between, _BOUNDARY):
                raise WitnessError(
                    f"{name}: edit at {i} crosses a block boundary at {k}"
                )
            if any(r in regs for r in _defined_regs(between)):
                raise WitnessError(
                    f"{name}: evidence for edit at {i} is killed by a "
                    f"register write at {k}"
                )

    for edit in witness.edits:
        if edit[0] == "elide":
            _, i, j = edit
            if not (0 <= j < i) or j in deleted:
                raise WitnessError(
                    f"{name}: elide at {i} names an invalid provider {j}"
                )
            subject = pre[i]
            provider = pre[j]
            if not isinstance(subject, isa.BndChk) or not isinstance(
                provider, isa.BndChk
            ):
                raise WitnessError(
                    f"{name}: elide at {i} does not involve two checks"
                )
            key = _check_key(subject)
            provider_key = _check_key(
                _widen(provider) if j in widened else provider
            )
            if not _covers(provider_key, key):
                raise WitnessError(
                    f"{name}: check at {j} does not cover the one "
                    f"elided at {i}"
                )
            clear_path(j, i, _key_regs(provider_key))
        elif edit[0] == "dedup-lea":
            _, i, j = edit
            if not (0 <= j < i) or j in deleted:
                raise WitnessError(
                    f"{name}: dedup at {i} names an invalid provider {j}"
                )
            subject = pre[i]
            provider = pre[j]
            if not (_dedupable_lea(subject) and _dedupable_lea(provider)):
                raise WitnessError(
                    f"{name}: dedup at {i} is not a global-lea pair"
                )
            if repr(subject) != repr(provider):
                raise WitnessError(
                    f"{name}: deduped lea at {i} differs from its "
                    f"provider at {j}"
                )
            clear_path(j, i, (subject.dst,))


# ---------------------------------------------------------------------------
# Driver: certify and commit per function.


def run_checkopt(obj, config) -> str:
    """Optimize every function of a pre-link unit in place.

    Each function's edit script is validated by
    :func:`check_checkopt_witness` before being committed; a rejected
    witness keeps that function's original stream.  Returns a digest
    folding the accepted witnesses (chained into the build session's
    ``checkopt`` stage fingerprint).
    """
    digests: list[str] = []
    registry = events.active()
    with events.span("compile.checkopt"):
        for func in obj.functions:
            optimized, witness = optimize_checks(func.insns, func.name)
            if not witness.edits:
                continue
            try:
                check_checkopt_witness(witness, func.insns, optimized)
            except WitnessError:
                if registry is not None:
                    events.counter(
                        "opt.witness_rejected", **{"pass": "checkopt"}
                    ).inc()
                continue
            func.insns = optimized
            digests.append(witness.digest())
            if registry is not None:
                for edit in witness.edits:
                    events.counter(
                        "opt.checkopt", kind=edit[0]
                    ).inc()
    return hashlib.sha256("\n".join(digests).encode()).hexdigest()
