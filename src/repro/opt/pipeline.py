"""Certified pass manager.

Two pipelines mirror the paper's compiler configurations:

* ``vanilla`` — everything, including the passes ConfLLVM does not
  support (used for the ``Base``/``BaseOA`` configurations);
* ``confllvm`` — only the taint-metadata-preserving passes (everything
  that runs under the Our* configurations).

Every pass runs *certified*: it is a :class:`Pass` whose rewrite must
justify itself with a :class:`~repro.opt.witness.Witness` — a list of
taint-/layout-preservation obligations the independent checker
(:func:`~repro.opt.witness.check_witness`) re-derives from the pre/post
IR.  A pass whose witness fails validation is reverted on the spot
(the function is restored from a pre-pass snapshot) and the pipeline
continues without it, bumping the ``opt.witness_rejected`` counter.
The digests of all *accepted* witnesses are folded into
``module.opt_witness_digest``, which the build session chains into its
stage fingerprints so a change in certification behaviour invalidates
cached objects.

The per-function fixpoint loop is explicitly bounded: at most
:data:`MAX_ITERATIONS` rounds, recorded in the ``opt.fixpoint_iters``
histogram.  Two passes that undo each other (a "ping-pong") therefore
cost a bounded amount of compile time instead of hanging the build.
"""

from __future__ import annotations

import hashlib

from ..ir.core import IRFunction, IRModule
from ..ir.verify import verify_module
from ..obs import events
from .passes import copyprop_and_fold, cse_local, dce, promote_slots, simplify_cfg
from .witness import (
    Witness,
    WitnessError,
    check_witness,
    function_digest,
    restore_function,
    snapshot_function,
)

#: Fixpoint cap for the iterative pass loop (see module docstring).
MAX_ITERATIONS = 8


class Pass:
    """A named, witness-emitting IR transformation.

    ``fn`` is a function ``(func, witness=None) -> bool`` that mutates
    ``func`` in place, returns whether it changed anything, and — when
    given a witness — records one obligation per rewrite.
    """

    def __init__(self, name: str, fn):
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pass({self.name})"


PROMOTE_SLOTS = Pass("promote_slots", promote_slots)
COPYPROP_AND_FOLD = Pass("copyprop_and_fold", copyprop_and_fold)
DCE = Pass("dce", dce)
SIMPLIFY_CFG = Pass("simplify_cfg", simplify_cfg)
CSE_LOCAL = Pass("cse_local", cse_local)

#: The iterated pass sequence (cse_local appended for vanilla only).
ITER_PASSES = (COPYPROP_AND_FOLD, DCE, SIMPLIFY_CFG)


def _n_instrs(func: IRFunction) -> int:
    return sum(len(block.instrs) for block in func.blocks)


def run_certified_pass(
    pass_obj: Pass, func: IRFunction
) -> tuple[bool, Witness | None]:
    """Run one pass under translation validation.

    Returns ``(changed, witness)``.  On a rejected witness the function
    is reverted to its pre-pass state and ``(False, None)`` is returned
    (the build continues un-optimized rather than mis-optimized).
    """
    snapshot = snapshot_function(func)
    witness = Witness(
        pass_obj.name, func.name, func.origin, function_digest(func)
    )
    changed = pass_obj.fn(func, witness=witness)
    if not changed:
        return False, None
    witness.post_digest = function_digest(func)
    try:
        check_witness(witness, snapshot, func)
    except WitnessError:
        restore_function(func, snapshot)
        if events.active() is not None:
            events.counter(
                "opt.witness_rejected", **{"pass": pass_obj.name}
            ).inc()
        return False, None
    return True, witness


def _run_pass(
    pass_obj: Pass, func: IRFunction, accepted: list[str]
) -> bool:
    """Run one certified pass, recording run count and IR-size delta."""
    if events.active() is None:  # skip the IR-size walks when obs is off
        changed, witness = run_certified_pass(pass_obj, func)
        if witness is not None:
            accepted.append(witness.digest())
        return changed
    before = _n_instrs(func)
    changed, witness = run_certified_pass(pass_obj, func)
    if witness is not None:
        accepted.append(witness.digest())
    events.counter("opt.pass_runs", **{"pass": pass_obj.name}).inc()
    events.histogram("opt.ir_delta", **{"pass": pass_obj.name}).observe(
        before - _n_instrs(func)
    )
    return changed


def optimize_module(
    module: IRModule,
    pipeline: str = "confllvm",
    level: int = 2,
    verify: bool = True,
) -> IRModule:
    """Optimize a module in place and return it.

    ``level`` 0 skips everything (the O0 escape hatch the paper uses
    for the two Privado files its O2 bug affects).  Sets
    ``module.opt_witness_digest`` to a digest of the accepted pass
    witnesses (the empty-string digest at level 0).
    """
    accepted: list[str] = []
    if level == 0:
        module.opt_witness_digest = _fold_digests(accepted)
        return module
    run_unsupported = pipeline == "vanilla"
    passes = ITER_PASSES + ((CSE_LOCAL,) if run_unsupported else ())
    with events.span("compile.opt", pipeline=pipeline, level=level):
        for func in module.functions.values():
            _run_pass(PROMOTE_SLOTS, func, accepted)
            iters = 0
            for _ in range(MAX_ITERATIONS):
                iters += 1
                changed = False
                for pass_obj in passes:
                    changed |= _run_pass(pass_obj, func, accepted)
                if not changed:
                    break
            if events.active() is not None:
                events.histogram(
                    "opt.fixpoint_iters", pipeline=pipeline
                ).observe(iters)
        if verify:
            with events.span("compile.opt.ir-verify"):
                verify_module(module)
    module.opt_witness_digest = _fold_digests(accepted)
    return module


def _fold_digests(digests: list[str]) -> str:
    return hashlib.sha256("\n".join(digests).encode()).hexdigest()
