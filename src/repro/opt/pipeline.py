"""Pass manager.

Two pipelines mirror the paper's compiler configurations:

* ``vanilla`` — everything, including the passes ConfLLVM does not
  support (used for the ``Base``/``BaseOA`` configurations);
* ``confllvm`` — only the taint-metadata-preserving passes (everything
  that runs under the Our* configurations).
"""

from __future__ import annotations

from ..ir.core import IRFunction, IRModule
from ..ir.verify import verify_module
from ..obs import events
from .passes import copyprop_and_fold, cse_local, dce, promote_slots, simplify_cfg

MAX_ITERATIONS = 8


def _n_instrs(func: IRFunction) -> int:
    return sum(len(block.instrs) for block in func.blocks)


def _run_pass(name: str, pass_fn, func: IRFunction) -> bool:
    """Run one pass, recording its run count and IR-size delta."""
    if events.active() is None:  # skip the IR-size walks when obs is off
        return pass_fn(func)
    before = _n_instrs(func)
    changed = pass_fn(func)
    events.counter("opt.pass_runs", **{"pass": name}).inc()
    events.histogram("opt.ir_delta", **{"pass": name}).observe(
        before - _n_instrs(func)
    )
    return changed


def optimize_module(
    module: IRModule,
    pipeline: str = "confllvm",
    level: int = 2,
    verify: bool = True,
) -> IRModule:
    """Optimize a module in place and return it.

    ``level`` 0 skips everything (the O0 escape hatch the paper uses
    for the two Privado files its O2 bug affects).
    """
    if level == 0:
        return module
    run_unsupported = pipeline == "vanilla"
    with events.span("compile.opt", pipeline=pipeline, level=level):
        for func in module.functions.values():
            _run_pass("promote_slots", promote_slots, func)
            for _ in range(MAX_ITERATIONS):
                changed = _run_pass("copyprop_and_fold", copyprop_and_fold, func)
                changed |= _run_pass("dce", dce, func)
                changed |= _run_pass("simplify_cfg", simplify_cfg, func)
                if run_unsupported:
                    changed |= _run_pass("cse_local", cse_local, func)
                if not changed:
                    break
        if verify:
            with events.span("compile.opt.ir-verify"):
                verify_module(module)
    return module
