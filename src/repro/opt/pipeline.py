"""Pass manager.

Two pipelines mirror the paper's compiler configurations:

* ``vanilla`` — everything, including the passes ConfLLVM does not
  support (used for the ``Base``/``BaseOA`` configurations);
* ``confllvm`` — only the taint-metadata-preserving passes (everything
  that runs under the Our* configurations).
"""

from __future__ import annotations

from ..ir.core import IRModule
from ..ir.verify import verify_module
from .passes import copyprop_and_fold, cse_local, dce, promote_slots, simplify_cfg

MAX_ITERATIONS = 8


def optimize_module(
    module: IRModule,
    pipeline: str = "confllvm",
    level: int = 2,
    verify: bool = True,
) -> IRModule:
    """Optimize a module in place and return it.

    ``level`` 0 skips everything (the O0 escape hatch the paper uses
    for the two Privado files its O2 bug affects).
    """
    if level == 0:
        return module
    run_unsupported = pipeline == "vanilla"
    for func in module.functions.values():
        promote_slots(func)
        for _ in range(MAX_ITERATIONS):
            changed = copyprop_and_fold(func)
            changed |= dce(func)
            changed |= simplify_cfg(func)
            if run_unsupported:
                changed |= cse_local(func)
            if not changed:
                break
    if verify:
        verify_module(module)
    return module
