"""Translation-validation witnesses for the certified opt pipeline.

Every IR pass in :mod:`repro.opt.pipeline` returns a structured
:class:`Witness` alongside its rewrite: a list of per-rewrite
:class:`Obligation` records (taint-preservation and layout-preservation
claims) bracketed by digests of the pre/post IR.  :func:`check_witness`
is the independent checker: it recomputes everything a claim asserts
from the pre/post IR itself — it never trusts the pass — and raises
:class:`WitnessError` on any discrepancy, at which point the pipeline
reverts the pass (see ``run_certified_pass``).

The obligations are *complete* by construction of the checker, not by
trust in the pass:

* every block whose body changed must be covered by at least one
  obligation anchored in it (a dropped obligation is rejected);
* every obligation must anchor in a block that actually changed (a
  phantom obligation is rejected);
* same-length rewrites (copy propagation, CSE) must carry an obligation
  at *every* differing instruction position;
* slots missing from the post-IR frame must each be justified by a
  ``promoted`` obligation whose promotability the checker re-derives
  from the pre-IR;
* shared virtual registers must keep their taint, and rewritten memory
  accesses their region, bit-for-bit.

The checker is deliberately smaller and dumber than the passes — the
point of translation validation is that the TCB grows by this file,
not by the optimizer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import ReproError
from ..ir.core import (
    Bin,
    Block,
    Branch,
    Call,
    CallIndirect,
    Const,
    Copy,
    FuncAddr,
    GlobalAddr,
    IRFunction,
    Jump,
    Lea,
    Load,
    LocalAddr,
    MemRef,
    Ret,
    StackSlot,
    Store,
    SwitchBr,
    TlsBaseAddr,
    Un,
    VarArgAddr,
    VReg,
)

_PURE = (Const, Copy, Bin, Un, Lea, Load, VarArgAddr)


class WitnessError(ReproError):
    """A pass witness failed validation against the pre/post IR."""


@dataclass(frozen=True)
class Obligation:
    """One taint- or layout-preservation claim for one rewrite site.

    ``site`` anchors the claim: ``"<block>@<index>"`` for a rewritten
    instruction, ``"<block>@init"`` for inserted entry initializers,
    ``"<block>@term"`` for a rewritten terminator, ``"block:<name>"``
    for a removed block, ``"slot:<uid>"`` for a frame-layout change.
    ``claim`` is a pass-specific payload the checker re-derives.
    """

    kind: str  # "taint" | "layout"
    site: str
    claim: tuple


@dataclass
class Witness:
    """A pass run's self-description, validated by :func:`check_witness`."""

    pass_name: str
    function: str
    origin: str
    pre_digest: str
    post_digest: str = ""
    obligations: list[Obligation] = field(default_factory=list)

    def add(self, kind: str, site: str, *claim) -> None:
        self.obligations.append(Obligation(kind, site, tuple(claim)))

    def digest(self) -> str:
        """Content digest of the whole witness (for stage fingerprints)."""
        parts = [self.pass_name, self.function, self.origin,
                 self.pre_digest, self.post_digest]
        parts.extend(
            f"{o.kind}|{o.site}|{o.claim!r}" for o in self.obligations
        )
        return hashlib.sha256("\0".join(parts).encode()).hexdigest()


# ---------------------------------------------------------------------------
# IR snapshot / digest / restore — the revert machinery.

def function_digest(func: IRFunction) -> str:
    """Canonical content digest of a function body (slots + blocks)."""
    parts = [func.name, func.origin]
    parts.extend(repr(s) + f"/{s.size}/{s.align}" for s in func.slots)
    for block in func.blocks:
        parts.append(block.name)
        parts.extend(repr(i) for i in block.instrs)
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class _Cloner:
    """Deep-clones a function body, preserving VReg/slot identity webs."""

    def __init__(self):
        self._vregs: dict[int, VReg] = {}
        self._slots: dict[int, StackSlot] = {}

    def vreg(self, v):
        if not isinstance(v, VReg):
            return v  # int operand (or None)
        clone = self._vregs.get(v.id)
        if clone is None:
            clone = VReg(v.id, v.taint, v.hint)
            self._vregs[v.id] = clone
        return clone

    def slot(self, s: StackSlot) -> StackSlot:
        clone = self._slots.get(s.uid)
        if clone is None:
            clone = StackSlot(
                s.uid, s.name, s.size, s.align, s.taint,
                s.address_taken, s.offset,
            )
            self._slots[s.uid] = clone
        return clone

    def mem(self, m: MemRef) -> MemRef:
        return MemRef(
            region=m.region,
            base=self.vreg(m.base) if m.base is not None else None,
            slot=self.slot(m.slot) if m.slot is not None else None,
            global_name=m.global_name,
            index=self.vreg(m.index) if m.index is not None else None,
            scale=m.scale,
            disp=m.disp,
        )

    def instr(self, i):
        v = self.vreg
        if isinstance(i, Const):
            return Const(v(i.dst), i.value)
        if isinstance(i, Copy):
            return Copy(v(i.dst), v(i.src))
        if isinstance(i, Un):
            return Un(i.op, v(i.dst), v(i.src))
        if isinstance(i, Bin):
            return Bin(i.op, v(i.dst), v(i.a), v(i.b))
        if isinstance(i, Load):
            return Load(v(i.dst), self.mem(i.mem), i.size)
        if isinstance(i, Store):
            return Store(self.mem(i.mem), v(i.src), i.size)
        if isinstance(i, Lea):
            return Lea(v(i.dst), self.mem(i.mem))
        if isinstance(i, LocalAddr):
            return LocalAddr(v(i.dst), self.slot(i.slot))
        if isinstance(i, GlobalAddr):
            return GlobalAddr(v(i.dst), i.name)
        if isinstance(i, FuncAddr):
            return FuncAddr(v(i.dst), i.fname)
        if isinstance(i, TlsBaseAddr):
            return TlsBaseAddr(v(i.dst))
        if isinstance(i, VarArgAddr):
            return VarArgAddr(v(i.dst), v(i.index))
        if isinstance(i, Call):
            return Call(
                v(i.dst) if i.dst is not None else None,
                i.name, [v(a) for a in i.args],
                list(i.arg_taints), i.ret_taint, i.n_fixed,
            )
        if isinstance(i, CallIndirect):
            return CallIndirect(
                v(i.dst) if i.dst is not None else None,
                v(i.target), [v(a) for a in i.args],
                list(i.arg_taints), i.ret_taint, i.n_fixed,
            )
        if isinstance(i, Jump):
            return Jump(i.target)
        if isinstance(i, Branch):
            return Branch(v(i.cond), i.if_true, i.if_false)
        if isinstance(i, SwitchBr):
            return SwitchBr(v(i.cond), list(i.table), i.default)
        if isinstance(i, Ret):
            return Ret(v(i.value) if i.value is not None else None)
        raise WitnessError(f"cannot snapshot instruction {i!r}")


def snapshot_function(func: IRFunction) -> IRFunction:
    """A deep clone of ``func`` (same counters, fresh object web)."""
    cloner = _Cloner()
    snap = IRFunction(func.name, func.sig, list(func.param_names))
    snap.origin = func.origin
    snap.param_vregs = [cloner.vreg(v) for v in func.param_vregs]
    snap.slots = [cloner.slot(s) for s in func.slots]
    snap.blocks = [
        Block(b.name, [cloner.instr(i) for i in b.instrs])
        for b in func.blocks
    ]
    snap._next_vreg = func._next_vreg
    snap._next_slot = func._next_slot
    snap._next_block = func._next_block
    return snap


def restore_function(func: IRFunction, snap: IRFunction) -> None:
    """Revert ``func`` in place to a snapshot taken before a pass ran."""
    func.origin = snap.origin
    func.param_vregs = snap.param_vregs
    func.slots = snap.slots
    func.blocks = snap.blocks
    func._next_vreg = snap._next_vreg
    func._next_slot = snap._next_slot
    func._next_block = snap._next_block


# ---------------------------------------------------------------------------
# The checker.

def _block_reprs(func: IRFunction) -> dict[str, list[str]]:
    return {b.name: [repr(i) for i in b.instrs] for b in func.blocks}


def _vreg_taints(func: IRFunction) -> dict[int, object]:
    taints: dict[int, object] = {}
    for block in func.blocks:
        for instr in block.instrs:
            for v in (*instr.uses(), *instr.defs()):
                taints[v.id] = v.taint
    for v in func.param_vregs:
        taints[v.id] = v.taint
    return taints


def _site_block(site: str) -> str | None:
    """The block an obligation site anchors in (None for slot sites)."""
    if site.startswith("slot:"):
        return None
    if site.startswith("block:"):
        return site[len("block:"):]
    return site.rsplit("@", 1)[0]


def _covered_blocks(ob: Obligation) -> set[str]:
    """Blocks an obligation accounts for (merges cover both sides)."""
    block = _site_block(ob.site)
    names = {block} if block is not None else set()
    if ob.claim and ob.claim[0] == "merged":
        names.add(ob.claim[1])
    return names


def check_witness(
    witness: Witness, pre: IRFunction, post: IRFunction
) -> None:
    """Validate one pass witness against the pre/post IR; raise
    :class:`WitnessError` on the first failed obligation."""
    if witness.function != post.name or witness.function != pre.name:
        raise WitnessError(
            f"witness names {witness.function!r}, IR is {post.name!r}"
        )
    if witness.origin != pre.origin or witness.origin != post.origin:
        raise WitnessError(
            f"{post.name}: witness origin {witness.origin!r} does not "
            "match the function's lowering provenance"
        )
    if witness.pre_digest != function_digest(pre):
        raise WitnessError(f"{post.name}: stale pre-IR digest in witness")
    if witness.post_digest != function_digest(post):
        raise WitnessError(f"{post.name}: stale post-IR digest in witness")

    pre_blocks = _block_reprs(pre)
    post_blocks = _block_reprs(post)
    for name in post_blocks:
        if name not in pre_blocks:
            raise WitnessError(
                f"{post.name}: pass introduced new block {name!r}"
            )

    # Global taint preservation: shared vregs keep their taint.
    pre_taints = _vreg_taints(pre)
    for vid, taint in _vreg_taints(post).items():
        if vid in pre_taints and pre_taints[vid] is not taint:
            raise WitnessError(
                f"{post.name}: vreg %{vid} taint changed "
                f"{pre_taints[vid]!r} -> {taint!r}"
            )

    # Global layout preservation: surviving slots are unchanged;
    # removed slots need a 'promoted' obligation (validated below).
    pre_slots = {s.uid: s for s in pre.slots}
    for slot in post.slots:
        old = pre_slots.get(slot.uid)
        if old is None:
            raise WitnessError(
                f"{post.name}: pass introduced slot {slot!r}"
            )
        if (slot.name, slot.size, slot.align, slot.taint) != (
            old.name, old.size, old.align, old.taint
        ):
            raise WitnessError(
                f"{post.name}: slot {slot.uid} layout changed"
            )
    removed_slots = set(pre_slots) - {s.uid for s in post.slots}
    promoted = {
        ob.claim[1]: ob
        for ob in witness.obligations
        if ob.site.startswith("slot:") and ob.claim[:1] == ("promoted",)
    }
    promoted_uids = {
        int(ob.site[len("slot:"):]) for ob in promoted.values()
    }
    if removed_slots != promoted_uids:
        raise WitnessError(
            f"{post.name}: removed slots {sorted(removed_slots)} not "
            f"matched by promoted obligations {sorted(promoted_uids)}"
        )

    # Changed-block accounting: full, both directions.
    changed = {
        name
        for name in pre_blocks
        if post_blocks.get(name) != pre_blocks[name]
    }
    covered: set[str] = set()
    for ob in witness.obligations:
        names = _covered_blocks(ob)
        covered |= names
        for name in names:
            if name not in changed:
                raise WitnessError(
                    f"{post.name}: obligation at {ob.site} anchors in "
                    f"unchanged block {name!r}"
                )
    missing = changed - covered
    if missing:
        raise WitnessError(
            f"{post.name}: changed blocks without obligations: "
            f"{sorted(missing)}"
        )

    checker = _CLAIM_CHECKERS.get(witness.pass_name)
    if checker is None:
        raise WitnessError(f"unknown pass {witness.pass_name!r} in witness")
    checker(witness, pre, post)


# ---------------------------------------------------------------------------
# Per-pass claim validation.

def _parse_index(site: str, func_name: str) -> tuple[str, str]:
    block, _, index = site.rpartition("@")
    if not block:
        raise WitnessError(f"{func_name}: malformed site {site!r}")
    return block, index


def _post_block(post: IRFunction, name: str, func_name: str) -> Block:
    for block in post.blocks:
        if block.name == name:
            return block
    raise WitnessError(f"{func_name}: obligation block {name!r} missing")


def _pre_block(pre: IRFunction, name: str, func_name: str) -> Block:
    for block in pre.blocks:
        if block.name == name:
            return block
    raise WitnessError(
        f"{func_name}: obligation block {name!r} not in pre-IR"
    )


def _require_positionwise(
    witness: Witness, pre: IRFunction, post: IRFunction, *, offsets=None
) -> None:
    """Common-block bodies must have equal length, and every differing
    position must carry an obligation (used by the 1:1 rewrite passes).
    ``offsets`` maps block name -> number of instructions inserted at
    the front of the post block (promote_slots' entry initializers)."""
    offsets = offsets or {}
    sites = {ob.site for ob in witness.obligations}
    pre_map = {b.name: b for b in pre.blocks}
    for block in post.blocks:
        old = pre_map.get(block.name)
        if old is None:
            continue
        off = offsets.get(block.name, 0)
        if len(block.instrs) != len(old.instrs) + off:
            raise WitnessError(
                f"{post.name}: block {block.name} length changed "
                "under a positionwise pass"
            )
        for i, pre_instr in enumerate(old.instrs):
            if repr(block.instrs[i + off]) != repr(pre_instr):
                if f"{block.name}@{i}" not in sites:
                    raise WitnessError(
                        f"{post.name}: rewrite at {block.name}@{i} has "
                        "no obligation"
                    )


def _def_taints(instr) -> tuple:
    return tuple(int(v.taint) for v in instr.defs())


def _check_copyprop(witness, pre, post):
    _require_positionwise(witness, pre, post)
    for ob in witness.obligations:
        block_name, index = _parse_index(ob.site, post.name)
        if ob.claim[0] != "rewrite" or ob.kind != "taint":
            raise WitnessError(
                f"{post.name}: unexpected claim {ob.claim!r} for "
                f"{witness.pass_name}"
            )
        _, pre_taints, post_taints = ob.claim
        if pre_taints != post_taints:
            raise WitnessError(
                f"{post.name}: {ob.site}: rewrite changes def taints "
                f"{pre_taints} -> {post_taints}"
            )
        i = int(index)
        pblock = _post_block(post, block_name, post.name)
        oblock = _pre_block(pre, block_name, post.name)
        if i >= len(pblock.instrs) or i >= len(oblock.instrs):
            raise WitnessError(
                f"{post.name}: {ob.site}: index out of range"
            )
        new, old = pblock.instrs[i], oblock.instrs[i]
        if _def_taints(new) != tuple(post_taints):
            raise WitnessError(
                f"{post.name}: {ob.site}: claimed taints {post_taints} "
                f"do not match post-IR {_def_taints(new)}"
            )
        if _def_taints(old) != tuple(pre_taints):
            raise WitnessError(
                f"{post.name}: {ob.site}: claimed taints {pre_taints} "
                f"do not match pre-IR {_def_taints(old)}"
            )
        # Region preservation for rewritten memory accesses.
        for a, b in ((old, new),):
            if isinstance(a, (Load, Store, Lea)) and isinstance(
                b, (Load, Store, Lea)
            ):
                if a.mem.region is not b.mem.region:
                    raise WitnessError(
                        f"{post.name}: {ob.site}: memory region changed"
                    )


def _check_cse(witness, pre, post):
    _require_positionwise(witness, pre, post)
    post_map = {b.name: b for b in post.blocks}
    pre_map = {b.name: b for b in pre.blocks}
    for ob in witness.obligations:
        block_name, index = _parse_index(ob.site, post.name)
        if ob.claim[0] != "cse":
            raise WitnessError(
                f"{post.name}: unexpected claim {ob.claim!r} for cse"
            )
        _, prev_id, dst_id = ob.claim
        i = int(index)
        block = post_map.get(block_name)
        old = pre_map.get(block_name)
        if block is None or old is None or i >= len(block.instrs):
            raise WitnessError(f"{post.name}: {ob.site}: bad cse site")
        instr = block.instrs[i]
        if not isinstance(instr, Copy) or not isinstance(instr.src, VReg):
            raise WitnessError(
                f"{post.name}: {ob.site}: cse site is not a reg copy"
            )
        if instr.dst.id != dst_id or instr.src.id != prev_id:
            raise WitnessError(
                f"{post.name}: {ob.site}: cse copy does not match claim"
            )
        if instr.dst.taint is not instr.src.taint:
            raise WitnessError(
                f"{post.name}: {ob.site}: cse across taints"
            )
        old_instr = old.instrs[i]
        if not isinstance(old_instr, (Bin, Un)):
            raise WitnessError(
                f"{post.name}: {ob.site}: cse replaced a non-pure "
                "computation"
            )
        # The provider must be an identical computation, earlier in the
        # same block, with no operand or provider redefinition between.
        provider = None
        for j in range(i - 1, -1, -1):
            cand = old.instrs[j]
            defs = {d.id for d in cand.defs()}
            if provider is None and defs == {prev_id} and isinstance(
                cand, (Bin, Un)
            ) and _same_computation(cand, old_instr):
                provider = j
                break
            if prev_id in defs:
                raise WitnessError(
                    f"{post.name}: {ob.site}: cse provider %{prev_id} "
                    "redefined by a different computation"
                )
        if provider is None:
            raise WitnessError(
                f"{post.name}: {ob.site}: no cse provider for %{prev_id}"
            )
        used = {u.id for u in old_instr.uses()}
        for j in range(provider + 1, i):
            between = old.instrs[j]
            defs = {d.id for d in between.defs()}
            if defs & (used | {prev_id}):
                raise WitnessError(
                    f"{post.name}: {ob.site}: operand redefined between "
                    "cse provider and use"
                )
            if isinstance(between, (Call, CallIndirect)):
                raise WitnessError(
                    f"{post.name}: {ob.site}: cse across a call"
                )


def _same_computation(a, b) -> bool:
    def okey(op):
        return ("r", op.id) if isinstance(op, VReg) else ("i", op)

    if isinstance(a, Bin) and isinstance(b, Bin):
        return a.op == b.op and okey(a.a) == okey(b.a) and okey(a.b) == okey(b.b)
    if isinstance(a, Un) and isinstance(b, Un):
        return a.op == b.op and okey(a.src) == okey(b.src)
    return False


def _check_dce(witness, pre, post):
    post_used: set[int] = set()
    for block in post.blocks:
        for instr in block.instrs:
            for u in instr.uses():
                post_used.add(u.id)
    sites: dict[tuple[str, int], Obligation] = {}
    for ob in witness.obligations:
        block_name, index = _parse_index(ob.site, post.name)
        if ob.claim[0] != "dead":
            raise WitnessError(
                f"{post.name}: unexpected claim {ob.claim!r} for dce"
            )
        sites[(block_name, int(index))] = ob
    pre_map = {b.name: b for b in pre.blocks}
    for block in post.blocks:
        old = pre_map.get(block.name)
        if old is None:
            continue
        # The post block must be exactly the pre block minus the
        # instructions claimed dead at their pre indices.
        deleted = {
            i for (name, i) in sites if name == block.name
        }
        kept = [
            repr(instr)
            for i, instr in enumerate(old.instrs)
            if i not in deleted
        ]
        if kept != [repr(i) for i in block.instrs]:
            raise WitnessError(
                f"{post.name}: block {block.name} is not pre minus the "
                "claimed deletions"
            )
        for i in deleted:
            if i >= len(old.instrs):
                raise WitnessError(
                    f"{post.name}: dce site {block.name}@{i} out of range"
                )
            dead = old.instrs[i]
            ob = sites[(block.name, i)]
            claimed_ids = tuple(ob.claim[1])
            if tuple(d.id for d in dead.defs()) != claimed_ids:
                raise WitnessError(
                    f"{post.name}: dce claim ids {claimed_ids} do not "
                    f"match {dead!r}"
                )
            if not isinstance(dead, _PURE) or not dead.defs():
                raise WitnessError(
                    f"{post.name}: dce deleted impure {dead!r}"
                )
            for vid in claimed_ids:
                if vid in post_used:
                    raise WitnessError(
                        f"{post.name}: dce deleted %{vid} but it is "
                        "still used"
                    )


def _check_simplify_cfg(witness, pre, post):
    post_names = {b.name for b in post.blocks}
    post_targets: set[str] = set()
    for block in post.blocks:
        post_targets.update(block.successors())
    # Recompute the pre-IR jump-forwarding map for thread claims.
    forward = {
        b.name: b.instrs[0].target
        for b in pre.blocks
        if len(b.instrs) == 1 and isinstance(b.instrs[0], Jump)
    }

    def resolve(name: str) -> str:
        seen = set()
        while name in forward and name not in seen:
            seen.add(name)
            name = forward[name]
        return name

    merged_into = {
        _site_block(ob.site): ob.claim[1]
        for ob in witness.obligations
        if ob.claim and ob.claim[0] == "merged"
    }
    for ob in witness.obligations:
        claim = ob.claim[0]
        if claim == "thread":
            block_name, tag = _parse_index(ob.site, post.name)
            if tag != "term":
                raise WitnessError(
                    f"{post.name}: thread obligation must anchor @term"
                )
            new_block = _post_block(post, block_name, post.name)
            old_block = _pre_block(pre, block_name, post.name)
            n = len(old_block.instrs)
            if [repr(i) for i in new_block.instrs[: n - 1]] != [
                repr(i) for i in old_block.instrs[:-1]
            ]:
                raise WitnessError(
                    f"{post.name}: thread rewrote more than the "
                    f"terminator of {block_name}"
                )
            if block_name in set(merged_into.values()):
                # The block also absorbed its successor this run: its
                # terminator was consumed by the merge, whose
                # obligation (validated below) accounts for the tail.
                continue
            if len(new_block.instrs) != n:
                raise WitnessError(
                    f"{post.name}: thread at {block_name} changed "
                    "the block length without a merge obligation"
                )
            old_term = old_block.terminator
            new_term = new_block.terminator
            ok = False
            if isinstance(old_term, Jump) and isinstance(new_term, Jump):
                ok = resolve(old_term.target) == new_term.target
            elif isinstance(old_term, Branch) and isinstance(
                new_term, Branch
            ):
                ok = (
                    resolve(old_term.if_true) == new_term.if_true
                    and resolve(old_term.if_false) == new_term.if_false
                    and isinstance(new_term.cond, VReg)
                    and new_term.cond.id == old_term.cond.id
                )
            elif isinstance(old_term, Branch) and isinstance(
                new_term, Jump
            ):
                t = resolve(old_term.if_true)
                ok = t == resolve(old_term.if_false) == new_term.target
            if not ok:
                raise WitnessError(
                    f"{post.name}: thread at {block_name} does not "
                    "follow the pre-IR jump chain"
                )
        elif claim == "unreachable":
            name = ob.site[len("block:"):]
            if name == pre.blocks[0].name:
                raise WitnessError(
                    f"{post.name}: entry block claimed unreachable"
                )
            if name in post_names or name in post_targets:
                raise WitnessError(
                    f"{post.name}: block {name} claimed unreachable but "
                    "still present or targeted"
                )
            if name not in {b.name for b in pre.blocks}:
                raise WitnessError(
                    f"{post.name}: unreachable claim for unknown block "
                    f"{name}"
                )
        elif claim == "merged":
            name = ob.site[len("block:"):]
            into = ob.claim[1]
            if name in post_names or name in post_targets:
                raise WitnessError(
                    f"{post.name}: block {name} claimed merged but "
                    "still present or targeted"
                )
            if into not in post_names:
                raise WitnessError(
                    f"{post.name}: merge target {into} missing from "
                    "post-IR"
                )
            old = _pre_block(pre, name, post.name)
            absorber = _post_block(post, into, post.name)
            body = [repr(i) for i in absorber.instrs]
            # The surviving block must still start with its own pre
            # body (sans terminator, which the merge consumed)...
            pre_into = _pre_block(pre, into, post.name)
            head = [repr(i) for i in pre_into.instrs[:-1]]
            if body[: len(head)] != head:
                raise WitnessError(
                    f"{post.name}: merge into {into} disturbed the "
                    "absorber's own body"
                )
            # ...and the absorbed body (sans its possibly-rethreaded
            # terminator) must appear inside it.
            needle = [repr(i) for i in old.instrs[:-1]]
            if needle and not _contains_run(body, needle):
                raise WitnessError(
                    f"{post.name}: merged block {name} body not found "
                    f"in {into}"
                )
        else:
            raise WitnessError(
                f"{post.name}: unexpected claim {ob.claim!r} for "
                "simplify_cfg"
            )


def _contains_run(haystack: list[str], needle: list[str]) -> bool:
    n = len(needle)
    return any(
        haystack[i:i + n] == needle
        for i in range(len(haystack) - n + 1)
    )


def _check_promote_slots(witness, pre, post):
    pre_slots = {s.uid: s for s in pre.slots}
    promoted: dict[int, tuple[int, object]] = {}  # uid -> (vreg id, taint)
    inits: list[int] = []
    for ob in witness.obligations:
        if ob.site.startswith("slot:"):
            uid = int(ob.site[len("slot:"):])
            _, vreg_id, taint_int = ob.claim
            slot = pre_slots.get(uid)
            if slot is None:
                raise WitnessError(
                    f"{post.name}: promoted unknown slot {uid}"
                )
            if slot.address_taken or slot.size not in (1, 8):
                raise WitnessError(
                    f"{post.name}: slot {uid} is not promotable"
                )
            if int(slot.taint) != taint_int:
                raise WitnessError(
                    f"{post.name}: slot {uid} promotion changes taint"
                )
            # Re-derive promotability: every pre reference must be a
            # whole-slot direct Load/Store.
            for block in pre.blocks:
                for instr in block.instrs:
                    mem = getattr(instr, "mem", None)
                    if isinstance(instr, Lea) and instr.mem.slot is not None \
                            and instr.mem.slot.uid == uid:
                        raise WitnessError(
                            f"{post.name}: slot {uid} address taken via "
                            "lea"
                        )
                    if (
                        isinstance(instr, (Load, Store))
                        and mem is not None
                        and mem.slot is not None
                        and mem.slot.uid == uid
                    ):
                        if (
                            mem.index is not None
                            or mem.disp != 0
                            or instr.size != slot.size
                        ):
                            raise WitnessError(
                                f"{post.name}: slot {uid} has a partial "
                                "access; not promotable"
                            )
            promoted[uid] = (vreg_id, slot.taint)
        elif ob.site.endswith("@init"):
            inits = list(ob.claim[1])
        elif ob.claim[0] == "slot-access":
            continue  # validated positionally below
        else:
            raise WitnessError(
                f"{post.name}: unexpected claim {ob.claim!r} for "
                "promote_slots"
            )
    n_inits = len(promoted)
    entry = post.blocks[0]
    if sorted(vid for vid, _t in promoted.values()) != sorted(inits):
        raise WitnessError(
            f"{post.name}: zero-init obligation does not cover the "
            "promoted registers"
        )
    by_vid = {vid: taint for vid, taint in promoted.values()}
    for i in range(n_inits):
        instr = entry.instrs[i] if i < len(entry.instrs) else None
        if not isinstance(instr, Const) or instr.value != 0:
            raise WitnessError(
                f"{post.name}: entry is missing zero-initializers"
            )
        if instr.dst.id not in by_vid:
            raise WitnessError(
                f"{post.name}: stray initializer {instr!r}"
            )
        if instr.dst.taint is not by_vid[instr.dst.id]:
            raise WitnessError(
                f"{post.name}: initializer taint mismatch for "
                f"%{instr.dst.id}"
            )
    offsets = {entry.name: n_inits} if n_inits else {}
    _require_positionwise(witness, pre, post, offsets=offsets)
    # Validate each rewritten access.
    pre_map = {b.name: b for b in pre.blocks}
    post_map = {b.name: b for b in post.blocks}
    for ob in witness.obligations:
        if not ob.claim or ob.claim[0] != "slot-access":
            continue
        block_name, index = _parse_index(ob.site, post.name)
        _, uid, vreg_id = ob.claim
        i = int(index)
        off = offsets.get(block_name, 0)
        old_block = pre_map.get(block_name)
        new_block = post_map.get(block_name)
        if old_block is None or new_block is None or i >= len(
            old_block.instrs
        ):
            raise WitnessError(
                f"{post.name}: bad slot-access site {ob.site}"
            )
        old_instr = old_block.instrs[i]
        new_instr = new_block.instrs[i + off]
        if not isinstance(old_instr, (Load, Store)) or (
            old_instr.mem.slot is None or old_instr.mem.slot.uid != uid
        ):
            raise WitnessError(
                f"{post.name}: {ob.site}: pre-IR is not an access to "
                f"slot {uid}"
            )
        expect_vid, taint = promoted.get(uid, (None, None))
        if expect_vid != vreg_id:
            raise WitnessError(
                f"{post.name}: {ob.site}: access register does not "
                "match the promotion"
            )
        if isinstance(old_instr, Load):
            ok = (
                isinstance(new_instr, Copy)
                and isinstance(new_instr.src, VReg)
                and new_instr.src.id == vreg_id
                and new_instr.dst.id == old_instr.dst.id
            )
        else:
            ok = (
                isinstance(new_instr, Copy)
                and new_instr.dst.id == vreg_id
            )
        if not ok:
            raise WitnessError(
                f"{post.name}: {ob.site}: rewrite is not the promoted "
                "copy"
            )


_CLAIM_CHECKERS = {
    "promote_slots": _check_promote_slots,
    "copyprop_and_fold": _check_copyprop,
    "dce": _check_dce,
    "simplify_cfg": _check_simplify_cfg,
    "cse_local": _check_cse,
}
