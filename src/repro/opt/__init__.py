"""IR optimization passes, the certified pass manager, and the
post-codegen check optimizer (see docs/CERTIFIED_OPT.md)."""

from .checkopt import (
    CheckOptWitness,
    check_checkopt_witness,
    optimize_checks,
    run_checkopt,
)
from .passes import copyprop_and_fold, cse_local, dce, promote_slots, simplify_cfg
from .pipeline import (
    ITER_PASSES,
    MAX_ITERATIONS,
    Pass,
    optimize_module,
    run_certified_pass,
)
from .witness import (
    Obligation,
    Witness,
    WitnessError,
    check_witness,
    function_digest,
    restore_function,
    snapshot_function,
)

__all__ = [
    "optimize_module",
    "promote_slots",
    "copyprop_and_fold",
    "dce",
    "simplify_cfg",
    "cse_local",
    "Pass",
    "ITER_PASSES",
    "MAX_ITERATIONS",
    "run_certified_pass",
    "Witness",
    "WitnessError",
    "Obligation",
    "check_witness",
    "function_digest",
    "snapshot_function",
    "restore_function",
    "CheckOptWitness",
    "check_checkopt_witness",
    "optimize_checks",
    "run_checkopt",
]
