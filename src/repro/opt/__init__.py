"""IR optimization passes and the pass manager."""

from .passes import copyprop_and_fold, cse_local, dce, promote_slots, simplify_cfg
from .pipeline import optimize_module

__all__ = [
    "optimize_module",
    "promote_slots",
    "copyprop_and_fold",
    "dce",
    "simplify_cfg",
    "cse_local",
]
