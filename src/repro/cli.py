"""Command-line driver: ``python -m repro <command> ...``.

Commands
--------
run      compile a MiniC file and execute it on the simulated machine
verify   compile and run ConfVerify on the result
disasm   compile and print the linked instruction stream
bench    run one source under every configuration and print overheads

Common options: ``--config <name>`` (default OurMPX; see ``repro.config``),
``--file name=path`` to add RAM-disk files, ``--stdin-hex BYTES`` to feed
channel 0, ``--seed N`` for deterministic magic selection.
"""

from __future__ import annotations

import argparse
import sys

from .compiler import compile_source
from .config import ALL_CONFIGS, OUR_MPX
from .errors import MachineFault, ReproError
from .link.loader import load
from .runtime.trusted import T_PROTOTYPES, TrustedRuntime


def _read_source(path: str, add_prototypes: bool) -> str:
    with open(path) as handle:
        source = handle.read()
    if add_prototypes and "extern trusted" not in source:
        source = T_PROTOTYPES + source
    return source


def _make_runtime(args) -> TrustedRuntime:
    runtime = TrustedRuntime()
    for spec in args.file or []:
        name, _, path = spec.partition("=")
        with open(path, "rb") as handle:
            runtime.add_file(name, handle.read())
    for spec in args.password or []:
        user, _, pw = spec.partition("=")
        runtime.set_password(user, pw.encode())
    if args.stdin_hex:
        runtime.channel(0).feed(bytes.fromhex(args.stdin_hex))
    return runtime


def cmd_run(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    config = ALL_CONFIGS[args.config]
    binary = compile_source(source, config, seed=args.seed,
                            verify=args.verify)
    runtime = _make_runtime(args)
    process = load(binary, runtime=runtime)
    profiler = None
    if args.profile:
        from .machine.profile import attach_profiler

        profiler = attach_profiler(process.machine)
    try:
        code = process.run()
    except MachineFault as fault:
        print(f"FAULT: {fault}", file=sys.stderr)
        return 2
    for line in process.stdout:
        print(line)
    if args.stats:
        stats = process.stats
        print(
            f"[cycles={process.wall_cycles} instrs={stats.instructions} "
            f"bndchks={stats.bnd_checks} cfichks={stats.cfi_checks} "
            f"tcalls={stats.t_calls}]",
            file=sys.stderr,
        )
    if profiler is not None:
        print(f"{'function':24s} {'cycles':>10s} {'share':>7s}", file=sys.stderr)
        for row in profiler.report(top=12):
            print(
                f"{row.name:24s} {row.cycles:10,} {row.cycle_share:6.1%}",
                file=sys.stderr,
            )
    outbox = runtime.channel(1).drain_out()
    if outbox:
        print(f"[channel 1: {outbox.hex()}]", file=sys.stderr)
    return code & 0xFF


def cmd_verify(args) -> int:
    from .verifier import verify_binary

    source = _read_source(args.source, not args.no_prototypes)
    config = ALL_CONFIGS[args.config]
    binary = compile_source(source, config, seed=args.seed)
    verify_binary(binary)
    print(f"OK: {args.source} verifies under {config.name}")
    return 0


def cmd_disasm(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    config = ALL_CONFIGS[args.config]
    binary = compile_source(source, config, seed=args.seed)
    addr_to_label = {}
    for name, addr in binary.label_addrs.items():
        addr_to_label.setdefault(addr, []).append(name)
    for addr, insn in enumerate(binary.code):
        for label in addr_to_label.get(addr, []):
            print(f"{label}:")
        print(f"  {addr:6d}  {insn!r}")
    return 0


def cmd_bench(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    base_cycles = None
    print(f"{'config':12s} {'cycles':>12s} {'vs Base':>9s}")
    for name, config in ALL_CONFIGS.items():
        binary = compile_source(source, config, seed=args.seed)
        process = load(binary, runtime=_make_runtime(args))
        process.run()
        cycles = process.wall_cycles
        if base_cycles is None:
            base_cycles = cycles
        pct = 100.0 * (cycles - base_cycles) / base_cycles
        print(f"{name:12s} {cycles:12,} {pct:+8.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ConfLLVM-reproduction toolchain driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("run", cmd_run),
        ("verify", cmd_verify),
        ("disasm", cmd_disasm),
        ("bench", cmd_bench),
    ):
        p = sub.add_parser(name)
        p.add_argument("source", help="MiniC source file")
        p.add_argument("--config", default=OUR_MPX.name,
                       choices=sorted(ALL_CONFIGS))
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--no-prototypes", action="store_true",
                       help="do not prepend the standard T prototypes")
        p.add_argument("--file", action="append",
                       help="name=path: add a RAM-disk file")
        p.add_argument("--password", action="append",
                       help="user=pw: register a stored password")
        p.add_argument("--stdin-hex", default=None,
                       help="hex bytes fed to channel 0")
        p.set_defaults(handler=handler)
        if name == "run":
            p.add_argument("--verify", action="store_true",
                           help="run ConfVerify before loading")
            p.add_argument("--stats", action="store_true")
            p.add_argument("--profile", action="store_true",
                           help="print per-function cycle attribution")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
