"""Command-line driver: ``python -m repro <command> ...``.

Commands
--------
run      compile a MiniC file and execute it on the simulated machine
verify   compile and run ConfVerify on the result
disasm   compile and print the linked instruction stream
bench    run one source under every configuration and print overheads;
         ``--store FILE`` appends a schema-versioned record to a
         ``BENCH_*.json`` trajectory; ``bench diff OLD NEW`` compares
         two trajectories with per-metric tolerances (nonzero exit on
         regression)
report   Fig. 5-8-style overhead decomposition: per-config % overhead
         over Base broken down by check category (bnd/cfi/magic/
         chkstk/shadow + other), measured by the block profiler
stats    per-configuration table of compile-stage times and check counts
build    separate compilation: sources -> ``.uo`` objects, or ``--link``
         several objects/sources into a serialized binary
cache    inspect the content-addressed object cache (stats/list/clear)
serve    multi-tenant enclave-fleet serving: freeze one verified image,
         fork per-tenant machine pools from it, and drive a load with
         throughput/latency percentiles and cold-vs-fork setup costs
         (``--store`` appends a ``serve/<app>`` trajectory record)

Common options: ``--config <name>`` (default OurMPX; see ``repro.config``),
``--file name=path`` to add RAM-disk files, ``--stdin-hex BYTES`` to feed
channel 0, ``--seed N`` for deterministic magic selection.  ``run``,
``bench``, and ``stats`` also take ``--engine {predecoded,superblock,reference}``:
the reference engine is the slow one-step-at-a-time interpreter kept as
an executable specification — results are identical, only wall-clock
differs.

Build-layer options: ``--cache-dir DIR`` attaches a content-addressed
object cache (warm rebuilds skip every compile stage; also honoured via
``$REPRO_CACHE_DIR``), and ``--jobs N`` compiles independent units in
parallel (``bench`` compiles its 8 configurations concurrently).
Parallel and cached builds are byte-identical to cold serial builds.

Prototype injection: unless ``--no-prototypes`` is given, the standard
T prototypes are prepended when the source contains no real ``extern
trusted`` declaration.  The detector ignores comments and string
literals, so merely *mentioning* "extern trusted" in a comment does not
suppress injection.

Observability: ``--trace out.json`` writes a Chrome-trace/Perfetto file
covering both compiler stages (wall clock) and machine execution
(simulated cycles); ``--metrics`` dumps every recorded counter and
histogram as a table on stderr.  ``run --profile-blocks`` prints
per-basic-block cycle attribution, ``run --flamegraph out.folded``
writes a collapsed-stack profile.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import re
import sys
import time

from .build import (
    BuildRequest,
    BuildSession,
    ObjectCache,
    default_session,
    dump_binary,
    dump_uobject,
    load_uobject,
    object_cache_key,
    use_session,
)
from .compiler import compile_source
from .config import ALL_CONFIGS, CHECKOPT_LEVELS, OUR_MPX
from .errors import MachineFault, ReproError
from .link.loader import load
from .obs import events, export
from .runtime.trusted import T_PROTOTYPES, TrustedRuntime

# Real `extern trusted` declarations, ignoring comments and string/char
# literals (stripped first so a comment mentioning the phrase does not
# suppress prototype injection).
_EXTERN_TRUSTED = re.compile(r"\bextern\s+trusted\b")
_SOURCE_NOISE = re.compile(
    r"//[^\n]*"  # line comments
    r"|/\*.*?\*/"  # block comments
    r'|"(?:\\.|[^"\\])*"'  # string literals
    r"|'(?:\\.|[^'\\])*'",  # char literals
    re.S,
)


def _has_trusted_declarations(source: str) -> bool:
    return _EXTERN_TRUSTED.search(_SOURCE_NOISE.sub(" ", source)) is not None


def _apply_checkopt(config, args):
    """Apply ``--checkopt`` to a named config (no-op when unset/equal)."""
    level = getattr(args, "checkopt", None)
    if level and level != config.checkopt:
        return config.variant(checkopt=level)
    return config


def _read_source(path: str, add_prototypes: bool) -> str:
    with open(path) as handle:
        source = handle.read()
    if add_prototypes and not _has_trusted_declarations(source):
        source = T_PROTOTYPES + source
    return source


def _make_runtime(args) -> TrustedRuntime:
    runtime = TrustedRuntime()
    for spec in args.file or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(
                f"malformed --file spec {spec!r} (expected name=path)"
            )
        with open(path, "rb") as handle:
            runtime.add_file(name, handle.read())
    for spec in args.password or []:
        user, sep, pw = spec.partition("=")
        if not sep or not user:
            raise ReproError(
                f"malformed --password spec {spec!r} (expected user=password)"
            )
        runtime.set_password(user, pw.encode())
    if args.stdin_hex:
        runtime.channel(0).feed(bytes.fromhex(args.stdin_hex))
    return runtime


@contextlib.contextmanager
def _session_scope(args):
    """Scope a build session built from ``--cache-dir``/``--jobs``.

    Without either flag the process default session (which honours
    ``$REPRO_CACHE_DIR``/``$REPRO_BUILD_JOBS``) stays active.
    """
    cache_dir = getattr(args, "cache_dir", None)
    jobs = getattr(args, "jobs", None)
    if not cache_dir and not jobs:
        yield default_session()
        return
    cache = ObjectCache(cache_dir) if cache_dir else None
    with use_session(BuildSession(cache=cache, jobs=jobs or 1)) as session:
        yield session


def _activate_obs(args) -> events.Registry | None:
    """Activate a registry when ``--trace``/``--metrics`` asked for one."""
    if not getattr(args, "trace", None) and not getattr(args, "metrics", False):
        return None
    return events.activate(events.Registry())


def _finish_obs(args, registry: events.Registry | None) -> None:
    """Deactivate and flush the registry (trace file, metrics table)."""
    if registry is None:
        return
    events.deactivate()
    if getattr(args, "trace", None):
        export.write_chrome_trace(registry, args.trace)
    if getattr(args, "metrics", False):
        print(export.render_metrics_table(registry), file=sys.stderr)


def _report_run(args, process, runtime, profiler, blockprof=None) -> None:
    # --metrics already dumps the machine counters (and more), so only
    # render the short stats table when it alone was requested.
    if args.stats and not args.metrics:
        stats = process.stats
        rows = [
            ("machine.cycles.wall", process.wall_cycles),
            ("machine.instructions", stats.instructions),
            ("machine.checks{kind=bnd}", stats.bnd_checks),
            ("machine.checks{kind=cfi}", stats.cfi_checks),
            ("machine.t_calls", stats.t_calls),
        ]
        print(export.render_kv_table(rows, title="run stats"), file=sys.stderr)
    if profiler is not None:
        rows = [
            [row.name, f"{row.cycles:,}", f"{row.cycle_share:.1%}",
             row.bnd_checks, row.cfi_checks]
            for row in profiler.report(top=12)
        ]
        print(
            export.render_table(
                ["function", "cycles", "share", "bnd", "cfi"],
                rows,
                title="profile",
            ),
            file=sys.stderr,
        )
    if blockprof is not None and getattr(args, "profile_blocks", False):
        rows = [
            [row.name, row.func, f"{row.cycles:,}",
             f"{row.cycle_share:.1%}", f"{row.instructions:,}",
             row.cache_misses]
            for row in blockprof.report(top=16)
        ]
        print(
            export.render_table(
                ["block", "function", "cycles", "share", "instrs",
                 "l1miss"],
                rows,
                title="block profile",
            ),
            file=sys.stderr,
        )
    outbox = runtime.channel(1).drain_out()
    if outbox:
        print(
            export.render_kv_table(
                [("channel.1.out", outbox.hex())], title="channels"
            ),
            file=sys.stderr,
        )


def cmd_run(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    config = _apply_checkopt(ALL_CONFIGS[args.config], args)
    registry = _activate_obs(args)
    try:
        binary = compile_source(source, config, seed=args.seed,
                                verify=args.verify)
        runtime = _make_runtime(args)
        process = load(binary, runtime=runtime, engine=args.engine)
        profiler = None
        if args.profile:
            from .machine.profile import attach_profiler

            profiler = attach_profiler(process.machine)
        blockprof = None
        if args.profile_blocks or args.flamegraph:
            from .obs.blockprof import attach_block_profiler

            blockprof = attach_block_profiler(process.machine)
        try:
            code = process.run()
        except MachineFault as fault:
            print(f"FAULT: {fault}", file=sys.stderr)
            return 2
        if blockprof is not None and registry is not None:
            blockprof.publish(registry)
    finally:
        _finish_obs(args, registry)
    if blockprof is not None and args.flamegraph:
        from .obs.blockprof import write_flamegraph

        write_flamegraph(blockprof, args.flamegraph)
    for line in process.stdout:
        print(line)
    _report_run(args, process, runtime, profiler, blockprof)
    return code & 0xFF


def cmd_verify(args) -> int:
    from .verifier import verify_binary

    source = _read_source(args.source, not args.no_prototypes)
    config = _apply_checkopt(ALL_CONFIGS[args.config], args)
    registry = _activate_obs(args)
    try:
        binary = compile_source(source, config, seed=args.seed)
        verify_binary(binary)
    finally:
        _finish_obs(args, registry)
    print(f"OK: {args.source} verifies under {config.name}")
    return 0


def cmd_disasm(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    config = _apply_checkopt(ALL_CONFIGS[args.config], args)
    binary = compile_source(source, config, seed=args.seed)
    addr_to_label = {}
    for name, addr in binary.label_addrs.items():
        addr_to_label.setdefault(addr, []).append(name)
    for addr, insn in enumerate(binary.code):
        for label in addr_to_label.get(addr, []):
            print(f"{label}:")
        print(f"  {addr:6d}  {insn!r}")
    return 0


def run_bench_suite(
    source: str,
    *,
    suite: str,
    seed: int | None = None,
    engine: str = "predecoded",
    configs: dict | None = None,
    runtime_factory=None,
    jobs: int | None = None,
    checkopt: str | None = None,
) -> tuple[list[dict], list[dict]]:
    """Compile + run ``source`` under every configuration.

    Returns ``(records, benchmarks)``: the per-config records ``bench
    --json`` prints (deterministic — no host timing), and the
    ``bench_store`` per-benchmark entries (named ``suite/config`` and
    carrying measured wall time) that ``--store`` appends to a
    trajectory.  Shared by ``cmd_bench`` and the seed-trajectory
    generator so both produce byte-comparable entries.
    """
    from .obs import bench_store

    records: list[dict] = []
    benchmarks: list[dict] = []
    base_cycles = None
    # Compile every configuration up front (in parallel with --jobs);
    # execution stays serial in configuration order, so cycle counts
    # are identical whatever the build width.
    session = default_session()
    config_map = configs if configs is not None else ALL_CONFIGS
    if checkopt:
        config_map = {
            name: (
                config.variant(checkopt=checkopt)
                if config.checkopt != checkopt
                else config
            )
            for name, config in config_map.items()
        }
    requests = [
        BuildRequest(source=source, config=config, seed=seed)
        for config in config_map.values()
    ]
    binaries = session.build_many(requests, jobs=jobs)
    for (name, config), binary in zip(config_map.items(), binaries):
        runtime = runtime_factory() if runtime_factory else TrustedRuntime()
        process = load(binary, runtime=runtime, engine=engine)
        start = time.perf_counter()
        process.run()
        wall_s = time.perf_counter() - start
        cycles = process.wall_cycles
        if base_cycles is None:
            base_cycles = cycles
        pct = (
            100.0 * (cycles - base_cycles) / base_cycles
            if base_cycles
            else 0.0
        )
        stats = process.stats
        checks = {
            "bnd": stats.bnd_checks,
            "cfi": stats.cfi_checks,
            "t_calls": stats.t_calls,
        }
        records.append(
            {
                "config": name,
                "cycles": cycles,
                "overhead_pct": round(pct, 2),
                "instructions": stats.instructions,
                "checks": checks,
            }
        )
        benchmarks.append(
            bench_store.make_benchmark(
                name=f"{suite}/{name}",
                config=name,
                cycles=cycles,
                instructions=stats.instructions,
                checks=checks,
                wall_time_s=wall_s,
            )
        )
    return records, benchmarks


def cmd_bench(args) -> int:
    from .obs import bench_store

    source = _read_source(args.source, not args.no_prototypes)
    registry = _activate_obs(args)
    suite = args.bench_name
    if suite is None:
        stem = os.path.basename(args.source)
        suite = stem[: stem.rfind(".")] if "." in stem else stem
    try:
        records, benchmarks = run_bench_suite(
            source,
            suite=suite,
            seed=args.seed,
            engine=args.engine,
            runtime_factory=lambda: _make_runtime(args),
            jobs=getattr(args, "jobs", None),
            checkopt=getattr(args, "checkopt", None),
        )
    finally:
        _finish_obs(args, registry)
    if args.store:
        cache_state = (
            "dir"
            if (args.cache_dir or os.environ.get("REPRO_CACHE_DIR"))
            else "off"
        )
        record = bench_store.make_record(
            name=suite,
            seed=args.seed,
            engine=args.engine,
            cache=cache_state,
            benchmarks=benchmarks,
        )
        total = bench_store.append_record(args.store, record)
        print(
            f"stored record #{total} ({suite}, {len(benchmarks)} "
            f"benchmarks) -> {args.store}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    rows = [
        [
            r["config"],
            f"{r['cycles']:,}",
            f"{r['overhead_pct']:+.1f}%",
            f"{r['instructions']:,}",
            r["checks"]["bnd"],
            r["checks"]["cfi"],
            r["checks"]["t_calls"],
        ]
        for r in records
    ]
    print(
        export.render_table(
            ["config", "cycles", "vs Base", "instrs", "bnd", "cfi", "tcalls"],
            rows,
            title="bench",
        )
    )
    return 0


def cmd_bench_diff(args) -> int:
    """Compare two trajectory records; nonzero exit on regression."""
    from .obs import bench_store

    old = bench_store.latest_record(args.old, name=args.suite)
    new = bench_store.latest_record(args.new, name=args.suite)
    tolerances = {}
    if args.tol_cycles is not None:
        tolerances["cycles"] = args.tol_cycles
    if args.tol_instructions is not None:
        tolerances["instructions"] = args.tol_instructions
    if args.tol_wall is not None:
        tolerances["wall_time_s"] = args.tol_wall
    result = bench_store.diff_records(old, new, tolerances)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": result.ok,
                    "regressions": [
                        {
                            "benchmark": row.benchmark,
                            "metric": row.metric,
                            "old": row.old,
                            "new": row.new,
                            "delta_pct": round(row.delta_pct, 4),
                            "tolerance": row.tolerance,
                        }
                        for row in result.regressions
                    ],
                    "only_old": result.only_old,
                    "only_new": result.only_new,
                    "compared": len(result.rows),
                },
                indent=2,
            )
        )
    else:
        print(bench_store.render_diff(result))
    return 0 if result.ok else 3


def cmd_report(args) -> int:
    """Fig. 5-8-style check-overhead decomposition per configuration.

    Every config (including Base) runs once under the block profiler;
    each executed check site is charged its exact cycle cost.  The
    per-category sums plus the ``other`` residual (pipeline effects not
    tied to one check instruction: bound setup, cache displacement,
    alignment) decompose the cycle delta over Base *exactly*:
    ``sum(categories) + other == cycles(config) - cycles(Base)``.
    """
    from .obs.blockprof import attach_block_profiler
    from .verifier import verify_check_sites

    source = _read_source(args.source, not args.no_prototypes)
    if args.configs:
        wanted = []
        for part in args.configs.split(","):
            name = part.strip()
            if name and name not in wanted:
                wanted.append(name)
        unknown = [n for n in wanted if n not in ALL_CONFIGS]
        if unknown:
            raise ReproError(
                f"unknown config(s) {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(ALL_CONFIGS))})"
            )
        if "Base" not in wanted:
            wanted.insert(0, "Base")
        config_map = {n: ALL_CONFIGS[n] for n in ALL_CONFIGS if n in wanted}
    else:
        config_map = dict(ALL_CONFIGS)
    config_map = {
        name: _apply_checkopt(config, args)
        for name, config in config_map.items()
    }

    registry = _activate_obs(args)
    results: dict[str, dict] = {}
    try:
        session = default_session()
        requests = [
            BuildRequest(source=source, config=config, seed=args.seed)
            for config in config_map.values()
        ]
        binaries = session.build_many(requests)
        for (name, _config), binary in zip(config_map.items(), binaries):
            verify_check_sites(binary)
            process = load(binary, runtime=_make_runtime(args),
                           engine=args.engine)
            blockprof = attach_block_profiler(process.machine)
            process.run()
            results[name] = {
                "cycles": process.wall_cycles,
                "summary": blockprof.check_summary(),
                "bnd_sites": sum(
                    1 for kind in binary.check_sites.values()
                    if kind == "bnd"
                ),
            }
        # Check-elision attribution: at --checkopt aggressive, rebuild
        # every bounds-checked config with the optimizer off and charge
        # the difference (sites and profiled bnd cycles) to checkopt.
        if getattr(args, "checkopt", None) == "aggressive":
            elidable = {
                name: config.variant(checkopt="off")
                for name, config in config_map.items()
                if config.scheme == "mpx"
            }
            off_requests = [
                BuildRequest(source=source, config=config, seed=args.seed)
                for config in elidable.values()
            ]
            for (name, _config), binary in zip(
                elidable.items(), session.build_many(off_requests)
            ):
                process = load(binary, runtime=_make_runtime(args),
                               engine=args.engine)
                blockprof = attach_block_profiler(process.machine)
                process.run()
                off_summary = blockprof.check_summary()
                entry = results[name]
                sites_off = sum(
                    1 for kind in binary.check_sites.values()
                    if kind == "bnd"
                )
                entry["checkopt"] = {
                    "level": "aggressive",
                    "bnd_sites": entry["bnd_sites"],
                    "bnd_sites_off": sites_off,
                    "sites_elided": sites_off - entry["bnd_sites"],
                    "bnd_cycles": entry["summary"]["bnd"]["cycles"],
                    "bnd_cycles_off": off_summary["bnd"]["cycles"],
                    "bnd_cycles_saved": (
                        off_summary["bnd"]["cycles"]
                        - entry["summary"]["bnd"]["cycles"]
                    ),
                }
    finally:
        _finish_obs(args, registry)

    base_cycles = results["Base"]["cycles"]
    report = []
    for name in config_map:
        cycles = results[name]["cycles"]
        summary = results[name]["summary"]
        delta = cycles - base_cycles
        check_total = sum(c["cycles"] for c in summary.values())
        other = delta - check_total
        breakdown = {
            cat: {
                "count": summary[cat]["count"],
                "cycles": summary[cat]["cycles"],
                "pct_of_base": round(
                    100.0 * summary[cat]["cycles"] / base_cycles, 2
                )
                if base_cycles
                else 0.0,
            }
            for cat in summary
        }
        breakdown["other"] = {
            "cycles": other,
            "pct_of_base": round(100.0 * other / base_cycles, 2)
            if base_cycles
            else 0.0,
        }
        entry = {
            "config": name,
            "cycles": cycles,
            "delta": delta,
            "overhead_pct": round(100.0 * delta / base_cycles, 2)
            if base_cycles
            else 0.0,
            "breakdown": breakdown,
        }
        if "checkopt" in results[name]:
            entry["checkopt"] = results[name]["checkopt"]
        report.append(entry)
    if args.json:
        print(
            json.dumps(
                {
                    "source": args.source,
                    "seed": args.seed,
                    "engine": args.engine,
                    "base": "Base",
                    "base_cycles": base_cycles,
                    "configs": report,
                },
                indent=2,
            )
        )
        return 0
    categories = list(report[0]["breakdown"]) if report else []
    rows = [
        [
            entry["config"],
            f"{entry['cycles']:,}",
            f"{entry['overhead_pct']:+.1f}%",
        ]
        + [
            f"{entry['breakdown'][cat]['cycles']:,}"
            for cat in categories
        ]
        for entry in report
    ]
    print(
        export.render_table(
            ["config", "cycles", "vs Base"] + list(categories),
            rows,
            title="check-overhead decomposition (cycles)",
        )
    )
    ck_rows = [
        [
            entry["config"],
            ck["bnd_sites_off"],
            ck["bnd_sites"],
            ck["sites_elided"],
            f"{ck['bnd_cycles_off']:,}",
            f"{ck['bnd_cycles']:,}",
            f"{ck['bnd_cycles_saved']:,}",
        ]
        for entry in report
        if (ck := entry.get("checkopt"))
    ]
    if ck_rows:
        print(
            export.render_table(
                ["config", "sites@off", "sites", "elided", "bnd_cyc@off",
                 "bnd_cyc", "saved"],
                ck_rows,
                title="checkopt attribution (aggressive vs off)",
            )
        )
    return 0


def cmd_stats(args) -> int:
    """Per-config comparison: compile-stage wall times + dynamic checks."""
    source = _read_source(args.source, not args.no_prototypes)
    all_spans: list[events.Span] = []
    rows = []
    for name, config in ALL_CONFIGS.items():
        config = _apply_checkopt(config, args)
        registry = events.Registry()
        note = ""
        with events.use(registry):
            binary = compile_source(source, config, seed=args.seed)
            process = load(binary, runtime=_make_runtime(args),
                           engine=args.engine)
            try:
                process.run()
            except MachineFault as fault:
                note = f"FAULT:{fault.kind}"
        wall: dict[str, float] = {}
        for span in registry.spans:
            if span.clock == events.WALL:
                wall[span.name] = wall.get(span.name, 0.0) + span.dur

        def ms(stage: str) -> str:
            return f"{wall.get(stage, 0.0) / 1000.0:.2f}"

        front_us = (
            wall.get("compile.lex", 0.0)
            + wall.get("compile.parse", 0.0)
            + wall.get("compile.sema", 0.0)
        )
        stats = process.stats
        rows.append(
            [
                name,
                ms("compile.total"),
                f"{front_us / 1000.0:.2f}",
                ms("compile.opt"),
                ms("compile.codegen"),
                ms("compile.link"),
                f"{process.wall_cycles:,}",
                stats.bnd_checks,
                stats.cfi_checks,
                stats.t_calls,
                note,
            ]
        )
        if args.trace:
            for span in registry.spans:
                span.args.setdefault("config", name)
            all_spans.extend(registry.spans)
    print(
        export.render_table(
            ["config", "total_ms", "front_ms", "opt_ms", "cg_ms", "link_ms",
             "cycles", "bnd", "cfi", "tcall", "note"],
            rows,
            title="per-config stats",
        )
    )
    if args.trace:
        export.write_chrome_trace(all_spans, args.trace)
    return 0


def cmd_build(args) -> int:
    """Separate compilation: sources -> objects, optionally linked.

    Each ``.mc``/source argument compiles to a serialized pre-link U
    object; ``.uo`` arguments are loaded as already-built objects.
    With ``--link OUT`` every object links into one binary (resolving
    cross-object externals) and OUT receives the serialized binary.
    With several sources (or ``--allow-undefined``), declared-but-
    undefined untrusted functions become cross-object externals for
    the linker instead of compile errors.
    """
    session = default_session()
    config = _apply_checkopt(ALL_CONFIGS[args.config], args)
    allow_undefined = args.allow_undefined or len(args.sources) > 1
    objs = []
    for path in args.sources:
        if path.endswith(".uo"):
            with open(path, "rb") as handle:
                obj = load_uobject(handle.read())
            if obj.config != config:
                raise ReproError(
                    f"{path}: object was built for config "
                    f"{obj.config.name}, not {config.name}"
                )
            objs.append((path, None, obj))
            continue
        source = _read_source(path, not args.no_prototypes)
        obj = session.compile_unit(
            source,
            config,
            filename=path,
            seed=args.seed,
            allow_undefined=allow_undefined,
        )
        objs.append((path, source, obj))

    if args.link is not None:
        binary = session.link_units(
            [obj for _, _, obj in objs], entry=args.entry, seed=args.seed
        )
        data = dump_binary(binary)
        with open(args.link, "wb") as handle:
            handle.write(data)
        print(
            f"linked {len(objs)} object(s) -> {args.link} "
            f"({len(data)} bytes, {len(binary.code)} code words)"
        )
        return 0

    for path, source, obj in objs:
        if source is None:
            continue  # already an object file
        stem = os.path.basename(path)
        stem = stem[: -len(".mc")] if stem.endswith(".mc") else stem
        out = (
            os.path.join(args.out_dir, stem + ".uo")
            if args.out_dir
            else path + ".uo"
        )
        if args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
        data = dump_uobject(obj)
        with open(out, "wb") as handle:
            handle.write(data)
        key = object_cache_key(source, config, args.seed, allow_undefined)
        print(
            f"{path} -> {out} ({len(data)} bytes, "
            f"{len(obj.functions)} functions, key {key[:12]})"
        )
    return 0


def cmd_cache(args) -> int:
    """Inspect or clear the content-addressed object cache."""
    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not root:
        raise ReproError(
            "no cache directory (pass --cache-dir or set $REPRO_CACHE_DIR)"
        )
    cache = ObjectCache(root)
    if args.action == "stats":
        stats = cache.stats()
        print(
            export.render_kv_table(
                sorted(stats.items()), title="object cache"
            )
        )
    elif args.action == "list":
        for digest, size, mtime in sorted(
            cache.entries(), key=lambda e: (e[2], e[0])
        ):
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(mtime)
            )
            print(f"{digest}  {size:>8}  {stamp}")
    else:  # clear
        print(f"removed {cache.clear()} entries from {root}")
    return 0


def cmd_fuzz(args) -> int:
    """Drive the fuzzing harness; exit 1 when any finding survives."""
    from .fuzz import run_fuzz

    registry = _activate_obs(args)
    try:
        reports = run_fuzz(
            engine=args.engine,
            seed=args.seed,
            n=args.n,
            size=args.size,
            budget=args.budget,
            corpus_dir=args.corpus,
            minimize=not args.no_minimize,
            stride=args.stride,
        )
    finally:
        _finish_obs(args, registry)
    findings = 0
    for report in reports:
        print(report.summary())
        for finding in report.findings:
            findings += 1
            print(finding.render(), file=sys.stderr)
    if findings:
        print(f"FUZZ: {findings} finding(s) — see repros above",
              file=sys.stderr)
        return 1
    print("FUZZ: all checks passed")
    return 0


def cmd_serve(args) -> int:
    """Multi-tenant enclave-fleet serving (see docs/SERVING.md).

    Builds one verified image for the chosen app, forks per-tenant
    pools from it, pushes a deterministic request stream through the
    fleet, and reports throughput, p50/p95/p99 latency on both clocks,
    and the cold-vs-fork setup comparison.
    """
    from .obs import bench_store
    from .serve import run_load

    config = _apply_checkopt(ALL_CONFIGS[args.config], args)
    report = run_load(
        args.app,
        config,
        tenants=args.tenants,
        pool_size=args.pool_size,
        requests=args.requests,
        batch=args.batch,
        budget=args.budget,
        queue_depth=args.queue_depth,
        engine=args.engine,
        seed=args.seed,
        verify=not args.no_verify,
    )
    # Per-tenant counters are published after the run on purpose: an
    # active registry during serving would record a span per t_call.
    registry = _activate_obs(args)
    if registry is not None:
        for tenant, counters in report.per_tenant.items():
            for key in ("requests", "faults", "evictions", "resets",
                        "cycles"):
                registry.counter(f"serve.{key}", tenant=tenant).inc(
                    counters[key]
                )
    _finish_obs(args, registry)
    if args.store:
        cache_state = (
            "dir"
            if (args.cache_dir or os.environ.get("REPRO_CACHE_DIR"))
            else "off"
        )
        record = bench_store.make_record(
            name=f"serve/{args.app}",
            seed=args.seed,
            engine=args.engine,
            cache=cache_state,
            benchmarks=[report.bench_entry()],
        )
        total = bench_store.append_record(args.store, record)
        print(
            f"stored record #{total} (serve/{args.app}) -> {args.store}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        return 0
    setup = report.setup
    lat_w = report.latency_wall_ms
    lat_c = report.latency_cycles
    rows = [
        ("app / config", f"{report.app} / {report.config}"),
        ("tenants x pool", f"{len(report.tenants)} x {report.pool_size}"),
        ("requests (batch)", f"{report.requests} ({report.batch})"),
        ("ok / valid", f"{report.ok} / {report.valid}"),
        ("faults (evictions)", f"{report.faults} ({report.evictions})"),
        ("throughput", f"{report.throughput_rps:,.0f} req/s"),
        ("latency wall ms p50/p95/p99",
         f"{lat_w['p50']:.3f} / {lat_w['p95']:.3f} / {lat_w['p99']:.3f}"),
        ("latency cycles p50/p95/p99",
         f"{lat_c['p50']:,.0f} / {lat_c['p95']:,.0f} / "
         f"{lat_c['p99']:,.0f}"),
        ("total cycles", f"{report.total_cycles:,}"),
        ("cold setup (build+load)", f"{setup['cold_wall_s'] * 1e3:.1f} ms"),
        ("fork setup (reset)", f"{setup['reset_wall_s'] * 1e6:.1f} us"),
        ("setup speedup wall", f"{setup['wall_speedup']:,.0f}x"),
        ("warmup vs resume cycles",
         f"{setup['warmup_cycles']:,} vs {setup['resume_cycles']:,} "
         f"({setup['cycle_speedup']:,.1f}x)"),
    ]
    print(export.render_kv_table(rows, title="serve"))
    tenant_rows = [
        [name, c["requests"], c["faults"], c["evictions"], c["resets"],
         f"{c['cycles']:,}", c["max_queue_depth"]]
        for name, c in report.per_tenant.items()
    ]
    print(
        export.render_table(
            ["tenant", "reqs", "faults", "evict", "resets", "cycles",
             "maxq"],
            tenant_rows,
            title="per-tenant",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ConfLLVM-reproduction toolchain driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("run", cmd_run),
        ("verify", cmd_verify),
        ("disasm", cmd_disasm),
        ("bench", cmd_bench),
        ("stats", cmd_stats),
    ):
        p = sub.add_parser(name)
        p.add_argument("source", help="MiniC source file")
        p.add_argument("--config", default=OUR_MPX.name,
                       choices=sorted(ALL_CONFIGS))
        p.add_argument("--checkopt", default=None,
                       choices=CHECKOPT_LEVELS,
                       help="post-codegen check-optimization level (off/safe/aggressive; default from config)")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--no-prototypes", action="store_true",
                       help="do not prepend the standard T prototypes")
        p.add_argument("--file", action="append",
                       help="name=path: add a RAM-disk file")
        p.add_argument("--password", action="append",
                       help="user=pw: register a stored password")
        p.add_argument("--stdin-hex", default=None,
                       help="hex bytes fed to channel 0")
        if name in ("run", "bench", "stats"):
            p.add_argument("--engine", default="predecoded",
                           choices=("predecoded", "superblock", "reference"),
                           help="execution engine (reference = slow "
                                "debug interpreter; identical results)")
        p.set_defaults(handler=handler)
        if name in ("run", "verify", "bench", "stats"):
            p.add_argument("--trace", metavar="PATH", default=None,
                           help="write a Chrome-trace/Perfetto JSON file")
        if name in ("run", "verify", "bench"):
            p.add_argument("--metrics", action="store_true",
                           help="dump all recorded metrics to stderr")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed object cache directory "
                            "(warm rebuilds skip all compile stages)")
        if name == "bench":
            p.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="compile configurations with N parallel "
                                "workers (results are byte-identical)")
        if name == "run":
            p.add_argument("--verify", action="store_true",
                           help="run ConfVerify before loading")
            p.add_argument("--stats", action="store_true",
                           help="print a machine-counter summary table")
            p.add_argument("--profile", action="store_true",
                           help="print per-function cycle attribution")
            p.add_argument("--profile-blocks", action="store_true",
                           help="print per-basic-block cycle/L1 "
                                "attribution (block profiler)")
            p.add_argument("--flamegraph", metavar="PATH", default=None,
                           help="write a collapsed-stack flamegraph "
                                "profile (func;block cycles per line)")
        if name == "bench":
            p.add_argument("--json", action="store_true",
                           help="emit machine-readable benchmark records")
            p.add_argument("--store", metavar="FILE", default=None,
                           help="append a schema-versioned record to a "
                                "BENCH_*.json trajectory file")
            p.add_argument("--bench-name", metavar="NAME", default=None,
                           help="suite name for stored benchmark entries "
                                "(default: source basename)")

    p = sub.add_parser(
        "report",
        help="Fig. 5-8-style overhead decomposition per config "
             "(per-category check cycles measured by the block profiler)",
    )
    p.add_argument("source", help="MiniC source file")
    p.add_argument("--configs", default=None, metavar="A,B",
                   help="comma-separated config subset "
                        "(Base is always included as the baseline)")
    p.add_argument("--checkopt", default=None,
                   choices=CHECKOPT_LEVELS,
                   help="post-codegen check-optimization level (off/safe/aggressive; default from config); at aggressive, report "
                        "additionally attributes per-config savings "
                        "against a checkopt=off rebuild")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--no-prototypes", action="store_true",
                   help="do not prepend the standard T prototypes")
    p.add_argument("--file", action="append",
                   help="name=path: add a RAM-disk file")
    p.add_argument("--password", action="append",
                   help="user=pw: register a stored password")
    p.add_argument("--stdin-hex", default=None,
                   help="hex bytes fed to channel 0")
    p.add_argument("--engine", default="predecoded",
                   choices=("predecoded", "superblock", "reference"),
                   help="execution engine (identical attribution)")
    p.add_argument("--json", action="store_true",
                   help="emit the decomposition as JSON")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome-trace/Perfetto JSON file")
    p.add_argument("--metrics", action="store_true",
                   help="dump all recorded metrics to stderr")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed object cache directory")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="compile configurations with N parallel workers")
    p.set_defaults(handler=cmd_report)

    p = sub.add_parser(
        "build", help="separate compilation: sources -> objects / binary"
    )
    p.add_argument("sources", nargs="+", metavar="SRC",
                   help="MiniC source files, or prebuilt .uo objects")
    p.add_argument("--config", default=OUR_MPX.name,
                   choices=sorted(ALL_CONFIGS))
    p.add_argument("--checkopt", default=None,
                   choices=CHECKOPT_LEVELS,
                   help="post-codegen check-optimization level (off/safe/aggressive; default from config)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--no-prototypes", action="store_true",
                   help="do not prepend the standard T prototypes")
    p.add_argument("--allow-undefined", action="store_true",
                   help="turn declared-but-undefined untrusted functions "
                        "into cross-object externals (implied when "
                        "building several sources)")
    p.add_argument("--out-dir", default=None, metavar="DIR",
                   help="directory for .uo object files "
                        "(default: next to each source)")
    p.add_argument("--link", default=None, metavar="OUT",
                   help="link all objects and write the serialized binary")
    p.add_argument("--entry", default="main",
                   help="entry function for --link (default: main)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="build session parallelism width")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed object cache directory")
    p.set_defaults(handler=cmd_build)

    p = sub.add_parser("cache", help="inspect the object cache")
    p.add_argument("action", choices=("stats", "list", "clear"))
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory (default: $REPRO_CACHE_DIR)")
    p.set_defaults(handler=cmd_cache)

    p = sub.add_parser(
        "fuzz",
        help="adversarial fuzzing + mutation-kill harness "
             "(fully reproducible from --seed)",
    )
    p.add_argument("--engine", default="all",
                   choices=("program", "mutation", "corpus", "witness",
                            "all"),
                   help="program: differential fuzzing of generated "
                        "MiniC; mutation: mutation-kill run against "
                        "ConfVerify; corpus: replay frozen regression "
                        "cases; witness: corrupted-witness kill run "
                        "against the translation checkers; all: "
                        "program + mutation + witness (+ corpus when "
                        "--corpus is given)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; case i uses seed+i (default 0)")
    p.add_argument("--n", type=int, default=20, metavar="N",
                   help="number of generated programs per engine")
    p.add_argument("--size", type=int, default=12, metavar="STMTS",
                   help="statement budget per generated program")
    p.add_argument("--budget", type=float, default=None, metavar="SECS",
                   help="wall-clock cap; a truncated run checks a "
                        "prefix of the same case sequence")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="corpus directory for the corpus engine")
    p.add_argument("--stride", type=int, default=1, metavar="K",
                   help="mutation engine: keep every K-th mutation "
                        "site (deterministic subsample for quick runs)")
    p.add_argument("--no-minimize", action="store_true",
                   help="report raw (unminimized) failing programs")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome-trace/Perfetto JSON file")
    p.add_argument("--metrics", action="store_true",
                   help="dump all recorded metrics to stderr")
    p.set_defaults(handler=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="multi-tenant enclave-fleet serving: fork verified machine "
             "images into per-tenant pools and drive a load through them",
    )
    p.add_argument("--app", default="echo",
                   choices=("webserver", "dirserver", "classifier",
                            "echo"),
                   help="serveable app (see repro.serve.apps)")
    p.add_argument("--config", default=OUR_MPX.name,
                   choices=sorted(ALL_CONFIGS))
    p.add_argument("--checkopt", default=None,
                   choices=CHECKOPT_LEVELS,
                   help="post-codegen check-optimization level (off/safe/aggressive; default from config)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--engine", default="predecoded",
                   choices=("predecoded", "superblock", "reference"),
                   help="execution engine for every fork")
    p.add_argument("--tenants", type=int, default=2, metavar="N",
                   help="number of tenants (default 2)")
    p.add_argument("--pool-size", type=int, default=2, metavar="N",
                   help="machine forks per tenant (default 2)")
    p.add_argument("--requests", type=int, default=100, metavar="N",
                   help="total requests, round-robin over tenants")
    p.add_argument("--batch", type=int, default=1, metavar="N",
                   help="max queued requests a slot drains before "
                        "resetting (1 = reset per request, fully "
                        "deterministic accounting)")
    p.add_argument("--budget", type=int, default=500_000_000,
                   metavar="N",
                   help="per-request instruction budget; exhaustion "
                        "evicts the request and resets the fork")
    p.add_argument("--queue-depth", type=int, default=64, metavar="N",
                   help="per-tenant admission queue depth "
                        "(producers block when full)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip ConfVerify when building the image")
    p.add_argument("--json", action="store_true",
                   help="emit the full serve report as JSON")
    p.add_argument("--store", metavar="FILE", default=None,
                   help="append a serve/<app> record to a BENCH_*.json "
                        "trajectory file")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome-trace file of the serve counters")
    p.add_argument("--metrics", action="store_true",
                   help="dump per-tenant serve counters to stderr")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed object cache directory")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="build session parallelism width")
    p.set_defaults(handler=cmd_serve)
    return parser


def build_bench_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench diff",
        description="compare two BENCH_*.json trajectory records; "
                    "exit 3 when any gated metric regresses beyond "
                    "tolerance",
    )
    parser.add_argument("old", help="baseline trajectory file")
    parser.add_argument("new", help="candidate trajectory file")
    parser.add_argument("--suite", default=None, metavar="NAME",
                        help="compare this suite's latest records only")
    parser.add_argument("--tol-cycles", type=float, default=None,
                        metavar="F",
                        help="relative cycle tolerance (default 0.02)")
    parser.add_argument("--tol-instructions", type=float, default=None,
                        metavar="F",
                        help="relative instruction tolerance "
                             "(default 0.02)")
    parser.add_argument("--tol-wall", type=float, default=None,
                        metavar="F",
                        help="gate wall time too, with this relative "
                             "tolerance (ungated by default: host noise)")
    parser.add_argument("--json", action="store_true",
                        help="emit the diff result as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        # `bench diff` takes two trajectory files, not a source file —
        # dispatch it before the regular bench parser sees the args.
        if argv[:2] == ["bench", "diff"]:
            return cmd_bench_diff(build_bench_diff_parser().parse_args(argv[2:]))
        args = build_parser().parse_args(argv)
        if args.command == "cache":
            return args.handler(args)
        with _session_scope(args):
            return args.handler(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
