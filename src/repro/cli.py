"""Command-line driver: ``python -m repro <command> ...``.

Commands
--------
run      compile a MiniC file and execute it on the simulated machine
verify   compile and run ConfVerify on the result
disasm   compile and print the linked instruction stream
bench    run one source under every configuration and print overheads
stats    per-configuration table of compile-stage times and check counts

Common options: ``--config <name>`` (default OurMPX; see ``repro.config``),
``--file name=path`` to add RAM-disk files, ``--stdin-hex BYTES`` to feed
channel 0, ``--seed N`` for deterministic magic selection.  ``run``,
``bench``, and ``stats`` also take ``--engine {predecoded,reference}``:
the reference engine is the slow one-step-at-a-time interpreter kept as
an executable specification — results are identical, only wall-clock
differs.

Observability: ``--trace out.json`` writes a Chrome-trace/Perfetto file
covering both compiler stages (wall clock) and machine execution
(simulated cycles); ``--metrics`` dumps every recorded counter and
histogram as a table on stderr.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import sys

from .compiler import compile_source
from .config import ALL_CONFIGS, OUR_MPX
from .errors import MachineFault, ReproError
from .link.loader import load
from .obs import events, export
from .runtime.trusted import T_PROTOTYPES, TrustedRuntime


def _read_source(path: str, add_prototypes: bool) -> str:
    with open(path) as handle:
        source = handle.read()
    if add_prototypes and "extern trusted" not in source:
        source = T_PROTOTYPES + source
    return source


def _make_runtime(args) -> TrustedRuntime:
    runtime = TrustedRuntime()
    for spec in args.file or []:
        name, _, path = spec.partition("=")
        with open(path, "rb") as handle:
            runtime.add_file(name, handle.read())
    for spec in args.password or []:
        user, _, pw = spec.partition("=")
        runtime.set_password(user, pw.encode())
    if args.stdin_hex:
        runtime.channel(0).feed(bytes.fromhex(args.stdin_hex))
    return runtime


def _activate_obs(args) -> events.Registry | None:
    """Activate a registry when ``--trace``/``--metrics`` asked for one."""
    if not getattr(args, "trace", None) and not getattr(args, "metrics", False):
        return None
    return events.activate(events.Registry())


def _finish_obs(args, registry: events.Registry | None) -> None:
    """Deactivate and flush the registry (trace file, metrics table)."""
    if registry is None:
        return
    events.deactivate()
    if getattr(args, "trace", None):
        export.write_chrome_trace(registry, args.trace)
    if getattr(args, "metrics", False):
        print(export.render_metrics_table(registry), file=sys.stderr)


def _report_run(args, process, runtime, profiler) -> None:
    # --metrics already dumps the machine counters (and more), so only
    # render the short stats table when it alone was requested.
    if args.stats and not args.metrics:
        stats = process.stats
        rows = [
            ("machine.cycles.wall", process.wall_cycles),
            ("machine.instructions", stats.instructions),
            ("machine.checks{kind=bnd}", stats.bnd_checks),
            ("machine.checks{kind=cfi}", stats.cfi_checks),
            ("machine.t_calls", stats.t_calls),
        ]
        print(export.render_kv_table(rows, title="run stats"), file=sys.stderr)
    if profiler is not None:
        rows = [
            [row.name, f"{row.cycles:,}", f"{row.cycle_share:.1%}",
             row.bnd_checks, row.cfi_checks]
            for row in profiler.report(top=12)
        ]
        print(
            export.render_table(
                ["function", "cycles", "share", "bnd", "cfi"],
                rows,
                title="profile",
            ),
            file=sys.stderr,
        )
    outbox = runtime.channel(1).drain_out()
    if outbox:
        print(
            export.render_kv_table(
                [("channel.1.out", outbox.hex())], title="channels"
            ),
            file=sys.stderr,
        )


def cmd_run(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    config = ALL_CONFIGS[args.config]
    registry = _activate_obs(args)
    try:
        binary = compile_source(source, config, seed=args.seed,
                                verify=args.verify)
        runtime = _make_runtime(args)
        process = load(binary, runtime=runtime, engine=args.engine)
        profiler = None
        if args.profile:
            from .machine.profile import attach_profiler

            profiler = attach_profiler(process.machine)
        try:
            code = process.run()
        except MachineFault as fault:
            print(f"FAULT: {fault}", file=sys.stderr)
            return 2
    finally:
        _finish_obs(args, registry)
    for line in process.stdout:
        print(line)
    _report_run(args, process, runtime, profiler)
    return code & 0xFF


def cmd_verify(args) -> int:
    from .verifier import verify_binary

    source = _read_source(args.source, not args.no_prototypes)
    config = ALL_CONFIGS[args.config]
    registry = _activate_obs(args)
    try:
        binary = compile_source(source, config, seed=args.seed)
        verify_binary(binary)
    finally:
        _finish_obs(args, registry)
    print(f"OK: {args.source} verifies under {config.name}")
    return 0


def cmd_disasm(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    config = ALL_CONFIGS[args.config]
    binary = compile_source(source, config, seed=args.seed)
    addr_to_label = {}
    for name, addr in binary.label_addrs.items():
        addr_to_label.setdefault(addr, []).append(name)
    for addr, insn in enumerate(binary.code):
        for label in addr_to_label.get(addr, []):
            print(f"{label}:")
        print(f"  {addr:6d}  {insn!r}")
    return 0


def cmd_bench(args) -> int:
    source = _read_source(args.source, not args.no_prototypes)
    registry = _activate_obs(args)
    records = []
    base_cycles = None
    try:
        for name, config in ALL_CONFIGS.items():
            binary = compile_source(source, config, seed=args.seed)
            process = load(binary, runtime=_make_runtime(args),
                           engine=args.engine)
            process.run()
            cycles = process.wall_cycles
            if base_cycles is None:
                base_cycles = cycles
            pct = (
                100.0 * (cycles - base_cycles) / base_cycles
                if base_cycles
                else 0.0
            )
            stats = process.stats
            records.append(
                {
                    "config": name,
                    "cycles": cycles,
                    "overhead_pct": round(pct, 2),
                    "instructions": stats.instructions,
                    "checks": {
                        "bnd": stats.bnd_checks,
                        "cfi": stats.cfi_checks,
                        "t_calls": stats.t_calls,
                    },
                }
            )
    finally:
        _finish_obs(args, registry)
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    rows = [
        [
            r["config"],
            f"{r['cycles']:,}",
            f"{r['overhead_pct']:+.1f}%",
            f"{r['instructions']:,}",
            r["checks"]["bnd"],
            r["checks"]["cfi"],
            r["checks"]["t_calls"],
        ]
        for r in records
    ]
    print(
        export.render_table(
            ["config", "cycles", "vs Base", "instrs", "bnd", "cfi", "tcalls"],
            rows,
            title="bench",
        )
    )
    return 0


def cmd_stats(args) -> int:
    """Per-config comparison: compile-stage wall times + dynamic checks."""
    source = _read_source(args.source, not args.no_prototypes)
    all_spans: list[events.Span] = []
    rows = []
    for name, config in ALL_CONFIGS.items():
        registry = events.Registry()
        note = ""
        with events.use(registry):
            binary = compile_source(source, config, seed=args.seed)
            process = load(binary, runtime=_make_runtime(args),
                           engine=args.engine)
            try:
                process.run()
            except MachineFault as fault:
                note = f"FAULT:{fault.kind}"
        wall: dict[str, float] = {}
        for span in registry.spans:
            if span.clock == events.WALL:
                wall[span.name] = wall.get(span.name, 0.0) + span.dur

        def ms(stage: str) -> str:
            return f"{wall.get(stage, 0.0) / 1000.0:.2f}"

        front_us = (
            wall.get("compile.lex", 0.0)
            + wall.get("compile.parse", 0.0)
            + wall.get("compile.sema", 0.0)
        )
        stats = process.stats
        rows.append(
            [
                name,
                ms("compile.total"),
                f"{front_us / 1000.0:.2f}",
                ms("compile.opt"),
                ms("compile.codegen"),
                ms("compile.link"),
                f"{process.wall_cycles:,}",
                stats.bnd_checks,
                stats.cfi_checks,
                stats.t_calls,
                note,
            ]
        )
        if args.trace:
            for span in registry.spans:
                span.args.setdefault("config", name)
            all_spans.extend(registry.spans)
    print(
        export.render_table(
            ["config", "total_ms", "front_ms", "opt_ms", "cg_ms", "link_ms",
             "cycles", "bnd", "cfi", "tcall", "note"],
            rows,
            title="per-config stats",
        )
    )
    if args.trace:
        export.write_chrome_trace(all_spans, args.trace)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ConfLLVM-reproduction toolchain driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("run", cmd_run),
        ("verify", cmd_verify),
        ("disasm", cmd_disasm),
        ("bench", cmd_bench),
        ("stats", cmd_stats),
    ):
        p = sub.add_parser(name)
        p.add_argument("source", help="MiniC source file")
        p.add_argument("--config", default=OUR_MPX.name,
                       choices=sorted(ALL_CONFIGS))
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--no-prototypes", action="store_true",
                       help="do not prepend the standard T prototypes")
        p.add_argument("--file", action="append",
                       help="name=path: add a RAM-disk file")
        p.add_argument("--password", action="append",
                       help="user=pw: register a stored password")
        p.add_argument("--stdin-hex", default=None,
                       help="hex bytes fed to channel 0")
        if name in ("run", "bench", "stats"):
            p.add_argument("--engine", default="predecoded",
                           choices=("predecoded", "reference"),
                           help="execution engine (reference = slow "
                                "debug interpreter; identical results)")
        p.set_defaults(handler=handler)
        if name in ("run", "verify", "bench", "stats"):
            p.add_argument("--trace", metavar="PATH", default=None,
                           help="write a Chrome-trace/Perfetto JSON file")
        if name in ("run", "verify", "bench"):
            p.add_argument("--metrics", action="store_true",
                           help="dump all recorded metrics to stderr")
        if name == "run":
            p.add_argument("--verify", action="store_true",
                           help="run ConfVerify before loading")
            p.add_argument("--stats", action="store_true",
                           help="print a machine-counter summary table")
            p.add_argument("--profile", action="store_true",
                           help="print per-function cycle attribution")
        if name == "bench":
            p.add_argument("--json", action="store_true",
                           help="emit machine-readable benchmark records")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
