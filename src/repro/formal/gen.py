"""Random well-typed program generator for the formal model.

Used by the property-based noninterference tests: generate a program
that passes ``check_program`` by construction, start it from two
low-equivalent configurations that differ arbitrarily in high memory
and high registers, and run them in lockstep.

Commands are emitted together with their Γ/Γ' annotations, mirroring
how ConfVerify reconstructs taints; ``check_program`` then re-validates
everything, so a generator bug cannot silently weaken the test.
"""

from __future__ import annotations

import random

from .model import (
    ARG_REGS,
    BinOp,
    CALLER_SAVE,
    Config,
    Const,
    Function,
    Goto,
    H,
    ICall,
    ICallCheck,
    IfThenElse,
    InDom,
    L,
    Ldr,
    N_REGS,
    Node,
    Program,
    Reg,
    RET_REG,
    RetCheck,
    RetCmd,
    Assert,
    CallU,
    FuncAddr,
    Str,
)

LOW_ADDRS = tuple(range(0, 24))
HIGH_ADDRS = tuple(range(100, 124))


class _FuncBuilder:
    def __init__(self, name, entry_pc, rng, arg_bits, ret_bit):
        self.rng = rng
        self.func = Function(
            name=name,
            trusted=False,
            entry=entry_pc,
            arg_bits=arg_bits,
            ret_bit=ret_bit,
        )
        self.pc = entry_pc
        # Dead registers are conservatively private at entry (§4).
        self.gamma = {r: H for r in range(N_REGS)}
        for i, reg in enumerate(ARG_REGS):
            self.gamma[reg] = arg_bits[i]

    def emit(self, cmd, gamma_out=None, ret_site_bit=None) -> Node:
        node = Node(
            pc=self.pc,
            cmd=cmd,
            gamma=dict(self.gamma),
            gamma_out=dict(gamma_out if gamma_out is not None else self.gamma),
            ret_site_bit=ret_site_bit,
        )
        self.func.nodes[self.pc] = node
        self.pc += 1
        self.gamma = dict(node.gamma_out)
        return node

    # -- typed command helpers ------------------------------------------

    def addr_expr(self, level: int):
        """An address expression evaluating into the level's region.

        Low addresses are derived from constants (so both runs agree);
        occasionally we derive a high address from a private register,
        exercising the private-address case the semantics allows.
        """
        pool = HIGH_ADDRS if level == H else LOW_ADDRS
        base = Const(self.rng.choice(pool))
        if level == H and self.rng.random() < 0.3:
            # high base + (private reg & 7): address depends on a secret
            priv_regs = [r for r, l in self.gamma.items() if l == H]
            if priv_regs:
                reg = self.rng.choice(priv_regs)
                offset = BinOp(
                    "mul",
                    BinOp("lt", Reg(reg), Const(1 << 14)),
                    Const(self.rng.randrange(4)),
                )
                return BinOp("add", Const(self.rng.choice(pool[:-4])), offset)
        return base

    def emit_load(self) -> None:
        level = self.rng.choice((L, H))
        addr = self.addr_expr(level)
        reg = self.rng.randrange(N_REGS)
        self.emit(Assert(InDom(addr, level)))
        out = dict(self.gamma)
        out[reg] = level
        self.emit(Ldr(reg, addr), gamma_out=out)

    def emit_store(self) -> None:
        reg = self.rng.randrange(N_REGS)
        src_level = self.gamma[reg]
        # Region must be at least as high as the source.
        level = H if src_level == H else self.rng.choice((L, H))
        addr = self.addr_expr(level)
        self.emit(Assert(InDom(addr, level)))
        self.emit(Str(reg, addr))

    def emit_branch_diamond(self, body_len: int = 2) -> None:
        low_regs = [r for r, l in self.gamma.items() if l == L]
        cond = (
            BinOp("lt", Reg(self.rng.choice(low_regs)), Const(1 << 13))
            if low_regs
            else Const(self.rng.randrange(2))
        )
        branch_pc = self.pc
        # Reserve the branch node; fill targets when known.
        self.emit(Goto(Const(0)))  # placeholder, replaced below
        then_pc = self.pc
        for _ in range(body_len):
            self.emit_load()
        join_jump_pc = self.pc
        self.emit(Goto(Const(0)))  # placeholder to join
        else_pc = self.pc
        gamma_at_else = dict(self.func.nodes[branch_pc].gamma)
        saved = self.gamma
        self.gamma = dict(gamma_at_else)
        for _ in range(body_len):
            self.emit_store()
        join_pc = self.pc
        # Join taints: pointwise max of both arms (Γ' ⊑ Γ of the join
        # holds for each arm by construction).
        merged = {
            r: max(saved.get(r, L), self.gamma.get(r, L))
            for r in range(N_REGS)
        }
        # Patch the placeholders.
        self.func.nodes[branch_pc].cmd = IfThenElse(
            cond, Const(then_pc), Const(else_pc)
        )
        self.func.nodes[join_jump_pc].cmd = Goto(Const(join_pc))
        self.gamma = merged

    def finish_with_ret(self) -> None:
        # The return value register must be ⊑ ret_bit: load it freshly.
        level = self.func.ret_bit
        addr = self.addr_expr(level)
        self.emit(Assert(InDom(addr, level)))
        out = dict(self.gamma)
        out[RET_REG] = level
        self.emit(Ldr(RET_REG, addr), gamma_out=out)
        self.emit(Assert(RetCheck(self.func.ret_bit)))
        self.emit(RetCmd())


def generate_program(seed: int, size: int | None = None) -> Program:
    """A random well-typed two-function program.

    ``size`` fixes the number of top-level items in ``main`` (the fuzz
    seed-matrix sweeps it); left as None the item count is drawn from
    the seed as before, so existing seeds keep their programs.
    """
    rng = random.Random(seed)
    callee_bits = tuple(rng.choice((L, H)) for _ in range(4))
    callee_ret = rng.choice((L, H))

    callee = _FuncBuilder("f", 1000, rng, callee_bits, callee_ret)
    for _ in range(rng.randrange(1, 4)):
        rng.choice((callee.emit_load, callee.emit_store))()
    callee.finish_with_ret()

    main = _FuncBuilder("main", 0, rng, (L, L, L, L), L)
    n_items = rng.randrange(2, 6) if size is None else size
    for _ in range(n_items):
        choice = rng.randrange(4)
        if choice == 0:
            main.emit_load()
        elif choice == 1:
            main.emit_store()
        elif choice == 2:
            main.emit_branch_diamond()
        else:
            _emit_call(main, callee.func, rng)
    main.finish_with_ret()

    program = Program(
        functions={"main": main.func, "f": callee.func},
        entry_function="main",
    )
    return program


def _emit_call(builder: _FuncBuilder, callee: Function, rng) -> None:
    args = []
    for i in range(4):
        want = callee.arg_bits[i]
        candidates = [
            r for r, l in builder.gamma.items() if l <= want
        ]
        if candidates:
            args.append(Reg(rng.choice(candidates)))
        else:
            args.append(Const(rng.randrange(16)))
    out = dict(builder.gamma)
    for r in CALLER_SAVE:
        out[r] = H
    out[RET_REG] = callee.ret_bit
    indirect = rng.random() < 0.4
    if indirect:
        target = FuncAddr(callee.name)
        builder.emit(
            Assert(ICallCheck(target, callee.arg_bits, callee.ret_bit))
        )
        builder.emit(ICall(target, tuple(args)), gamma_out=out)
    else:
        builder.emit(CallU(callee.name, tuple(args)), gamma_out=out)
    # The instruction after the call is the return site: tag it with
    # the callee's MRet taint bit (it is a harmless assert, so the
    # fall-through execution is a no-op).
    pad = builder.emit(Assert(InDom(Const(LOW_ADDRS[0]), L)))
    pad.ret_site_bit = callee.ret_bit


def initial_pair(program: Program, seed: int) -> tuple[Config, Config]:
    """Two low-equivalent initial configurations differing in secrets."""
    rng = random.Random(seed ^ 0x5EED)
    mu_low = {a: rng.randrange(1 << 15) for a in LOW_ADDRS}
    high1 = {a: rng.randrange(1 << 15) for a in HIGH_ADDRS}
    high2 = {a: rng.randrange(1 << 15) for a in HIGH_ADDRS}
    rho1 = [rng.randrange(1 << 15) for _ in range(N_REGS)]
    rho2 = list(rho1)
    entry = program.functions[program.entry_function]
    entry_node = entry.nodes[entry.entry]
    for reg, level in entry_node.gamma.items():
        if level == H:
            rho2[reg] = rng.randrange(1 << 15)
    c1 = Config(dict(mu_low), high1, rho1, [], [], entry.entry)
    c2 = Config(dict(mu_low), high2, rho2, [], [], entry.entry)
    return c1, c2
