"""The Appendix-A formal model: abstract machine + verifier type system.

Implements the paper's formalization of ConfVerify:

* **Syntax** (Table 1): commands ``ldr``, ``str``, ``goto``,
  ``ifthenelse``, ``ret``, ``call_U``/``call_T``, ``icall``, ``assert``
  over expressions (constants, registers, unary/binary operators, and
  ``&f`` function addresses);
* **Operational semantics** (Figure 9): configurations
  ``⟨ν, µ, ρ, [σ_H : σ_L], pc⟩`` with disjoint low/high memories,
  split stacks, the adversarial state ``☠`` for out-of-CFG transfers,
  and ``⊥`` for failed asserts;
* **Type system** (Figure 10): flow-sensitive register taints with the
  runtime-check side conditions (an assert dominating every ``ldr``/
  ``str``, magic-bit agreement at calls and returns, low branch
  conditions);
* the **well-typedness checker** ``check_program`` (⊢ G), and
* the ingredients of Theorem 1: :func:`low_equiv` and
  :func:`run_lockstep`, which the property-based tests use to check
  termination-insensitive noninterference on generated programs.

Magic sequences are modelled abstractly as the taint-bit tuples they
encode, exactly as the appendix does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

L, H = 0, 1
N_REGS = 6  # reg0 is the return register; reg1..reg4 are arguments
ARG_REGS = (1, 2, 3, 4)
RET_REG = 0
# The model has no callee-save registers: every register is clobbered
# by (hence conservatively private after) a call, like the paper's
# caller-save rule.
CALLER_SAVE = (1, 2, 3, 4, 5)

# ---------------------------------------------------------------------------
# Expressions


@dataclass(frozen=True)
class Const:
    value: int


@dataclass(frozen=True)
class Reg:
    index: int


@dataclass(frozen=True)
class BinOp:
    op: str  # add/sub/mul/xor/lt/eq
    a: "Expr"
    b: "Expr"


@dataclass(frozen=True)
class FuncAddr:
    name: str


Expr = Const | Reg | BinOp | FuncAddr

# -- assert payloads (the runtime checks of Section 5.2) --------------------


@dataclass(frozen=True)
class InDom:
    """``e ∈ Dom(µ_level)`` — the region check before a ldr/str."""

    expr: Expr
    level: int


@dataclass(frozen=True)
class ICallCheck:
    """Magic check at an indirect call: target in G with these bits."""

    target: Expr
    arg_bits: tuple[int, int, int, int]
    ret_bit: int


@dataclass(frozen=True)
class RetCheck:
    """Magic check at return: the site's return-taint bit."""

    ret_bit: int


Check = InDom | ICallCheck | RetCheck

# ---------------------------------------------------------------------------
# Commands


@dataclass(frozen=True)
class Ldr:
    reg: int
    addr: Expr


@dataclass(frozen=True)
class Str:
    reg: int
    addr: Expr


@dataclass(frozen=True)
class Goto:
    target: Expr


@dataclass(frozen=True)
class IfThenElse:
    cond: Expr
    then_target: Expr
    else_target: Expr


@dataclass(frozen=True)
class RetCmd:
    pass


@dataclass(frozen=True)
class CallU:
    func: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class CallT:
    func: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class ICall:
    target: Expr
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Assert:
    check: Check


Cmd = Ldr | Str | Goto | IfThenElse | RetCmd | CallU | CallT | ICall | Assert


@dataclass
class Node:
    pc: int
    cmd: Cmd
    gamma: dict[int, int]  # register taints before
    gamma_out: dict[int, int]  # register taints after
    # For nodes that are valid return sites (pc just after a call):
    # the taint bit of the MRet magic word preceding them.
    ret_site_bit: int | None = None


@dataclass
class Function:
    name: str
    trusted: bool
    entry: int
    arg_bits: tuple[int, int, int, int]
    ret_bit: int
    nodes: dict[int, Node] = field(default_factory=dict)  # untrusted only


@dataclass
class Program:
    functions: dict[str, Function]
    entry_function: str

    def node(self, pc: int) -> Node | None:
        for func in self.functions.values():
            if pc in func.nodes:
                return func.nodes[pc]
        return None

    def function_at(self, pc: int) -> Function | None:
        for func in self.functions.values():
            if func.entry == pc:
                return func
        return None


# ---------------------------------------------------------------------------
# Configurations and operational semantics (Figure 9)

BOTTOM = "⊥"  # halted safely on a failed assert
ADVERSARY = "☠"  # escaped the CFG — the attacker state
DONE = "∎"  # the entry function returned (final configuration)


@dataclass
class Config:
    mu_low: dict[int, int]
    mu_high: dict[int, int]
    rho: list[int]
    sigma_low: list[int]
    sigma_high: list[int]
    pc: int

    def copy(self) -> "Config":
        return Config(
            dict(self.mu_low),
            dict(self.mu_high),
            list(self.rho),
            list(self.sigma_low),
            list(self.sigma_high),
            self.pc,
        )


# Trusted functions are Python callables Config -> Config (they model
# the ↪_f relation and are *assumed* noninterfering, Assumption 1).
TrustedImpl = object


def eval_expr(expr: Expr, config: Config, program: Program) -> int:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Reg):
        return config.rho[expr.index]
    if isinstance(expr, FuncAddr):
        return program.functions[expr.name].entry
    if isinstance(expr, BinOp):
        a = eval_expr(expr.a, config, program)
        b = eval_expr(expr.b, config, program)
        if expr.op == "add":
            return (a + b) & 0xFFFF
        if expr.op == "sub":
            return (a - b) & 0xFFFF
        if expr.op == "mul":
            return (a * b) & 0xFFFF
        if expr.op == "xor":
            return a ^ b
        if expr.op == "lt":
            return 1 if a < b else 0
        if expr.op == "eq":
            return 1 if a == b else 0
        raise ValueError(expr.op)
    raise ValueError(expr)


def eval_check(check: Check, config: Config, program: Program) -> bool:
    if isinstance(check, InDom):
        addr = eval_expr(check.expr, config, program)
        domain = config.mu_high if check.level == H else config.mu_low
        return addr in domain
    if isinstance(check, ICallCheck):
        target = eval_expr(check.target, config, program)
        func = program.function_at(target)
        if func is None:
            return False
        return (
            func.arg_bits == check.arg_bits and func.ret_bit == check.ret_bit
        )
    if isinstance(check, RetCheck):
        if not config.sigma_low:
            # Returning from the entry function: the loader-provided
            # start thunk is a valid return site for any taint.
            return True
        adr = config.sigma_low[-1]
        # The return site's magic must carry this ret bit: model as the
        # target node being tagged via the program's site table.
        site = program.node(adr)
        return site is not None and getattr(site, "ret_site_bit", None) == check.ret_bit
    raise ValueError(check)


def step(
    config: Config, program: Program, trusted_impls: dict[str, object]
):
    """One transition; returns a Config, BOTTOM, or ADVERSARY."""
    node = program.node(config.pc)
    if node is None:
        return ADVERSARY
    cmd = node.cmd
    nxt = config.copy()
    if isinstance(cmd, Ldr):
        addr = eval_expr(cmd.addr, config, program)
        if addr in config.mu_low:
            nxt.rho[cmd.reg] = config.mu_low[addr]
        elif addr in config.mu_high:
            nxt.rho[cmd.reg] = config.mu_high[addr]
        else:
            return ADVERSARY
        nxt.pc = config.pc + 1
        return nxt
    if isinstance(cmd, Str):
        addr = eval_expr(cmd.addr, config, program)
        if addr in config.mu_low:
            nxt.mu_low[addr] = config.rho[cmd.reg]
        elif addr in config.mu_high:
            nxt.mu_high[addr] = config.rho[cmd.reg]
        else:
            return ADVERSARY
        nxt.pc = config.pc + 1
        return nxt
    if isinstance(cmd, Goto):
        nxt.pc = eval_expr(cmd.target, config, program)
        return nxt
    if isinstance(cmd, IfThenElse):
        taken = eval_expr(cmd.cond, config, program)
        target = cmd.then_target if taken else cmd.else_target
        nxt.pc = eval_expr(target, config, program)
        return nxt
    if isinstance(cmd, RetCmd):
        if not nxt.sigma_low:
            return DONE  # the entry function returned
        adr = nxt.sigma_low.pop()
        if program.node(adr) is None:
            return ADVERSARY
        nxt.pc = adr
        return nxt
    if isinstance(cmd, CallU):
        func = program.functions[cmd.func]
        for i, arg in enumerate(cmd.args[:4]):
            nxt.rho[ARG_REGS[i]] = eval_expr(arg, config, program)
        nxt.sigma_low.append(config.pc + 1)
        nxt.pc = func.entry
        return nxt
    if isinstance(cmd, CallT):
        impl = trusted_impls[cmd.func]
        for i, arg in enumerate(cmd.args[:4]):
            nxt.rho[ARG_REGS[i]] = eval_expr(arg, config, program)
        nxt = impl(nxt)
        nxt.pc = config.pc + 1
        return nxt
    if isinstance(cmd, ICall):
        target = eval_expr(cmd.target, config, program)
        func = program.function_at(target)
        if func is None:
            return ADVERSARY
        for i, arg in enumerate(cmd.args[:4]):
            nxt.rho[ARG_REGS[i]] = eval_expr(arg, config, program)
        nxt.sigma_low.append(config.pc + 1)
        nxt.pc = target
        return nxt
    if isinstance(cmd, Assert):
        if eval_check(cmd.check, config, program):
            nxt.pc = config.pc + 1
            return nxt
        return BOTTOM
    raise ValueError(cmd)


# ---------------------------------------------------------------------------
# Type system (Figure 10)


class TypeError_(Exception):
    """The formal checker's rejection (named to avoid the builtin)."""


def expr_level(expr: Expr, gamma: dict[int, int]) -> int:
    if isinstance(expr, (Const, FuncAddr)):
        return L
    if isinstance(expr, Reg):
        return gamma[expr.index]
    if isinstance(expr, BinOp):
        return max(expr_level(expr.a, gamma), expr_level(expr.b, gamma))
    raise ValueError(expr)


def _preds(func: Function, pc: int) -> list[Node]:
    preds = []
    for node in func.nodes.values():
        cmd = node.cmd
        targets: list[int] = []
        if isinstance(cmd, Goto) and isinstance(cmd.target, Const):
            targets = [cmd.target.value]
        elif isinstance(cmd, IfThenElse):
            for t in (cmd.then_target, cmd.else_target):
                if isinstance(t, Const):
                    targets.append(t.value)
        elif not isinstance(cmd, (RetCmd,)):
            targets = [node.pc + 1]
        if pc in targets:
            preds.append(node)
    return preds


def check_node(func: Function, node: Node, program: Program) -> None:
    """G ⊢ Γ {pc} Γ' for one node (the Figure 10 rules)."""
    gamma = node.gamma
    gamma_out = node.gamma_out
    cmd = node.cmd

    def require(cond: bool, why: str) -> None:
        if not cond:
            raise TypeError_(f"{func.name}@{node.pc}: {why}")

    def preds_assert(pred_check) -> None:
        preds = _preds(func, node.pc)
        require(bool(preds), "no predecessors carry the required check")
        for pred in preds:
            ok = isinstance(pred.cmd, Assert) and pred_check(pred.cmd.check)
            require(ok, f"predecessor @{pred.pc} lacks the required assert")

    if isinstance(cmd, Ldr):
        level = gamma_out.get(cmd.reg, L)
        preds_assert(
            lambda c: isinstance(c, InDom)
            and c.expr == cmd.addr
            and c.level == level
        )
        expected = dict(gamma)
        expected[cmd.reg] = level
        require(gamma_out == expected, "ldr output taints wrong")
    elif isinstance(cmd, Str):
        # Find the dominating region check to learn ℓe.
        preds = _preds(func, node.pc)
        require(bool(preds), "str without predecessors")
        levels = set()
        for pred in preds:
            require(
                isinstance(pred.cmd, Assert)
                and isinstance(pred.cmd.check, InDom)
                and pred.cmd.check.expr == cmd.addr,
                "str without a region check",
            )
            levels.add(pred.cmd.check.level)
        require(len(levels) == 1, "ambiguous region level")
        level = levels.pop()
        require(gamma[cmd.reg] <= level, "private store to public region")
        require(gamma_out == gamma, "str must not change taints")
    elif isinstance(cmd, (Goto, IfThenElse)):
        exprs = [cmd.target] if isinstance(cmd, Goto) else [cmd.cond]
        for e in exprs:
            require(expr_level(e, gamma) == L, "branch/jump on private data")
        require(gamma_out == gamma, "jump must not change taints")
    elif isinstance(cmd, (CallU, CallT, ICall)):
        if isinstance(cmd, ICall):
            require(
                expr_level(cmd.target, gamma) == L, "private function pointer"
            )
            bits = None
            preds_assert(
                lambda c: isinstance(c, ICallCheck) and c.target == cmd.target
            )
            pred = _preds(func, node.pc)[0]
            bits = pred.cmd.check.arg_bits
            ret_bit = pred.cmd.check.ret_bit
        else:
            callee = program.functions[cmd.func]
            bits = callee.arg_bits
            ret_bit = callee.ret_bit
        for i, arg in enumerate(cmd.args[:4]):
            require(
                expr_level(arg, gamma) <= bits[i],
                f"argument {i} taint exceeds callee expectation",
            )
        expected = dict(gamma)
        expected[RET_REG] = ret_bit
        for r in CALLER_SAVE:
            expected[r] = H
        require(gamma_out == expected, "post-call taints wrong")
    elif isinstance(cmd, RetCmd):
        require(
            gamma[RET_REG] <= func.ret_bit,
            "private return value declared public",
        )
        preds_assert(
            lambda c: isinstance(c, RetCheck) and c.ret_bit == func.ret_bit
        )
        require(gamma_out == gamma, "ret must not change taints")
    elif isinstance(cmd, Assert):
        require(gamma_out == gamma, "assert must not change taints")
    else:  # pragma: no cover
        raise TypeError_(f"unknown command {cmd!r}")


def check_program(program: Program) -> None:
    """⊢ G: every untrusted node satisfies Figure 10 and successor
    taints are consistent (Γ' ⊑ Γ of each successor)."""
    for func in program.functions.values():
        if func.trusted:
            continue
        entry_node = func.nodes.get(func.entry)
        if entry_node is None:
            raise TypeError_(f"{func.name}: missing entry node")
        # Entry taints come from the magic bits.
        for i, reg in enumerate(ARG_REGS):
            if entry_node.gamma.get(reg, L) != func.arg_bits[i]:
                raise TypeError_(
                    f"{func.name}: entry taints disagree with magic bits"
                )
        for node in func.nodes.values():
            check_node(func, node, program)
            for succ_pc in _successor_pcs(node):
                succ = func.nodes.get(succ_pc)
                if succ is None:
                    raise TypeError_(
                        f"{func.name}@{node.pc}: successor {succ_pc} missing"
                    )
                for reg, level in node.gamma_out.items():
                    if level > succ.gamma.get(reg, L):
                        raise TypeError_(
                            f"{func.name}@{node.pc}: taint not ⊑ successor"
                        )


def _successor_pcs(node: Node) -> list[int]:
    cmd = node.cmd
    if isinstance(cmd, RetCmd):
        return []
    if isinstance(cmd, Goto):
        return [cmd.target.value] if isinstance(cmd.target, Const) else []
    if isinstance(cmd, IfThenElse):
        out = []
        for t in (cmd.then_target, cmd.else_target):
            if isinstance(t, Const):
                out.append(t.value)
        return out
    if isinstance(cmd, (CallU, ICall)):
        # Control returns to pc+1 eventually; the direct successor in
        # the caller's node graph is pc+1.
        return [node.pc + 1]
    return [node.pc + 1]


# ---------------------------------------------------------------------------
# Noninterference (Theorem 1)


def low_equiv(s1: Config, s2: Config, program: Program) -> bool:
    """s1 =_L s2 per the paper: same pc, equal low stacks, equal low
    memories, and equal registers wherever Γ says L."""
    if s1.pc != s2.pc:
        return False
    if s1.sigma_low != s2.sigma_low:
        return False
    if s1.mu_low != s2.mu_low:
        return False
    node = program.node(s1.pc)
    if node is not None:
        for reg, level in node.gamma.items():
            if level == L and s1.rho[reg] != s2.rho[reg]:
                return False
    return True


def run_lockstep(
    s1: Config,
    s2: Config,
    program: Program,
    trusted_impls: dict[str, object],
    max_steps: int = 200,
):
    """Run two low-equivalent configurations in lockstep, checking
    low-equivalence after every step (the inductive heart of Theorem
    1).  Returns ("ok", steps) or ("bottom", steps) when either run
    halts on a failed assert (termination-insensitivity) — and raises
    AssertionError on a noninterference violation."""
    for i in range(max_steps):
        n1 = step(s1, program, trusted_impls)
        n2 = step(s2, program, trusted_impls)
        if n1 == BOTTOM or n2 == BOTTOM:
            return ("bottom", i)
        if n1 == DONE or n2 == DONE:
            assert n1 == n2 == DONE, "lockstep divergence at termination"
            return ("done", i)
        if n1 == ADVERSARY or n2 == ADVERSARY:
            # ⊢ G rules this out (Lemma 1); reaching it is a bug.
            raise AssertionError("well-typed program reached ☠")
        assert low_equiv(n1, n2, program), (
            f"noninterference violated at step {i}, pc={n1.pc}"
        )
        s1, s2 = n1, n2
        node = program.node(s1.pc)
        if node is None:
            return ("done", i)
    return ("ok", max_steps)
