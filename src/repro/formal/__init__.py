"""The Appendix-A formal model and noninterference harness."""

from .gen import generate_program, initial_pair
from .model import (
    ADVERSARY,
    BOTTOM,
    DONE,
    Config,
    Program,
    TypeError_,
    check_program,
    low_equiv,
    run_lockstep,
    step,
)

__all__ = [
    "check_program",
    "step",
    "low_equiv",
    "run_lockstep",
    "generate_program",
    "initial_pair",
    "Program",
    "Config",
    "TypeError_",
    "BOTTOM",
    "ADVERSARY",
    "DONE",
]
