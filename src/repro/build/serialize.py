"""Stable, versioned serialization for build artifacts.

``UObject`` (the pre-link compilation unit) and ``Binary`` (the linked
program) both get a canonical byte representation:

* the envelope is canonical JSON (sorted keys, compact separators,
  ASCII) carrying a ``format`` version tag and a ``kind`` discriminator;
* every ISA instruction, memory operand, and metadata record is encoded
  as a tagged node ``{"$": <class>, "f": {<field>: <value>}}`` built
  from its dataclass fields, so the format tracks the ISA definition
  automatically;
* taints are tagged (they must round-trip to real ``Taint`` enum
  members — the linker compares them by identity) and byte strings are
  hex-encoded.

Canonical bytes give the project its equality oracle: two artifacts are
*bit-identical* iff their dumps compare equal, which is what the
cold/warm-cache and serial/parallel determinism tests pin.

The same canonical encoding powers content addressing:
:func:`source_hash`, :func:`config_fingerprint`, and
:func:`object_cache_key` derive the cache key (format version, source
hash, config fingerprint, seed) used by
:class:`repro.build.cache.ObjectCache`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json

from ..backend import isa
from ..config import BuildConfig
from ..errors import ReproError
from ..ir.core import ExternSig, IRGlobal
from ..link.layout import make_layout
from ..link.objfile import Binary, CompiledFunction, UObject
from ..minic.types import (
    ArrayType,
    FuncType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
)
from ..taint.lattice import Taint

#: Bump whenever the encoded shape of any artifact changes; cached
#: objects written under a different version are never read back.
#: v2: binaries carry the ``check_sites`` map (addr -> check category).
#: v3: BuildConfig gained the ``checkopt`` level (part of the config
#: fingerprint, so differently-checkopted units never share a cache
#: entry).
FORMAT_VERSION = 3


class SerializeError(ReproError):
    """An artifact could not be encoded or decoded."""


# ---------------------------------------------------------------------------
# Tagged-node codec for ISA instructions and metadata dataclasses.

def _collect_node_classes() -> dict[str, type]:
    classes: dict[str, type] = {}
    for name in dir(isa):
        obj = getattr(isa, name)
        if not inspect.isclass(obj) or not dataclasses.is_dataclass(obj):
            continue
        if issubclass(obj, isa.Insn) or obj in (isa.Mem, isa.Imm):
            classes[obj.__name__] = obj
    classes["IRGlobal"] = IRGlobal
    classes["CompiledFunction"] = CompiledFunction
    return classes


_NODE_CLASSES = _collect_node_classes()


def _enc(value):
    if isinstance(value, Taint):
        return {"$": "Taint", "v": int(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"$": "bytes", "h": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_enc(item) for item in value]
    cls = type(value)
    if cls.__name__ in _NODE_CLASSES and dataclasses.is_dataclass(value):
        fields = {
            f.name: _enc(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"$": cls.__name__, "f": fields}
    raise SerializeError(f"cannot serialize {cls.__name__}: {value!r}")


def _dec(value):
    if isinstance(value, dict):
        tag = value.get("$")
        if tag == "Taint":
            return Taint(value["v"])
        if tag == "bytes":
            return bytes.fromhex(value["h"])
        cls = _NODE_CLASSES.get(tag)
        if cls is None:
            raise SerializeError(f"unknown node tag {tag!r}")
        return cls(**{name: _dec(v) for name, v in value["f"].items()})
    if isinstance(value, list):
        return [_dec(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# MiniC type codec (for extern signatures).

def _enc_taint(taint) -> int:
    if isinstance(taint, Taint):
        return int(taint)
    raise SerializeError(
        f"signature taint is not concrete: {taint!r} (inference residue?)"
    )


def _enc_type(t: Type):
    if isinstance(t, VoidType):
        return {"$": "void"}
    if isinstance(t, IntType):
        return {"$": "int", "w": t.width, "t": _enc_taint(t.taint)}
    if isinstance(t, PointerType):
        return {"$": "ptr", "p": _enc_type(t.pointee), "t": _enc_taint(t.taint)}
    if isinstance(t, ArrayType):
        return {"$": "arr", "e": _enc_type(t.elem), "n": t.count}
    if isinstance(t, StructType):
        return {
            "$": "struct",
            "name": t.name,
            "t": _enc_taint(t.taint),
            "fields": [[f.name, _enc_type(f.type)] for f in t.fields],
        }
    if isinstance(t, FuncType):
        return {
            "$": "fn",
            "r": _enc_type(t.ret),
            "p": [_enc_type(p) for p in t.params],
            "v": t.varargs,
        }
    raise SerializeError(f"cannot serialize type {t!r}")


def _dec_type(doc) -> Type:
    tag = doc["$"]
    if tag == "void":
        return VoidType()
    if tag == "int":
        return IntType(doc["w"], Taint(doc["t"]))
    if tag == "ptr":
        return PointerType(_dec_type(doc["p"]), Taint(doc["t"]))
    if tag == "arr":
        return ArrayType(_dec_type(doc["e"]), doc["n"])
    if tag == "struct":
        struct = StructType(doc["name"], Taint(doc["t"]))
        struct.set_fields([(n, _dec_type(t)) for n, t in doc["fields"]])
        return struct
    if tag == "fn":
        return FuncType(
            _dec_type(doc["r"]), [_dec_type(p) for p in doc["p"]], doc["v"]
        )
    raise SerializeError(f"unknown type tag {tag!r}")


def _enc_sig(sig: ExternSig):
    return {
        "name": sig.name,
        "sig": _enc_type(sig.sig),
        "arg_taints": [_enc_taint(t) for t in sig.arg_taints],
        "ret_taint": _enc_taint(sig.ret_taint),
    }


def _dec_sig(doc) -> ExternSig:
    return ExternSig(
        name=doc["name"],
        sig=_dec_type(doc["sig"]),
        arg_taints=[Taint(t) for t in doc["arg_taints"]],
        ret_taint=Taint(doc["ret_taint"]),
    )


# ---------------------------------------------------------------------------
# Canonical envelope helpers.

def _canon(doc) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def _open_envelope(data: bytes, kind: str) -> dict:
    try:
        doc = json.loads(data.decode())
    except (ValueError, UnicodeDecodeError) as error:
        raise SerializeError(f"corrupt {kind} artifact: {error}")
    if not isinstance(doc, dict):
        raise SerializeError(f"corrupt {kind} artifact: not an object")
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise SerializeError(
            f"unsupported {kind} format version {version!r} "
            f"(this toolchain writes v{FORMAT_VERSION})"
        )
    if doc.get("kind") != kind:
        raise SerializeError(
            f"artifact kind mismatch: expected {kind!r}, got {doc.get('kind')!r}"
        )
    return doc


def _enc_config(config: BuildConfig) -> dict:
    return dataclasses.asdict(config)


def _dec_config(doc) -> BuildConfig:
    return BuildConfig(**doc)


# ---------------------------------------------------------------------------
# UObject.

def dump_uobject(obj: UObject) -> bytes:
    """Serialize a pre-link compilation unit to canonical bytes."""
    doc = {
        "format": FORMAT_VERSION,
        "kind": "uobject",
        "name": obj.name,
        "config": _enc_config(obj.config),
        "functions": [_enc(f) for f in obj.functions],
        # Pair list, not a JSON object: the linker places globals in
        # dict insertion order, and _canon sorts object keys.
        "globals": [[name, _enc(g)] for name, g in obj.globals.items()],
        "imports": [_enc_sig(s) for s in obj.imports],
        "externals": [_enc_sig(s) for s in obj.externals],
    }
    return _canon(doc)


def load_uobject(data: bytes) -> UObject:
    """Reconstruct a compilation unit from :func:`dump_uobject` bytes."""
    doc = _open_envelope(data, "uobject")
    return UObject(
        name=doc["name"],
        functions=[_dec(f) for f in doc["functions"]],
        globals={name: _dec(g) for name, g in doc["globals"]},
        imports=[_dec_sig(s) for s in doc["imports"]],
        config=_dec_config(doc["config"]),
        externals=[_dec_sig(s) for s in doc["externals"]],
    )


# ---------------------------------------------------------------------------
# Binary.

def dump_binary(binary: Binary) -> bytes:
    """Serialize a linked binary to canonical bytes.

    Byte equality of two dumps is the determinism contract's definition
    of "bit-identical binaries".
    """
    layout = binary.layout
    if layout is None:
        raise SerializeError("binary has no layout (not linked?)")
    doc = {
        "format": FORMAT_VERSION,
        "kind": "binary",
        "config": _enc_config(binary.config),
        "code": [_enc(insn) for insn in binary.code],
        "label_addrs": dict(sorted(binary.label_addrs.items())),
        "func_magic_addrs": dict(sorted(binary.func_magic_addrs.items())),
        "global_addrs": dict(sorted(binary.global_addrs.items())),
        "global_inits": [
            [addr, _enc(init)] for addr, init in binary.global_inits
        ],
        "imports": [_enc_sig(s) for s in binary.imports],
        "externals_table_addr": binary.externals_table_addr,
        "entry": binary.entry,
        "mcall_prefix": binary.mcall_prefix,
        "mret_prefix": binary.mret_prefix,
        "function_order": list(binary.function_order),
        "layout": {
            "scheme": layout.scheme,
            "split_memory": layout.split_memory,
            "pub_globals_size": layout.pub_globals_size,
            "priv_globals_size": layout.priv_globals_size,
        },
        "read_only_ranges": [[lo, hi] for lo, hi in binary.read_only_ranges],
        "check_sites": [
            [addr, kind] for addr, kind in sorted(binary.check_sites.items())
        ],
    }
    return _canon(doc)


def load_binary(data: bytes) -> Binary:
    """Reconstruct a linked, loadable binary from :func:`dump_binary`."""
    doc = _open_envelope(data, "binary")
    binary = Binary(
        code=[_dec(insn) for insn in doc["code"]],
        label_addrs=dict(doc["label_addrs"]),
        func_magic_addrs=dict(doc["func_magic_addrs"]),
        global_addrs=dict(doc["global_addrs"]),
        global_inits=[(addr, _dec(init)) for addr, init in doc["global_inits"]],
        imports=[_dec_sig(s) for s in doc["imports"]],
        externals_table_addr=doc["externals_table_addr"],
        entry=doc["entry"],
        config=_dec_config(doc["config"]),
        mcall_prefix=doc["mcall_prefix"],
        mret_prefix=doc["mret_prefix"],
        function_order=list(doc["function_order"]),
    )
    lay = doc["layout"]
    binary.layout = make_layout(
        lay["scheme"],
        lay["split_memory"],
        lay["pub_globals_size"],
        lay["priv_globals_size"],
    )
    binary.read_only_ranges = [(lo, hi) for lo, hi in doc["read_only_ranges"]]
    binary.check_sites = {addr: kind for addr, kind in doc["check_sites"]}
    return binary


# ---------------------------------------------------------------------------
# Content addressing.

def _hexdigest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def source_hash(source: str) -> str:
    """Content hash of one compilation unit's source text."""
    return _hexdigest(source.encode())


def config_fingerprint(config: BuildConfig) -> str:
    """Content hash of every field of a build configuration."""
    return _hexdigest(_canon(_enc_config(config)))


def object_cache_key(
    source: str,
    config: BuildConfig,
    seed: int | None,
    allow_undefined: bool = False,
) -> str:
    """The content-addressed cache key for one compiled unit.

    Key components: serialization format version, source hash, config
    fingerprint, link seed, and the separate-compilation mode flag.
    Distinct configs and distinct seeds can never collide — each
    component is hashed into the digest.
    """
    parts = "\0".join(
        (
            f"v{FORMAT_VERSION}",
            source_hash(source),
            config_fingerprint(config),
            repr(seed),
            repr(bool(allow_undefined)),
        )
    )
    return _hexdigest(parts.encode())
