"""Content-addressed on-disk object cache.

Stores serialized pre-link :class:`~repro.link.objfile.UObject` blobs
under their :func:`~repro.build.serialize.object_cache_key` digest:

    <root>/<first two hex chars>/<digest>.uo

Writes are atomic (temp file + ``os.replace``) so concurrent builders
— the parallel executor's worker threads, or several processes sharing
one cache directory — never observe torn entries.  Reads bump the entry
mtime, which drives least-recently-used eviction when ``max_entries``
is set.

Every operation flows through ``repro.obs`` counters:
``build.cache.hit``, ``build.cache.miss``, ``build.cache.store`` and
``build.cache.evict`` (all zero-cost while no registry is active).
"""

from __future__ import annotations

import os
import tempfile

from ..obs import events

_SUFFIX = ".uo"


class ObjectCache:
    """A content-addressed store of serialized compilation units."""

    def __init__(self, root: str, max_entries: int | None = None):
        self.root = str(root)
        self.max_entries = max_entries
        os.makedirs(self.root, exist_ok=True)

    # -- addressing --------------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + _SUFFIX)

    def path_for(self, digest: str) -> str:
        """On-disk location for ``digest`` (whether or not it exists)."""
        return self._path(digest)

    # -- primitives --------------------------------------------------------

    def get(self, digest: str) -> bytes | None:
        """The stored blob for ``digest``, or None on a miss."""
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            events.counter("build.cache.miss").inc()
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        events.counter("build.cache.hit").inc()
        return data

    def put(self, digest: str, data: bytes) -> None:
        """Store ``data`` under ``digest`` atomically."""
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        events.counter("build.cache.store").inc()
        if self.max_entries is not None:
            self._evict(keep=path)

    def _evict(self, keep: str) -> None:
        entries = self.entries()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        # Oldest mtime first; never evict the entry just written.
        entries.sort(key=lambda e: (e[2], e[0]))
        for digest, _, _ in entries:
            if excess <= 0:
                break
            path = self._path(digest)
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            events.counter("build.cache.evict").inc()
            excess -= 1

    # -- inspection --------------------------------------------------------

    def entries(self) -> list[tuple[str, int, float]]:
        """All entries as (digest, size bytes, mtime), unsorted."""
        found: list[tuple[str, int, float]] = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return found
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if not name.endswith(_SUFFIX):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                found.append(
                    (name[: -len(_SUFFIX)], stat.st_size, stat.st_mtime)
                )
        return found

    def stats(self) -> dict:
        """Summary used by ``python -m repro cache stats``."""
        entries = self.entries()
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for digest, _, _ in self.entries():
            try:
                os.unlink(self._path(digest))
                removed += 1
            except OSError:
                continue
        return removed
