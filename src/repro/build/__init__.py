"""The staged build layer: separate compilation, object caching, and
parallel builds.

This package turns the one-shot ``compile_source`` pipeline into a real
separate-compilation toolchain, mirroring the paper's per-unit compile
-> object file -> linker structure (Sections 4 and 6):

* :class:`~repro.build.session.BuildSession` — the staged driver.  Each
  stage (parse -> sema/taint -> lower -> opt -> codegen) produces a
  named, fingerprinted :class:`~repro.build.session.StageResult`;
  ``compile_unit`` yields a pre-link :class:`~repro.link.objfile.UObject`
  and ``build`` links (+optionally verifies) it into a ``Binary``.
* :mod:`~repro.build.serialize` — a stable, versioned on-disk format
  for ``UObject`` and ``Binary`` (``dump_uobject``/``load_uobject``,
  ``dump_binary``/``load_binary``).  Byte equality of two dumps is the
  project's definition of "bit-identical" artifacts.
* :class:`~repro.build.cache.ObjectCache` — a content-addressed object
  store keyed by (format version, source hash, config fingerprint,
  seed); hits skip every compile stage up to and including codegen.
* :mod:`~repro.build.executor` — the parallel build executor behind
  ``BuildSession.build_many`` (the CLI's ``--jobs N``); parallel builds
  are required to be byte-identical to serial ones.

The classic entry points :func:`repro.compile_source` and
:func:`repro.compile_and_load` are thin wrappers over the process-wide
default session (see :func:`default_session` / :class:`use_session`).
"""

from __future__ import annotations

from .cache import ObjectCache
from .executor import build_many
from .serialize import (
    FORMAT_VERSION,
    SerializeError,
    config_fingerprint,
    dump_binary,
    dump_uobject,
    load_binary,
    load_uobject,
    object_cache_key,
    source_hash,
)
from .session import (
    BuildRequest,
    BuildSession,
    StageResult,
    default_session,
    set_default_session,
    use_session,
)

__all__ = [
    "BuildRequest",
    "BuildSession",
    "FORMAT_VERSION",
    "ObjectCache",
    "SerializeError",
    "StageResult",
    "build_many",
    "config_fingerprint",
    "default_session",
    "dump_binary",
    "dump_uobject",
    "load_binary",
    "load_uobject",
    "object_cache_key",
    "set_default_session",
    "source_hash",
    "use_session",
]
