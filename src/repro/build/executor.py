"""The parallel build executor.

Compiles independent (source, config) build requests concurrently on a
thread pool.  Every request's pipeline is pure — fresh AST/IR/object
state per compile, deterministic magic selection from the request seed
— so a parallel build is required (and tested) to produce binaries
byte-identical to a serial build, in request order.

Worker threads share the process-wide obs registry (it is thread-safe
and keeps per-thread span stacks) and, when the session has one, the
on-disk object cache (atomic writes make concurrent stores safe).
``build.parallel.batches`` / ``build.parallel.units`` counters record
executor activity.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..link.objfile import Binary
from ..obs import events


def build_many(session, requests, jobs: int | None = None) -> list[Binary]:
    """Build every request through ``session``; results in request order.

    ``jobs`` defaults to the session's width; ``1`` builds serially on
    the calling thread (no pool, identical output).
    """
    requests = list(requests)
    if jobs is None:
        jobs = session.jobs
    jobs = max(1, int(jobs))
    events.counter("build.parallel.batches", jobs=jobs).inc()
    events.counter("build.parallel.units").inc(len(requests))

    def _one(request) -> Binary:
        return session.build(
            request.source,
            request.config,
            entry=request.entry,
            filename=request.filename,
            seed=request.seed,
            verify=request.verify,
        )

    if jobs == 1 or len(requests) <= 1:
        return [_one(request) for request in requests]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_one, requests))
