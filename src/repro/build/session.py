"""The staged build driver.

A :class:`BuildSession` decomposes the old monolithic ``compile_source``
into explicit stages, each yielding a named, fingerprinted
:class:`StageResult`::

    parse -> sema (taint inference) -> lower -> opt -> codegen -> checkopt

Fingerprints chain: every stage's fingerprint hashes its own inputs
together with its predecessor's fingerprint, so two pipelines agree on
a stage fingerprint iff they agree on everything that could influence
that stage's output.  The certified stages additionally fold their
accepted witness digests into the chain (the ``opt`` stage hashes
``module.opt_witness_digest``; the ``checkopt`` stage hashes the check
optimizer's witness digest), so a change in certification behaviour —
a rejected witness, a different edit script — invalidates downstream
fingerprints.  The checkopt stage's product is a pre-link
:class:`~repro.link.objfile.UObject` — the separate-compilation unit
the linker consumes (one per source file, like the paper's U dll
objects); the stage itself is a no-op unless ``config.checkopt`` is
``"aggressive"``, in which case the post-codegen check optimizer
(:mod:`repro.opt.checkopt`) rewrites each function's ISA stream under
translation validation.

Sessions optionally carry

* an :class:`~repro.build.cache.ObjectCache`: ``compile_unit`` looks up
  the (format version, source hash, config fingerprint, seed) key
  before running any stage, and a hit deserializes the stored object
  instead of compiling — no parse/sema/lower/opt/codegen spans are
  recorded, only a ``build.cache.hit`` counter;
* a default ``jobs`` width for :meth:`BuildSession.build_many`, the
  parallel build executor (byte-identical results to a serial build).

One process-wide *default session* backs the compatibility wrappers
``repro.compile_source`` / ``repro.compile_and_load``; scope a custom
session (with a cache, or a jobs width) via :class:`use_session`.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass

from ..backend.codegen import compile_module
from ..config import BuildConfig
from ..frontend.lower import lower_program
from ..link.linker import link
from ..link.objfile import Binary, UObject
from ..minic.parser import parse
from ..minic.sema import analyze
from ..obs import events
from ..opt.checkopt import run_checkopt
from ..opt.pipeline import optimize_module
from .cache import ObjectCache
from .serialize import (
    FORMAT_VERSION,
    SerializeError,
    config_fingerprint,
    dump_uobject,
    load_uobject,
    object_cache_key,
    source_hash,
)

#: Pipeline stage names, in order.
STAGES = ("parse", "sema", "lower", "opt", "codegen", "checkopt")


@dataclass(frozen=True)
class StageResult:
    """One stage's named, hashable product.

    ``fingerprint`` identifies the stage *output* by construction (it
    chains the predecessor's fingerprint with this stage's inputs);
    ``value`` is the in-memory artifact (AST, checked program, IR
    module, or UObject).
    """

    stage: str
    fingerprint: str
    value: object


@dataclass(frozen=True)
class BuildRequest:
    """One (source, config) build unit for :meth:`BuildSession.build_many`."""

    source: str
    config: BuildConfig
    entry: str = "main"
    filename: str = "<input>"
    seed: int | None = None
    verify: bool = False


def _chain(stage: str, parent: str, *parts) -> str:
    payload = "\0".join((stage, parent, *(repr(p) for p in parts)))
    return hashlib.sha256(payload.encode()).hexdigest()


class BuildSession:
    """Staged compile/link driver with optional caching and parallelism."""

    def __init__(self, cache: ObjectCache | None = None, jobs: int = 1):
        self.cache = cache
        self.jobs = max(1, int(jobs))

    # ------------------------------------------------------------------
    # Stages.  Span names and nesting are identical to the historical
    # monolithic driver, so observability output is unchanged.

    def stage_parse(self, source: str, filename: str = "<input>") -> StageResult:
        program = parse(source, filename)
        fp = _chain("parse", f"v{FORMAT_VERSION}", source_hash(source))
        return StageResult("parse", fp, program)

    def stage_sema(self, parsed: StageResult, config: BuildConfig) -> StageResult:
        with events.span("compile.sema"):
            checked = analyze(
                parsed.value,
                strict=config.strict,
                all_private=config.all_private,
            )
        fp = _chain(
            "sema", parsed.fingerprint, config.strict, config.all_private
        )
        return StageResult("sema", fp, checked)

    def stage_lower(
        self,
        semad: StageResult,
        config: BuildConfig,
        allow_undefined: bool = False,
    ) -> StageResult:
        with events.span("compile.lower"):
            module = lower_program(semad.value, allow_undefined=allow_undefined)
        fp = _chain("lower", semad.fingerprint, allow_undefined)
        return StageResult("lower", fp, module)

    def stage_opt(self, lowered: StageResult, config: BuildConfig) -> StageResult:
        module = optimize_module(lowered.value, pipeline=config.pipeline)
        fp = _chain(
            "opt",
            lowered.fingerprint,
            config.pipeline,
            module.opt_witness_digest,
        )
        return StageResult("opt", fp, module)

    def stage_codegen(
        self, opted: StageResult, config: BuildConfig
    ) -> StageResult:
        obj: UObject = compile_module(opted.value, config)
        fp = _chain("codegen", opted.fingerprint, config_fingerprint(config))
        return StageResult("codegen", fp, obj)

    def stage_checkopt(
        self, codegenned: StageResult, config: BuildConfig
    ) -> StageResult:
        obj: UObject = codegenned.value
        wdigest = ""
        if config.checkopt == "aggressive":
            wdigest = run_checkopt(obj, config)
        fp = _chain(
            "checkopt", codegenned.fingerprint, config.checkopt, wdigest
        )
        return StageResult("checkopt", fp, obj)

    # ------------------------------------------------------------------
    # Unit compilation (cache-aware).

    def compile_unit(
        self,
        source: str,
        config: BuildConfig,
        filename: str = "<input>",
        seed: int | None = None,
        allow_undefined: bool = False,
        use_cache: bool = True,
    ) -> UObject:
        """Compile one source unit to a pre-link :class:`UObject`.

        With a cache attached, a hit returns a fresh deserialized copy
        and skips every compile stage (including its obs spans); a miss
        compiles, then stores the unit *before* it is linked (linking
        patches instruction words in place).
        """
        digest = None
        if use_cache and self.cache is not None:
            digest = object_cache_key(source, config, seed, allow_undefined)
            data = self.cache.get(digest)
            if data is not None:
                try:
                    return load_uobject(data)
                except SerializeError:
                    # Corrupt or stale-format entry: recompile and
                    # overwrite rather than failing the build.
                    events.counter("build.cache.bad_entry").inc()
        result = self.stage_parse(source, filename)
        result = self.stage_sema(result, config)
        result = self.stage_lower(result, config, allow_undefined)
        result = self.stage_opt(result, config)
        result = self.stage_codegen(result, config)
        result = self.stage_checkopt(result, config)
        obj = result.value
        if digest is not None:
            self.cache.put(digest, dump_uobject(obj))
        return obj

    # ------------------------------------------------------------------
    # Linking and the one-call driver.

    def link_units(
        self,
        objs: UObject | list[UObject],
        entry: str = "main",
        seed: int | None = None,
    ) -> Binary:
        """Link one or more units, resolving cross-object externals."""
        return link(objs, entry=entry, seed=seed)

    def build(
        self,
        source: str,
        config: BuildConfig,
        entry: str = "main",
        filename: str = "<input>",
        seed: int | None = None,
        verify: bool = False,
    ) -> Binary:
        """Compile and link one source; the classic ``compile_source``."""
        with events.span("compile.total", config=config.name,
                         filename=filename):
            obj = self.compile_unit(
                source, config, filename=filename, seed=seed
            )
            binary = self.link_units(obj, entry=entry, seed=seed)
            if verify:
                from ..verifier.verify import verify_binary

                verify_binary(binary)
        return binary

    def build_many(
        self, requests: list[BuildRequest], jobs: int | None = None
    ) -> list[Binary]:
        """Build independent (source, config) units, possibly in parallel.

        Results arrive in request order and are byte-identical to a
        serial build whatever ``jobs`` is (each request's pipeline is
        pure and isolated; see tests/buildsys/test_parallel.py).
        """
        from .executor import build_many

        return build_many(self, requests, jobs=jobs)


# ---------------------------------------------------------------------------
# The process-wide default session behind compile_source/compile_and_load.

_lock = threading.Lock()
_default: BuildSession | None = None


def default_session() -> BuildSession:
    """The active process-wide session (created lazily).

    A fresh default session attaches an :class:`ObjectCache` at
    ``$REPRO_CACHE_DIR`` when that variable is set, and builds with
    ``$REPRO_BUILD_JOBS`` workers (default 1).
    """
    global _default
    with _lock:
        if _default is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR")
            cache = ObjectCache(cache_dir) if cache_dir else None
            try:
                jobs = int(os.environ.get("REPRO_BUILD_JOBS", "1"))
            except ValueError:
                jobs = 1
            _default = BuildSession(cache=cache, jobs=jobs)
        return _default


def set_default_session(session: BuildSession | None) -> BuildSession | None:
    """Install ``session`` as the process default; returns the previous."""
    global _default
    with _lock:
        previous = _default
        _default = session
        return previous


class use_session:
    """Context manager scoping a default-session override."""

    def __init__(self, session: BuildSession):
        self._session = session
        self._previous: BuildSession | None = None

    def __enter__(self) -> BuildSession:
        self._previous = set_default_session(self._session)
        return self._session

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_default_session(self._previous)
        return False
