"""Machine state snapshot/restore — the mechanism behind
``Machine.seal()``/``Machine.reset()`` and the serving tier's
``MachineImage.fork()``.

A ``MachineState`` freezes everything the simulator can observe:
memory contents (copy-on-write, via ``Memory.snapshot_state``),
per-core cycle counters and L1 caches, every thread's architectural
state, the ``Stats`` counters, and the loader-installed protection
state (fs/gs bases, MPX bounds).  ``restore`` rewinds a machine to
that point **in place**: the predecoded engine's handler closures
capture the ``stats`` object, the ``core_cycles`` and ``caches``
lists, the memory's page dicts, and the ``bnd`` list at predecode
time, so restoration mutates those objects rather than rebinding
them — no re-predecode, no re-link.

The same state can also be restored into a *different* machine built
from the same binary (``MachineImage.fork``): the state never holds
references to live mutable structures, only immutable copies.
"""

from __future__ import annotations

from .memory import MemoryState


class ThreadState:
    __slots__ = (
        "tid", "regs", "pc", "alive", "core", "shadow",
        "pub_stack", "priv_stack", "waiting_on", "ready_time",
        "finish_time",
    )

    def __init__(self, thread):
        self.tid = thread.tid
        self.regs = tuple(thread.regs)
        self.pc = thread.pc
        self.alive = thread.alive
        self.core = thread.core
        self.shadow = tuple(thread.shadow)
        self.pub_stack = thread.pub_stack
        self.priv_stack = thread.priv_stack
        self.waiting_on = thread.waiting_on
        self.ready_time = thread.ready_time
        self.finish_time = thread.finish_time

    def materialize(self):
        from .cpu import Thread

        thread = Thread(self.tid, self.core)
        thread.regs[:] = self.regs
        thread.pc = self.pc
        thread.alive = self.alive
        thread.shadow[:] = self.shadow
        thread.pub_stack = self.pub_stack
        thread.priv_stack = self.priv_stack
        thread.waiting_on = self.waiting_on
        thread.ready_time = self.ready_time
        thread.finish_time = self.finish_time
        return thread


class MachineState:
    """An immutable image of a machine's observable state."""

    __slots__ = (
        "memory", "core_cycles", "caches", "threads", "stats",
        "exit_code", "fs_base", "gs_base", "bnd", "next_tid",
    )

    def __init__(self, memory: MemoryState, core_cycles, caches, threads,
                 stats, exit_code, fs_base, gs_base, bnd, next_tid):
        self.memory = memory
        self.core_cycles = core_cycles
        self.caches = caches
        self.threads = threads
        self.stats = stats
        self.exit_code = exit_code
        self.fs_base = fs_base
        self.gs_base = gs_base
        self.bnd = bnd
        self.next_tid = next_tid

    @classmethod
    def capture(cls, machine) -> "MachineState":
        stats = machine.stats
        return cls(
            memory=machine.mem.snapshot_state(),
            core_cycles=tuple(machine.core_cycles),
            caches=tuple(c.snapshot_state() for c in machine.caches),
            threads=tuple(ThreadState(t) for t in machine.threads),
            stats=(
                stats.instructions, stats.bnd_checks, stats.cfi_checks,
                stats.calls, stats.t_calls, stats.loads, stats.stores,
                dict(stats.faults),
            ),
            exit_code=machine.exit_code,
            fs_base=machine.fs_base,
            gs_base=machine.gs_base,
            bnd=tuple(machine.bnd),
            next_tid=machine._next_tid,
        )

    def restore(self, machine) -> None:
        """Rewind ``machine`` to this state in place.

        ``machine`` must have been built from the same binary (same
        code, layout, and core count) — typically the machine this
        state was captured from, or a fresh fork of it.
        """
        if len(machine.core_cycles) != len(self.core_cycles):
            raise ValueError("core-count mismatch in machine snapshot")
        machine.mem.restore_state(self.memory)
        machine.core_cycles[:] = self.core_cycles
        for cache, saved in zip(machine.caches, self.caches):
            cache.restore_state(saved)
        machine.threads[:] = [t.materialize() for t in self.threads]
        (machine.stats.instructions, machine.stats.bnd_checks,
         machine.stats.cfi_checks, machine.stats.calls,
         machine.stats.t_calls, machine.stats.loads,
         machine.stats.stores) = self.stats[:7]
        machine.stats.faults.clear()
        machine.stats.faults.update(self.stats[7])
        machine.exit_code = self.exit_code
        machine.fs_base = self.fs_base
        machine.gs_base = self.gs_base
        machine.bnd[:] = self.bnd
        machine._next_tid = self.next_tid
        machine.hook_cache_misses = 0
