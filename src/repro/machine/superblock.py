"""Basic-block superinstruction fusion for the superblock engine.

The predecoded engine already folds dispatch and operand decoding into
per-instruction closures, but still pays one Python call, one
``Stats.instructions`` increment, one cycle charge, and one ``t.pc``
write per retired instruction.  This module removes that per-instruction
tax: :class:`BlockFuser` walks ``machine.code`` from a block leader to
the next control-flow terminator and generates **one Python function for
the whole block**, with

* the common instruction shapes (moves, ALU ops, compares, loads,
  stores, push/pop, bnd/CFI/stack checks, direct calls, branches)
  inlined as straight-line statements specialized exactly like the
  predecoded closures;
* ``Stats``/cycle accounting *batched*: every per-instruction charge in
  a block is statically known at fuse time, so the fault-free path pays
  one flush at block exit.  Exactness at faults is preserved by a
  deoptimization path — the block body runs under ``try/except
  MachineFault``, each fallible statement records its pc first, and the
  handler replays the cumulative pre-fault charges for that pc from a
  precomputed table before re-raising.  Counters, cycles, and the
  faulting ``t.pc`` are therefore bit-identical to per-instruction
  execution at any fault, while costing the hot path nothing;
* anything rare or complex (indirect control flow, shadow-stack ops,
  div/mod, unusual operand shapes) delegated to the existing predecoded
  handler closure, with accumulated accounting flushed and ``t.pc``
  written first so the handler observes per-instruction-exact state.

Fusion is lazy (the first time execution reaches a pc) and position
independent at the source level: generated sources embed only literals
and positional ``O{n}`` names for per-machine objects, so the compiled
code object is cached process-wide by source text.  A forked serving
instance therefore pays only a cheap ``exec`` of an already-compiled
code object per block it actually executes — the fuse cost amortizes
across forks exactly like predecode amortizes across requests.

Blocks are capped at the scheduler quantum (64 instructions); the
driver in :meth:`Machine._run_hot_superblock` never lets a fused block
cross a quantum boundary, which keeps budget faults and multi-thread
interleavings bit-identical to the predecoded and reference engines
(pinned by ``tests/machine/test_engine_equivalence.py``).
"""

from __future__ import annotations

from ..arith import MASK64, SIGN_BIT, eval_bin, eval_un, signed
from ..backend import isa, regs
from ..errors import (
    FAULT_BOUNDS,
    FAULT_CFI,
    FAULT_CHKSTK,
    FAULT_PERM,
    FAULT_UNMAPPED,
    MachineFault,
)
from ..link.layout import CODE_BASE, THREAD_STACK_SIZE
from . import costs
from .cache import DEFAULT_SETS, LINE_BITS, LINE_SIZE
from .memory import PAGE_MASK, PAGE_SIZE

MASK32 = 0xFFFFFFFF
TWO64 = 1 << 64

#: Longest fusable block — one scheduler quantum.  Longer straight-line
#: runs are split; the tail simply starts its own block.
MAX_BLOCK = 64

#: Instructions that end a basic block (every way control can leave).
TERMINATORS = (
    isa.Jmp,
    isa.Br,
    isa.JmpTable,
    isa.CallD,
    isa.CallI,
    isa.RetPlain,
    isa.JmpInd,
    isa.JmpReg,
    isa.Halt,
    isa.Fail,
)

_SIGNED_SYMS = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_BIT_SYMS = {"and": "&", "or": "|", "xor": "^"}

#: Delegated-to-handler instruction kinds that are known to be
#: schedule-neutral: they may fault (which propagates) but can never
#: kill the thread, spawn/unblock another one, or attach a step hook.
#: ``JmpInd`` is the one gateway to natives (spawn/join/recv) and is
#: deliberately absent; so is ``Halt``.  Blocks containing only neutral
#: work are "pure" and let the driver skip its schedule checks.
_NEUTRAL_DELEGATES = frozenset(
    (
        isa.JmpTable,
        isa.CallI,
        isa.RetPlain,
        isa.JmpReg,
        isa.ShadowPush,
        isa.ShadowPop,
    )
)


def _schedule_neutral(insn) -> bool:
    kind = type(insn)
    if kind is isa.Halt or kind is isa.JmpInd:
        return False
    return kind in _EMITTERS or kind in _NEUTRAL_DELEGATES

#: Process-wide source -> compiled code object cache.  Sources embed no
#: machine state (only literals and positional O{n} globals), so every
#: fork of an image — and every machine running the same code shape —
#: shares one compile.
_CODE_CACHE: dict[str, object] = {}


def code_cache_size() -> int:
    """Number of distinct block sources compiled so far (test hook)."""
    return len(_CODE_CACHE)


class BlockFuser:
    """Per-machine block compiler: ``fuse(pc) -> (fn, count, pure)``.

    ``fn`` runs the whole block on a thread; ``count`` is how many
    instructions it retires; ``pure`` is True when the block cannot
    change the thread schedule (no ``Halt``, no native gateway), which
    lets the driver skip its per-block schedule checks.
    Single-instruction blocks are not worth a generated function and
    return the predecoded handler directly.
    """

    def __init__(self, machine):
        self.machine = machine
        caches = machine.caches
        core_cycles = machine.core_cycles
        miss = costs.CACHE_MISS_PENALTY
        line_mask = LINE_SIZE - 1
        # The generated most-recently-used fast path indexes the set
        # array with a literal mask, so it is only valid for the
        # default L1 geometry; odd geometries fall back to access().
        self.inline_cache = all(
            getattr(cache, "_n_sets", 0) == DEFAULT_SETS
            for cache in caches
        )

        def touch(core, addr, size):
            # Same span-aware L1 charge as the predecoded closures.
            if (addr & line_mask) + size <= LINE_SIZE:
                if not caches[core].access(addr):
                    core_cycles[core] += miss
            else:
                misses = caches[core].access_span(addr, size)
                if misses:
                    core_cycles[core] += misses * miss

        # Shared globals for every generated block function.  All of
        # these are captured by reference; the loader and
        # MachineState.restore mutate them in place (never rebind), so
        # fused blocks stay coherent exactly like predecoded closures.
        self.base_ns = {
            "S": machine.stats,
            "C": core_cycles,
            "CACHES": caches,
            "BND": machine.bnd,
            "PAGES": machine.mem._pages,
            "RO": machine.mem._ro_pages,
            "MREAD": machine.mem.read_int,
            "MWRITE": machine.mem.write_int,
            "FB": int.from_bytes,
            "RCW": machine.read_code_word,
            "TOUCH": touch,
            "MACH": machine,
            "MF": MachineFault,
            "FU": FAULT_UNMAPPED,
            "FP": FAULT_PERM,
            "FC": FAULT_CFI,
            "FBND": FAULT_BOUNDS,
            "FK": FAULT_CHKSTK,
            "M": MASK64,
            "SB": SIGN_BIT,
            "T64": TWO64,
        }

    def fuse(self, pc: int):
        machine = self.machine
        code = machine.code
        handlers = machine._handlers
        n = len(code)
        insns = []
        i = pc
        while i < n and len(insns) < MAX_BLOCK:
            insn = code[i]
            insns.append((i, insn))
            if isinstance(insn, TERMINATORS):
                break
            i += 1
        if len(insns) < 2:
            return handlers[pc], 1, _schedule_neutral(insns[0][1])
        emitter = _Emitter(self, handlers)
        for p, insn in insns:
            emitter.emit(p, insn)
        emitter.flush()
        last_p, last = insns[-1]
        if not isinstance(last, TERMINATORS):
            # Block split at MAX_BLOCK or at the end of the code space:
            # fall through (an out-of-range pc faults in the driver,
            # exactly like the per-instruction engines).
            emitter.lines.append(f"t.pc = {last_p + 1}")
        source = emitter.render()
        code_obj = _CODE_CACHE.get(source)
        if code_obj is None:
            code_obj = compile(source, "<superblock>", "exec")
            _CODE_CACHE[source] = code_obj
        ns = dict(self.base_ns)
        for index, obj in enumerate(emitter.objs):
            ns[f"O{index}"] = obj
        exec(code_obj, ns)
        return ns["_superblock"], len(insns), not emitter.impure


class _Emitter:
    """Generates the body of one fused block.

    Accounting discipline: per-instruction charges accumulate at *fuse
    time* in ``cum`` and are emitted as one flush at block exit (or
    before a delegated handler call, which does its own accounting).
    Every fallible inlined instruction first writes ``t.pc`` and
    registers the cumulative charges pending at that point — including
    its own pre-charges, exactly like the predecoded handlers, which
    charge before they check — in ``recon``; the generated ``except``
    block replays those charges before re-raising, so machine state at
    any fault is bit-identical to per-instruction execution.
    Post-charges that the handlers apply after the fault point
    (``loads``/``stores``) join ``cum`` only after the fallible
    statement, so they are visible to later fault points but not to the
    instruction's own.  Dynamic cache-miss charges are applied inline,
    as the handlers do, so they need no reconciliation.
    """

    #: cum/recon slots: instructions, cycles, loads, stores,
    #: cfi_checks, bnd_checks, calls.
    _FLUSH_STMTS = (
        "S.instructions += {}",
        "C[c] += {}",
        "S.loads += {}",
        "S.stores += {}",
        "S.cfi_checks += {}",
        "S.bnd_checks += {}",
        "S.calls += {}",
    )

    def __init__(self, fuser: BlockFuser, handlers):
        self.fuser = fuser
        self.machine = fuser.machine
        self.handlers = handlers
        self.lines: list[str] = []
        self.objs: list = []
        self.cum = [0, 0, 0, 0, 0, 0, 0]
        self.recon: dict[int, tuple] = {}
        self.needs_cache = False
        self.h_pending = False
        self.impure = False

    # -- infrastructure ------------------------------------------------

    def render(self) -> str:
        head = [
            "def _superblock(t):",
            "    r = t.regs",
            "    c = t.core",
        ]
        if self.needs_cache:
            if self.fuser.inline_cache:
                head.append("    cache_ = CACHES[c]")
                head.append("    acc_ = cache_.access")
                head.append("    sets_ = cache_._sets")
                head.append("    h_ = 0")
            else:
                head.append("    acc_ = CACHES[c].access")
        lines = list(self.lines)
        if self.h_pending:
            lines.append("cache_.hits += h_")
        if not self.recon:
            body = ["    " + line for line in lines]
            return "\n".join(head + body) + "\n"
        rname = self._obj(self.recon)
        body = ["    try:"]
        body.extend("        " + line for line in lines)
        body.append("    except MF:")
        if self.h_pending:
            body.append("        cache_.hits += h_")
        body.append(f"        d_ = {rname}.get(t.pc)")
        body.append("        if d_ is not None:")
        for index, stmt in enumerate(self._FLUSH_STMTS):
            body.append("            " + stmt.format(f"d_[{index}]"))
        body.append("        raise")
        return "\n".join(head + body) + "\n"

    def flush(self) -> None:
        cum = self.cum
        for index, value in enumerate(cum):
            if value:
                self.lines.append(self._FLUSH_STMTS[index].format(value))
                cum[index] = 0

    def _obj(self, obj) -> str:
        self.objs.append(obj)
        return f"O{len(self.objs) - 1}"

    def _simple(self, cost: int, stmt: str) -> None:
        self.cum[0] += 1
        self.cum[1] += cost
        self.lines.append(stmt)

    def _pre(self, p: int, cost: int, *, cfi=0, bnd=0, calls=0) -> None:
        """Charge an inlined fallible instruction's pre-fault costs and
        snapshot the pending state its fault point must observe."""
        cum = self.cum
        cum[0] += 1
        cum[1] += cost
        cum[4] += cfi
        cum[5] += bnd
        cum[6] += calls
        self.recon[p] = tuple(cum)
        self.lines.append(f"t.pc = {p}")

    def _call_handler(self, p: int) -> None:
        # The handler (and anything it reaches — natives can observe
        # counters, or raise right through us) must see exact state:
        # flush static charges and any batched cache hits first.
        self.flush()
        if self.h_pending:
            self.lines.append("cache_.hits += h_")
            self.lines.append("h_ = 0")
        name = self._obj(self.handlers[p])
        self.lines.append(f"t.pc = {p}")
        self.lines.append(f"{name}(t)")

    def _signed_var(self, var: str, expr: str) -> None:
        lines = self.lines
        lines.append(f"{var} = {expr}")
        lines.append(f"if {var} & SB:")
        lines.append(f"    {var} -= T64")

    def _cache_lines(self, var: str, size: int) -> list[str]:
        self.needs_cache = True
        if not self.fuser.inline_cache:
            return [
                f"if ({var} & {LINE_SIZE - 1}) + {size} <= {LINE_SIZE}:",
                f"    if not acc_({var}):",
                f"        C[c] += {costs.CACHE_MISS_PENALTY}",
                "else:",
                f"    TOUCH(c, {var}, {size})",
            ]
        # Replicates L1Cache.access's most-recently-used branch inline
        # (batching the hit count into h_); everything else — LRU
        # shuffles, misses — still goes through access().
        self.h_pending = True
        return [
            f"if ({var} & {LINE_SIZE - 1}) + {size} <= {LINE_SIZE}:",
            f"    ln_ = {var} >> {LINE_BITS}",
            f"    w_ = sets_[ln_ & {DEFAULT_SETS - 1}]",
            "    if w_ and w_[-1] == ln_:",
            "        h_ += 1",
            f"    elif not acc_({var}):",
            f"        C[c] += {costs.CACHE_MISS_PENALTY}",
            "else:",
            f"    TOUCH(c, {var}, {size})",
        ]

    def _addr_expr(self, mem_op: isa.Mem) -> str:
        """The effective-address expression, mirroring the shapes of
        ``Machine._compile_addr``; unusual shapes fall back to that
        method's closure (still inline-called, still infallible)."""
        disp, scale = mem_op.disp, mem_op.scale
        if mem_op.abs is not None:
            const = mem_op.abs + disp
            if mem_op.index is None and mem_op.seg is None:
                return repr(const & MASK64)
            if mem_op.seg is None:
                idx = mem_op.index
                if mem_op.use32:
                    return (
                        f"(({const} + (r[{idx}] & {MASK32}) * {scale}) & M)"
                    )
                return f"(({const} + r[{idx}] * {scale}) & M)"
        elif not mem_op.use32 and mem_op.seg is None:
            base = mem_op.base
            if mem_op.index is None:
                return f"((r[{base}] + {disp}) & M)"
            return (
                f"((r[{base}] + {disp} + r[{mem_op.index}] * {scale}) & M)"
            )
        elif mem_op.use32:
            # fs/gs bases are read at execute time, like the closures.
            base = mem_op.base
            seg = ""
            if mem_op.seg == isa.SEG_FS:
                seg = " + MACH.fs_base"
            elif mem_op.seg == isa.SEG_GS:
                seg = " + MACH.gs_base"
            idx = mem_op.index
            if idx is None:
                return f"(((r[{base}] & {MASK32}) + {disp}{seg}) & M)"
            return (
                f"(((r[{base}] & {MASK32}) + {disp}"
                f" + (r[{idx}] & {MASK32}) * {scale}{seg}) & M)"
            )
        closure = self.machine._compile_addr(mem_op)
        return f"{self._obj(closure)}(t)"

    @staticmethod
    def _operand(value) -> str:
        if isinstance(value, isa.Imm):
            return repr(value.value & MASK64)
        return f"r[{value}]"

    # -- dispatch ------------------------------------------------------

    def emit(self, p: int, insn) -> None:
        kind = type(insn)
        method = _EMITTERS.get(kind)
        try:
            cost = costs.BASE_COST[insn.cost_class]
        except KeyError:
            method = None
            cost = 0
        if method is None:
            if not _schedule_neutral(insn):
                self.impure = True
            self._call_handler(p)
            return
        method(self, p, insn, cost)

    # -- infallible straight-line instructions -------------------------

    def _e_magic(self, p, insn, cost):
        self.cum[0] += 1
        self.cum[1] += cost

    def _e_mov_ri(self, p, insn, cost):
        self._simple(cost, f"r[{insn.dst}] = {insn.imm & MASK64}")

    def _e_mov_rr(self, p, insn, cost):
        self._simple(cost, f"r[{insn.dst}] = r[{insn.src}]")

    def _e_mov_fa(self, p, insn, cost):
        self._simple(cost, f"r[{insn.dst}] = {insn.value & MASK64}")

    def _e_tlsbase(self, p, insn, cost):
        mask = ~(THREAD_STACK_SIZE - 1)
        self._simple(cost, f"r[{insn.dst}] = r[{regs.RSP}] & {mask}")

    def _e_lea(self, p, insn, cost):
        self._simple(cost, f"r[{insn.dst}] = {self._addr_expr(insn.mem)}")

    def _e_alu(self, p, insn, cost):
        dst, op = insn.dst, insn.op
        if op in ("neg", "not"):
            if isinstance(insn.a, isa.Imm):
                value = eval_un(op, insn.a.value & MASK64)
                self._simple(cost, f"r[{dst}] = {value}")
            elif op == "neg":
                self._simple(cost, f"r[{dst}] = -r[{insn.a}] & M")
            else:
                self._simple(cost, f"r[{dst}] = ~r[{insn.a}] & M")
            return
        a_imm = isinstance(insn.a, isa.Imm)
        b_imm = isinstance(insn.b, isa.Imm)
        if a_imm and b_imm and op not in ("div", "mod"):
            value = eval_bin(
                op, insn.a.value & MASK64, insn.b.value & MASK64
            )
            self._simple(cost, f"r[{dst}] = {value}")
            return
        if op in ("add", "sub") and not a_imm:
            if b_imm:
                bv = insn.b.value & MASK64
                if op == "sub":
                    bv = -bv
                self._simple(cost, f"r[{dst}] = (r[{insn.a}] + {bv}) & M")
            else:
                sym = "+" if op == "add" else "-"
                self._simple(
                    cost, f"r[{dst}] = (r[{insn.a}] {sym} r[{insn.b}]) & M"
                )
            return
        if op in _BIT_SYMS and not a_imm:
            sym = _BIT_SYMS[op]
            self._simple(
                cost,
                f"r[{dst}] = r[{insn.a}] {sym} {self._operand(insn.b)}",
            )
            return
        if op == "mul" and not a_imm:
            self.cum[0] += 1
            self.cum[1] += cost
            self._signed_var("x_", f"r[{insn.a}]")
            if b_imm:
                self.lines.append(
                    f"r[{dst}] = (x_ * {signed(insn.b.value)}) & M"
                )
            else:
                self._signed_var("y_", f"r[{insn.b}]")
                self.lines.append(f"r[{dst}] = (x_ * y_) & M")
            return
        if op in ("shl", "shr") and not a_imm and b_imm:
            sh = insn.b.value & 63
            if op == "shl":
                self._simple(cost, f"r[{dst}] = (r[{insn.a}] << {sh}) & M")
            else:
                self.cum[0] += 1
                self.cum[1] += cost
                self._signed_var("x_", f"r[{insn.a}]")
                self.lines.append(f"r[{dst}] = (x_ >> {sh}) & M")
            return
        # div/mod (can fault) and leftover shapes: predecoded handler.
        self._call_handler(p)

    def _e_setcc(self, p, insn, cost):
        dst, op = insn.dst, insn.op
        a_imm = isinstance(insn.a, isa.Imm)
        b_imm = isinstance(insn.b, isa.Imm)
        if a_imm and b_imm:
            value = eval_bin(
                op, insn.a.value & MASK64, insn.b.value & MASK64
            )
            self._simple(cost, f"r[{dst}] = {value}")
            return
        if not a_imm and op in ("eq", "ne"):
            sym = "==" if op == "eq" else "!="
            self._simple(
                cost,
                f"r[{dst}] = 1 if r[{insn.a}] {sym} "
                f"{self._operand(insn.b)} else 0",
            )
            return
        if not a_imm and op in _SIGNED_SYMS:
            sym = _SIGNED_SYMS[op]
            self.cum[0] += 1
            self.cum[1] += cost
            self._signed_var("x_", f"r[{insn.a}]")
            if b_imm:
                self.lines.append(
                    f"r[{dst}] = 1 if x_ {sym} {signed(insn.b.value)} else 0"
                )
            else:
                self._signed_var("y_", f"r[{insn.b}]")
                self.lines.append(f"r[{dst}] = 1 if x_ {sym} y_ else 0")
            return
        self._call_handler(p)

    # -- fallible inlined instructions ---------------------------------

    def _e_load(self, p, insn, cost):
        size = insn.size
        expr = self._addr_expr(insn.mem)
        self._pre(p, cost)
        lines = self.lines
        lines.append(f"a_ = {expr}")
        lines.append(f"if a_ >= {CODE_BASE}:")
        if size >= 8:
            lines.append("    v_ = RCW(a_)")
        else:
            lines.append(f"    v_ = RCW(a_) & {(1 << (8 * size)) - 1}")
        lines.append("else:")
        lines.extend("    " + line for line in self._cache_lines("a_", size))
        lines.append(f"    o_ = a_ & {PAGE_MASK}")
        lines.append("    pg_ = PAGES.get(a_ - o_)")
        lines.append(f"    if pg_ is not None and o_ + {size} <= {PAGE_SIZE}:")
        lines.append(f'        v_ = FB(pg_[o_:o_ + {size}], "little")')
        lines.append("    else:")
        lines.append(f"        v_ = MREAD(a_, {size})")
        lines.append(f"r[{insn.dst}] = v_")
        self.cum[2] += 1

    def _e_store(self, p, insn, cost):
        size = insn.size
        expr = self._addr_expr(insn.mem)
        self._pre(p, cost)
        lines = self.lines
        lines.append(f"a_ = {expr}")
        lines.append(f"if a_ >= {CODE_BASE}:")
        lines.append('    raise MF(FU, "write to code space", addr=a_)')
        lines.extend(self._cache_lines("a_", size))
        lines.append(f"v_ = {self._operand(insn.src)}")
        lines.append(f"o_ = a_ & {PAGE_MASK}")
        lines.append(f"if o_ + {size} <= {PAGE_SIZE}:")
        lines.append("    b_ = a_ - o_")
        lines.append("    rg_ = RO.get(b_)")
        lines.append("    if rg_ is not None:")
        lines.append("        for lo_, hi_ in rg_:")
        lines.append(f"            if a_ < hi_ and a_ + {size} > lo_:")
        lines.append(
            "                raise MF(FP, "
            '"write to read-only memory", addr=a_)'
        )
        lines.append("    pg_ = PAGES.get(b_)")
        lines.append("    if pg_ is not None:")
        lines.append(
            f"        pg_[o_:o_ + {size}] = "
            f'(v_ & {(1 << (8 * size)) - 1}).to_bytes({size}, "little")'
        )
        lines.append("    else:")
        lines.append(f"        MWRITE(a_, {size}, v_)")
        lines.append("else:")
        lines.append(f"    MWRITE(a_, {size}, v_)")
        self.cum[3] += 1

    def _e_push(self, p, insn, cost):
        self._pre(p, cost)
        lines = self.lines
        lines.append(f"rsp_ = (r[{regs.RSP}] - 8) & M")
        lines.append(f"r[{regs.RSP}] = rsp_")
        lines.append(f"v_ = {self._operand(insn.src)}")
        lines.append(f"if rsp_ >= {CODE_BASE}:")
        lines.append('    raise MF(FU, "write to code space", addr=rsp_)')
        lines.extend(self._cache_lines("rsp_", 8))
        lines.append(f"o_ = rsp_ & {PAGE_MASK}")
        lines.append("pg_ = None")
        lines.append(
            f"if o_ + 8 <= {PAGE_SIZE} and not RO.get(rsp_ - o_):"
        )
        lines.append("    pg_ = PAGES.get(rsp_ - o_)")
        lines.append("if pg_ is not None:")
        lines.append('    pg_[o_:o_ + 8] = v_.to_bytes(8, "little")')
        lines.append("else:")
        lines.append("    MWRITE(rsp_, 8, v_)")

    def _e_pop(self, p, insn, cost):
        self._pre(p, cost)
        lines = self.lines
        lines.append(f"rsp_ = r[{regs.RSP}]")
        lines.append(f"if rsp_ >= {CODE_BASE}:")
        lines.append("    v_ = RCW(rsp_)")
        lines.append("else:")
        lines.extend(
            "    " + line for line in self._cache_lines("rsp_", 8)
        )
        lines.append(f"    o_ = rsp_ & {PAGE_MASK}")
        lines.append("    pg_ = PAGES.get(rsp_ - o_)")
        lines.append(f"    if pg_ is not None and o_ + 8 <= {PAGE_SIZE}:")
        lines.append('        v_ = FB(pg_[o_:o_ + 8], "little")')
        lines.append("    else:")
        lines.append("        v_ = MREAD(rsp_, 8)")
        lines.append(f"r[{insn.dst}] = v_")
        lines.append(f"r[{regs.RSP}] = (rsp_ + 8) & M")

    def _e_check_magic(self, p, insn, cost):
        self._pre(p, cost, cfi=1)
        lines = self.lines
        lines.append(f"x_ = r[{insn.reg}]")
        lines.append("w_ = RCW(x_)")
        lines.append(f"if w_ != {~insn.inv_value & MASK64}:")
        detail = f"magic mismatch at target (kind={insn.kind})"
        lines.append(f"    raise MF(FC, {detail!r}, addr=x_)")

    def _e_bndchk(self, p, insn, cost):
        if insn.mem is not None:
            # The fixed post-address surcharge is pre-fault in the
            # handlers, so it batches with the base cost.
            cost += costs.BNDCHK_MEM_EXTRA
        self._pre(p, cost, bnd=1)
        lines = self.lines
        if insn.mem is not None:
            lines.append(f"a_ = {self._addr_expr(insn.mem)}")
        else:
            lines.append(f"a_ = r[{insn.reg}]")
        lines.append(f"lo_, hi_ = BND[{insn.bnd}]")
        lines.append("if not (lo_ <= a_ < hi_):")
        lines.append(
            f'    raise MF(FBND, f"bnd{insn.bnd} violation '
            '[{lo_:#x},{hi_:#x})", addr=a_)'
        )

    def _e_chkstk(self, p, insn, cost):
        self._pre(p, cost)
        lines = self.lines
        lines.append(f"rsp_ = r[{regs.RSP}]")
        lines.append("lo_, hi_ = t.pub_stack")
        lines.append("if not (lo_ <= rsp_ <= hi_):")
        lines.append('    raise MF(FK, "rsp escaped its stack", addr=rsp_)')

    # -- terminators ---------------------------------------------------

    def _e_jmp(self, p, insn, cost):
        self.cum[0] += 1
        self.cum[1] += cost
        self.lines.append(f"t.pc = {insn.addr}")

    def _e_br(self, p, insn, cost):
        op, addr, npc = insn.op, insn.addr, p + 1
        a_imm = isinstance(insn.a, isa.Imm)
        b_imm = isinstance(insn.b, isa.Imm)
        if not a_imm and op in ("eq", "ne"):
            sym = "==" if op == "eq" else "!="
            self.cum[0] += 1
            self.cum[1] += cost
            self.lines.append(
                f"t.pc = {addr} if r[{insn.a}] {sym} "
                f"{self._operand(insn.b)} else {npc}"
            )
            return
        if not a_imm and op in _SIGNED_SYMS:
            sym = _SIGNED_SYMS[op]
            self.cum[0] += 1
            self.cum[1] += cost
            self._signed_var("x_", f"r[{insn.a}]")
            if b_imm:
                self.lines.append(
                    f"t.pc = {addr} if x_ {sym} "
                    f"{signed(insn.b.value)} else {npc}"
                )
            else:
                self._signed_var("y_", f"r[{insn.b}]")
                self.lines.append(
                    f"t.pc = {addr} if x_ {sym} y_ else {npc}"
                )
            return
        self._call_handler(p)

    def _e_call_d(self, p, insn, cost):
        self._pre(p, cost, calls=1)
        lines = self.lines
        lines.append(f"rsp_ = (r[{regs.RSP}] - 8) & M")
        lines.append(f"r[{regs.RSP}] = rsp_")
        lines.append(f"if rsp_ >= {CODE_BASE}:")
        lines.append('    raise MF(FU, "write to code space", addr=rsp_)')
        lines.append("TOUCH(c, rsp_, 8)")
        lines.append(f"MWRITE(rsp_, 8, {CODE_BASE + p + 1})")
        lines.append(f"t.pc = {insn.addr}")

    def _e_halt(self, p, insn, cost):
        self.impure = True
        self.cum[0] += 1
        self.cum[1] += cost
        # finish_time reads the cycle counter, so the block's batched
        # charges must land first.
        self.flush()
        lines = self.lines
        lines.append(f"t.pc = {p}")
        lines.append("t.alive = False")
        lines.append("t.finish_time = C[c]")
        lines.append("if t.tid == 0:")
        lines.append(f"    MACH.exit_code = r[{regs.RAX}]")

    def _e_fail(self, p, insn, cost):
        self._pre(p, cost)
        self.lines.append('raise MF(FC, "__debugbreak reached")')


#: Instruction type -> emitter.  Types absent here (indirect control
#: flow, shadow-stack ops, unknown instructions) run through their
#: predecoded handler closure inside the block.
_EMITTERS = {
    isa.MagicWord: _Emitter._e_magic,
    isa.MovRI: _Emitter._e_mov_ri,
    isa.MovRR: _Emitter._e_mov_rr,
    isa.MovFuncAddr: _Emitter._e_mov_fa,
    isa.Alu: _Emitter._e_alu,
    isa.SetCC: _Emitter._e_setcc,
    isa.Load: _Emitter._e_load,
    isa.Store: _Emitter._e_store,
    isa.Lea: _Emitter._e_lea,
    isa.Push: _Emitter._e_push,
    isa.Pop: _Emitter._e_pop,
    isa.Jmp: _Emitter._e_jmp,
    isa.Br: _Emitter._e_br,
    isa.CallD: _Emitter._e_call_d,
    isa.CheckMagic: _Emitter._e_check_magic,
    isa.BndChk: _Emitter._e_bndchk,
    isa.ChkStk: _Emitter._e_chkstk,
    isa.TlsBase: _Emitter._e_tlsbase,
    isa.Halt: _Emitter._e_halt,
    isa.Fail: _Emitter._e_fail,
}
