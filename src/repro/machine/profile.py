"""Per-function cycle profiling.

Attributes simulated cycles and instruction counts to functions by
symbolizing the program counter against the linked binary's label map —
the same magic-word anchoring ConfVerify uses for procedure discovery.
Useful for understanding *where* instrumentation overhead lands (e.g.
Figure 7's claim that ~70% of Privado's time is one tight loop).

Usage::

    process = compile_and_load(src, OUR_MPX)
    profiler = attach_profiler(process.machine)
    process.run()
    for row in profiler.report(top=5):
        print(row.name, row.cycles, row.instructions)
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass


@dataclass
class ProfileRow:
    name: str
    cycles: int
    instructions: int
    cycle_share: float


class Profiler:
    def __init__(self, binary):
        # Build sorted (start, name) ranges over the code space.
        # Function labels carry no dot; block labels ("f.bb.3") do.
        # Stubs and loader thunks get their own buckets.
        starts: list[tuple[int, str]] = []
        for name, addr in binary.label_addrs.items():
            is_function = "." not in name
            if is_function or name.startswith("stub."):
                starts.append((addr, name))
        starts.sort()
        self._starts = [s for s, _n in starts]
        self._names = [n for _s, n in starts]
        self.cycles: dict[str, int] = {}
        self.instructions: dict[str, int] = {}

    def symbolize(self, pc: int) -> str:
        index = bisect.bisect_right(self._starts, pc) - 1
        if index < 0:
            return "<prelude>"
        return self._names[index]

    def account(self, pc: int, cycles: int) -> None:
        name = self.symbolize(pc)
        self.cycles[name] = self.cycles.get(name, 0) + cycles
        self.instructions[name] = self.instructions.get(name, 0) + 1

    def report(self, top: int | None = None) -> list[ProfileRow]:
        total = sum(self.cycles.values()) or 1
        rows = [
            ProfileRow(
                name=name,
                cycles=cycles,
                instructions=self.instructions.get(name, 0),
                cycle_share=cycles / total,
            )
            for name, cycles in self.cycles.items()
        ]
        rows.sort(key=lambda r: r.cycles, reverse=True)
        return rows[:top] if top else rows


def attach_profiler(machine) -> Profiler:
    """Wrap the machine's step function with cycle attribution."""
    profiler = Profiler(machine.binary)
    original_step = machine._step

    def profiled_step(thread):
        pc = thread.pc
        before = machine.core_cycles[thread.core]
        original_step(thread)
        profiler.account(pc, machine.core_cycles[thread.core] - before)

    machine._step = profiled_step
    return profiler
