"""Per-function cycle profiling.

Attributes simulated cycles, instruction counts, and executed bnd/CFI
check counts to functions by symbolizing the program counter against the
linked binary's label map — the same magic-word anchoring ConfVerify
uses for procedure discovery.  Useful for understanding *where*
instrumentation overhead lands (e.g. Figure 7's claim that ~70% of
Privado's time is one tight loop).

The profiler registers through :meth:`Machine.add_step_hook` — the
supported observation API — rather than monkey-patching ``_step``, so
multiple observers compose and double-attachment is an error instead of
silent double counting.  The hook contract is engine-independent:
attribution is identical under the predecoded and reference engines
(while a hook is attached the machine leaves its single-thread hot
loop, so every retired instruction is reported with its exact cycle
cost either way).

Usage::

    process = compile_and_load(src, OUR_MPX)
    profiler = attach_profiler(process.machine)
    process.run()
    for row in profiler.report(top=5):
        print(row.name, row.cycles, row.bnd_checks, row.cfi_checks)
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..backend import isa


@dataclass
class ProfileRow:
    name: str
    cycles: int
    instructions: int
    cycle_share: float
    bnd_checks: int = 0
    cfi_checks: int = 0


class Profiler:
    def __init__(self, binary):
        # Build sorted (start, name) ranges over the code space.
        # Function labels carry no dot; block labels ("f.bb.3") do.
        # Stubs and loader thunks get their own buckets.
        starts: list[tuple[int, str]] = []
        for name, addr in binary.label_addrs.items():
            is_function = "." not in name
            if is_function or name.startswith("stub."):
                starts.append((addr, name))
        starts.sort()
        self._starts = [s for s, _n in starts]
        self._names = [n for _s, n in starts]
        self.cycles: dict[str, int] = {}
        self.instructions: dict[str, int] = {}
        self.bnd_checks: dict[str, int] = {}
        self.cfi_checks: dict[str, int] = {}

    def symbolize(self, pc: int) -> str:
        index = bisect.bisect_right(self._starts, pc) - 1
        if index < 0:
            return "<prelude>"
        return self._names[index]

    def account(
        self, pc: int, cycles: int, insn: isa.Insn | None = None
    ) -> None:
        name = self.symbolize(pc)
        self.cycles[name] = self.cycles.get(name, 0) + cycles
        self.instructions[name] = self.instructions.get(name, 0) + 1
        if insn is not None:
            if isinstance(insn, isa.BndChk):
                self.bnd_checks[name] = self.bnd_checks.get(name, 0) + 1
            elif isinstance(insn, isa.CheckMagic):
                self.cfi_checks[name] = self.cfi_checks.get(name, 0) + 1

    def on_step(self, thread, pc: int, insn, cycles: int) -> None:
        """Machine step-hook entry point (see ``Machine.add_step_hook``)."""
        self.account(pc, cycles, insn)

    def report(self, top: int | None = None) -> list[ProfileRow]:
        total = sum(self.cycles.values()) or 1
        rows = [
            ProfileRow(
                name=name,
                cycles=cycles,
                instructions=self.instructions.get(name, 0),
                cycle_share=cycles / total,
                bnd_checks=self.bnd_checks.get(name, 0),
                cfi_checks=self.cfi_checks.get(name, 0),
            )
            for name, cycles in self.cycles.items()
        ]
        # Cycles-descending with the name as a tie-break, so functions
        # with equal cycle counts never flip between runs.
        rows.sort(key=lambda r: (-r.cycles, r.name))
        return rows[:top] if top else rows


def attach_profiler(machine) -> Profiler:
    """Attach a fresh profiler via the machine's step-hook API.

    Each call attaches an independent profiler; attaching the *same*
    hook twice raises (``Machine.add_step_hook`` rejects duplicates), so
    cycles can no longer be double-counted by accident.
    """
    profiler = Profiler(machine.binary)
    machine.add_step_hook(profiler.on_step)
    return profiler


def detach_profiler(machine, profiler: Profiler) -> None:
    """Stop a profiler attached with :func:`attach_profiler`."""
    machine.remove_step_hook(profiler.on_step)
