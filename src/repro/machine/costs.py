"""The cycle-cost model.

Costs are deliberately simple — a base cost per instruction class plus
a cache-miss penalty for data accesses — because the paper's overhead
*shapes* come from instruction-count and cache effects, not from deep
micro-architecture:

* MPX checks cost real cycles per memory access (register-operand
  checks cheaper than memory-operand checks, Section 5.1);
* segment prefixes are effectively free (address-generation only),
  which is why OurSeg beats OurMPX everywhere in Figure 5;
* CFI sequences add a handful of cycles per return/indirect call
  (average 3.62% on SPEC);
* switching stacks to call into T costs tens of cycles (the
  OurBare-Our1Mem gap in Figure 6);
* separate public/private stacks cost nothing directly but increase
  cache pressure (the OurMPX−OurMPX-Sep gap).
"""

from __future__ import annotations

BASE_COST = {
    "alu": 1,
    "nop": 0,  # magic words: never executed on hot paths, data only
    "mem": 1,
    "branch": 1,
    "call": 2,
    "cfi": 3,  # pop/cmp-magic/jne folded sequence
    "bndchk": 1,  # register-operand bound-check pair
    "shadow": 4,  # shadow-stack compare (memory-based)
    "jmptable": 1,  # + table load and indirect-branch extras at runtime
}

# Extra cost when a BndChk uses a full memory operand (the implicit lea
# the paper observed makes these slower).
BNDCHK_MEM_EXTRA = 1

CACHE_MISS_PENALTY = 24
CACHE_HIT_EXTRA = 0

# Indirect transfers (returns via JmpReg, stub JmpInd) pay a branch-
# predictor-ish extra over direct jumps.
INDIRECT_JUMP_EXTRA = 1

# Cost charged by a T wrapper for switching gs/rsp to T's stack and
# back (configs with separate T/U memories), vs. a plain shared-stack
# library call.
T_SWITCH_COST = 48
T_PLAIN_CALL_COST = 6
