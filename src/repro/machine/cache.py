"""A small set-associative L1 data cache model (per core).

The cache exists to reproduce the paper's *cache-pressure* effects —
most visibly the OurMPX vs OurMPX-Sep gap in the NGINX experiment
(Figure 6), which the authors attribute to "increased cache pressure
from having separate stacks for private and public data".  Splitting
one working set across two stacks doubles the number of hot lines, and
this model charges for it the same way real hardware does.
"""

from __future__ import annotations

LINE_BITS = 6  # 64-byte lines
LINE_SIZE = 1 << LINE_BITS
DEFAULT_SETS = 64  # 64 sets * 8 ways * 64 B = 32 KiB
DEFAULT_WAYS = 8


class L1Cache:
    def __init__(self, n_sets: int = DEFAULT_SETS, n_ways: int = DEFAULT_WAYS):
        self._n_sets = n_sets
        self._n_ways = n_ways
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; True on hit."""
        line = addr >> LINE_BITS
        ways = self._sets[line % self._n_sets]
        if ways and ways[-1] == line:
            # Re-touching the most-recent line leaves the LRU order
            # unchanged — skip the remove/append shuffle.
            self.hits += 1
            return True
        try:
            ways.remove(line)
        except ValueError:
            self.misses += 1
            if len(ways) >= self._n_ways:
                ways.pop(0)
            ways.append(line)
            return False
        self.hits += 1
        ways.append(line)
        return True

    def access_span(self, addr: int, size: int) -> int:
        """Touch every line spanned by ``[addr, addr + size)``; returns
        the number of misses.

        An access that straddles a line boundary occupies (and may
        evict) every line it covers — this is where the separate-stacks
        cache-pressure effect of Figure 6 comes from, so charging only
        the first line would understate exactly the number the paper's
        OurMPX vs OurMPX-Sep comparison is built on.
        """
        line = addr >> LINE_BITS
        last = (addr + size - 1) >> LINE_BITS
        misses = 0
        while line <= last:
            if not self.access(line << LINE_BITS):
                misses += 1
            line += 1
        return misses

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    # -- snapshot / restore --------------------------------------------

    def snapshot_state(self) -> tuple:
        """Freeze tag state and hit/miss counters."""
        return (
            self.hits,
            self.misses,
            tuple(tuple(ways) for ways in self._sets),
        )

    def restore_state(self, state: tuple) -> None:
        """Rewind to a snapshot in place (the machine's handler
        closures hold references to this cache object)."""
        hits, misses, sets = state
        if len(sets) != self._n_sets:
            raise ValueError("cache geometry mismatch in snapshot")
        self.hits = hits
        self.misses = misses
        for ways, saved in zip(self._sets, sets):
            ways[:] = saved
