"""A small set-associative L1 data cache model (per core).

The cache exists to reproduce the paper's *cache-pressure* effects —
most visibly the OurMPX vs OurMPX-Sep gap in the NGINX experiment
(Figure 6), which the authors attribute to "increased cache pressure
from having separate stacks for private and public data".  Splitting
one working set across two stacks doubles the number of hot lines, and
this model charges for it the same way real hardware does.
"""

from __future__ import annotations

LINE_BITS = 6  # 64-byte lines
DEFAULT_SETS = 64  # 64 sets * 8 ways * 64 B = 32 KiB
DEFAULT_WAYS = 8


class L1Cache:
    def __init__(self, n_sets: int = DEFAULT_SETS, n_ways: int = DEFAULT_WAYS):
        self._n_sets = n_sets
        self._n_ways = n_ways
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; True on hit."""
        line = addr >> LINE_BITS
        index = line % self._n_sets
        ways = self._sets[index]
        try:
            ways.remove(line)
        except ValueError:
            self.misses += 1
            if len(ways) >= self._n_ways:
                ways.pop(0)
            ways.append(line)
            return False
        self.hits += 1
        ways.append(line)
        return True

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()
