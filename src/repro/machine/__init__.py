"""The simulated machine: memory, caches, costs, CPU."""

from .cache import L1Cache
from .cpu import Machine, Thread
from .memory import Memory
from .profile import Profiler, attach_profiler

__all__ = ["Machine", "Thread", "Memory", "L1Cache", "Profiler", "attach_profiler"]
