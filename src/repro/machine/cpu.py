"""The virtual CPU: executes linked binaries with cycle accounting.

The machine implements ConfISA exactly as the instrumentation expects:

* memory operands compute ``seg + (base & 0xffffffff) + ...`` when the
  32-bit segmentation addressing is in use, so fs/gs-prefixed accesses
  physically cannot escape their segment (Section 3);
* MPX bound checks compare against the ``bnd0``/``bnd1`` ranges the
  loader installed and fault on violation;
* CFI checks read *code as data*: ``CheckMagic`` fetches the 64-bit
  encoding of the word at the target address and compares it with the
  (re-negated) expected magic value (Section 4);
* unmapped accesses fault — guard areas are simply unmapped.

Three execution engines share these semantics:

* the **predecoded** engine (default) translates ``self.code`` at load
  time into a parallel array of per-instruction handler closures with
  the dispatch decision, base cycle cost, and operand shape resolved
  once, plus a single-live-thread hot loop that charges the instruction
  budget per quantum instead of per step;
* the **superblock** engine builds on the predecoded handler table and
  additionally fuses each basic block into one generated Python
  function (:mod:`repro.machine.superblock`), paying dispatch once per
  block with Stats/cycle accounting batched between fault points; it
  deoptimizes to per-instruction stepping at quantum tails, step hooks,
  and multi-thread schedules;
* the **reference** engine keeps the original one-``_step``-at-a-time
  dict-dispatch interpreter as a debuggable executable specification.

The engines are observably identical — simulated cycles, ``Stats``
counters, fault kinds/addresses, and the ``add_step_hook`` API agree
bit-for-bit (pinned by the differential suite under
``tests/machine/test_engine_equivalence.py``); only host wall-clock
differs.

Multi-threading is round-robin over a fixed number of cores with
per-core cycle counters and per-core L1 caches; simulated wall-clock
time is the maximum core time.
"""

from __future__ import annotations

import operator

from ..arith import MASK64, SIGN_BIT, eval_bin, eval_un, signed
from ..backend import isa, regs
from ..errors import (
    FAULT_BOUNDS,
    FAULT_CFI,
    FAULT_CHKSTK,
    FAULT_EXEC,
    FAULT_PERM,
    FAULT_UNMAPPED,
    MachineFault,
)
from ..link.layout import CODE_BASE, NATIVE_BASE, THREAD_STACK_SIZE
from . import costs
from .cache import LINE_SIZE, L1Cache
from .memory import PAGE_MASK, PAGE_SIZE, Memory

MASK32 = 0xFFFFFFFF
TWO64 = 1 << 64

ENGINE_PREDECODED = "predecoded"
ENGINE_SUPERBLOCK = "superblock"
ENGINE_REFERENCE = "reference"
ENGINES = (ENGINE_PREDECODED, ENGINE_SUPERBLOCK, ENGINE_REFERENCE)

_SIGNED_CMPS = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


class Thread:
    __slots__ = (
        "tid",
        "regs",
        "pc",
        "alive",
        "core",
        "shadow",
        "pub_stack",
        "priv_stack",
        "waiting_on",
        "ready_time",
        "finish_time",
    )

    def __init__(self, tid: int, core: int):
        self.tid = tid
        self.regs = [0] * regs.NUM_GPRS
        self.pc = 0
        self.alive = True
        self.core = core
        self.shadow: list[int] = []
        self.pub_stack = (0, 0)
        self.priv_stack = (0, 0)
        # tid of a thread this one is blocked joining on (consumes no
        # core cycles while set).
        self.waiting_on: int | None = None
        # Virtual-time bookkeeping: a thread cannot execute before it
        # was spawned, and a joiner resumes no earlier than the target
        # finished.
        self.ready_time = 0
        self.finish_time = 0


class Stats:
    __slots__ = (
        "instructions",
        "bnd_checks",
        "cfi_checks",
        "calls",
        "t_calls",
        "loads",
        "stores",
        "faults",
    )

    def __init__(self):
        self.instructions = 0
        self.bnd_checks = 0
        self.cfi_checks = 0
        self.calls = 0
        self.t_calls = 0
        self.loads = 0
        self.stores = 0
        # Fault kind -> occurrence count (a fault normally ends the run,
        # but callers that catch-and-restart keep accumulating here).
        self.faults: dict[str, int] = {}


class Machine:
    def __init__(self, binary, natives, n_cores: int = 4,
                 engine: str = ENGINE_PREDECODED):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick from {ENGINES}")
        self.binary = binary
        self.config = binary.config
        self.layout = binary.layout
        self.code = binary.code
        self.natives = natives  # list of callables(machine, thread)
        self.mem = Memory()
        self.n_cores = n_cores
        self.caches = [L1Cache() for _ in range(n_cores)]
        self.core_cycles = [0] * n_cores
        self.threads: list[Thread] = []
        self.stats = Stats()
        self.exit_code: int | None = None
        # Architectural state installed by the loader:
        self.fs_base = 0
        self.gs_base = 0
        self.bnd = [(0, 0), (0, 0)]  # bnd0 (public), bnd1 (private)
        self._next_tid = 0
        # Post-load image captured by seal(); reset() rewinds to it.
        self._image_state = None
        # Step hooks: callables (thread, pc, insn, cycles) invoked after
        # every retired instruction.  Empty by default; the fast path
        # pays one truthiness test per instruction and nothing else.
        self._step_hooks: list = []
        # While hooks are attached, the cache-miss delta of the retiring
        # instruction (on the executing thread's core) is published here
        # before the hooks run, so profilers can attribute L1 events
        # per block without changing the hook signature.  Never updated
        # on the hook-free fast path.
        self.hook_cache_misses = 0
        self._dispatch = {
            isa.MagicWord: self._i_magic,
            isa.MovRI: self._i_mov_ri,
            isa.MovRR: self._i_mov_rr,
            isa.MovFuncAddr: self._i_mov_fa,
            isa.Alu: self._i_alu,
            isa.SetCC: self._i_setcc,
            isa.Load: self._i_load,
            isa.Store: self._i_store,
            isa.Lea: self._i_lea,
            isa.Push: self._i_push,
            isa.Pop: self._i_pop,
            isa.Jmp: self._i_jmp,
            isa.JmpTable: self._i_jmp_table,
            isa.Br: self._i_br,
            isa.CallD: self._i_call_d,
            isa.CallI: self._i_call_i,
            isa.RetPlain: self._i_ret,
            isa.JmpInd: self._i_jmp_ind,
            isa.JmpReg: self._i_jmp_reg,
            isa.CheckMagic: self._i_check_magic,
            isa.BndChk: self._i_bndchk,
            isa.ChkStk: self._i_chkstk,
            isa.TlsBase: self._i_tlsbase,
            isa.ShadowPush: self._i_shadow_push,
            isa.ShadowPop: self._i_shadow_pop,
            isa.Halt: self._i_halt,
            isa.Fail: self._i_fail,
        }
        self.engine = engine
        # Predecoded engine state: code[pc] -> specialized handler.
        # The superblock engine reuses the handler table for its
        # deoptimization path (quantum tails, generic scheduling) and
        # lazily fuses blocks on top of it.
        self._handlers: list | None = None
        self._blocks: list | None = None
        self._fuser = None
        self._hot = None
        if engine == ENGINE_REFERENCE:
            self._step = self._step_reference
        else:
            self._handlers = [
                self._compile_insn(pc, insn)
                for pc, insn in enumerate(self.code)
            ]
            self._step = self._step_predecoded
            if engine == ENGINE_SUPERBLOCK:
                from .superblock import BlockFuser

                self._fuser = BlockFuser(self)
                self._blocks = [None] * len(self.code)
                self._hot = self._run_hot_superblock
            else:
                self._hot = self._run_hot

    # ------------------------------------------------------------------
    # Step hooks (the supported way to observe execution; replaces the
    # old pattern of monkey-patching ``_step``, which composed wrongly
    # when attached twice)

    def add_step_hook(self, hook) -> None:
        """Register ``hook(thread, pc, insn, cycles)`` to run after each
        retired instruction.  ``cycles`` is the simulated cost the
        instruction added to its core, cache penalties included; the
        instruction's cache-miss count is readable from
        ``machine.hook_cache_misses`` during the callback."""
        if hook in self._step_hooks:
            raise ValueError("step hook already attached")
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook) -> None:
        self._step_hooks.remove(hook)

    # ------------------------------------------------------------------
    # Thread management

    def spawn(self, pc: int, stack_slot: int | None = None) -> Thread:
        tid = self._next_tid
        self._next_tid += 1
        slot = stack_slot if stack_slot is not None else tid
        thread = Thread(tid, core=tid % self.n_cores)
        thread.pc = pc
        pub_lo, pub_hi = self.layout.stack_range(False, slot)
        thread.pub_stack = (pub_lo, pub_hi)
        if self.layout.private is not None:
            thread.priv_stack = self.layout.stack_range(True, slot)
        # Leave headroom and keep 16-byte alignment.
        thread.regs[regs.RSP] = pub_hi - 64
        self.threads.append(thread)
        return thread

    @property
    def wall_cycles(self) -> int:
        return max(self.core_cycles)

    @property
    def total_cycles(self) -> int:
        return sum(self.core_cycles)

    # ------------------------------------------------------------------
    # Image snapshot / reset

    def seal(self):
        """Freeze the current state as this machine's *image* — the
        point ``reset()`` rewinds to.  The loader seals every machine
        at the end of ``load()``, so a loaded machine can always be
        rewound to its pristine post-load state without re-linking."""
        from .snapshot import MachineState

        self._image_state = MachineState.capture(self)
        return self._image_state

    def reset(self) -> None:
        """Restore the sealed post-load image in place: memory (lazy,
        copy-on-write), caches, cycle counters, Stats, threads, and
        protection state.  Step hooks stay attached."""
        if self._image_state is None:
            raise ValueError("machine was never sealed; cannot reset")
        self._image_state.restore(self)

    # ------------------------------------------------------------------
    # Execution

    def run(self, max_instructions: int = 500_000_000) -> int:
        """Run until every thread halts; returns main's exit code."""
        try:
            return self._run_loop(max_instructions)
        except MachineFault as fault:
            self.stats.faults[fault.kind] = (
                self.stats.faults.get(fault.kind, 0) + 1
            )
            raise

    def _run_loop(self, max_instructions: int) -> int:
        budget = max_instructions
        quantum = 64
        step = self._step
        while True:
            alive = [t for t in self.threads if t.alive]
            if not alive:
                break
            runnable = []
            for thread in alive:
                if thread.waiting_on is not None:
                    target = next(
                        (t for t in self.threads if t.tid == thread.waiting_on),
                        None,
                    )
                    if target is not None and target.alive:
                        continue  # blocked: burns no cycles
                    thread.waiting_on = None
                    if target is not None:
                        # Resume no earlier than the join target ended.
                        core = thread.core
                        self.core_cycles[core] = max(
                            self.core_cycles[core], target.finish_time
                        )
                # A core idles until the thread it hosts is spawned.
                if self.core_cycles[thread.core] < thread.ready_time:
                    self.core_cycles[thread.core] = thread.ready_time
                runnable.append(thread)
            if not runnable:
                raise MachineFault("deadlock", "all live threads blocked")
            if (
                self._handlers is not None
                and not self._step_hooks
                and len(alive) == 1
                and len(runnable) == 1
            ):
                # Single live thread on a handler-table engine: stay in
                # the hot loop until the schedule could change.
                budget = self._hot(runnable[0], budget, max_instructions)
                continue
            for thread in runnable:
                if not thread.alive:
                    continue
                for _ in range(quantum):
                    if not thread.alive:
                        break
                    # The budget gates *starting* an instruction, so a
                    # program whose final budgeted instruction halts it
                    # still returns its exit code instead of being
                    # misreported as evicted.
                    if budget <= 0:
                        raise MachineFault(
                            "instruction-budget-exhausted",
                            f"exceeded {max_instructions} instructions",
                        )
                    step(thread)
                    budget -= 1
        return self.exit_code if self.exit_code is not None else 0

    def _run_hot(self, thread: Thread, budget: int,
                 max_instructions: int) -> int:
        """Run the only live thread through the predecoded handler
        table, charging the instruction budget once per quantum.

        The quantum is clipped to the remaining budget, so the budget
        fault fires at exactly the same retired instruction as the
        per-step accounting of the generic loop: the fault gates
        *starting* instruction ``budget + 1``, never a program that
        halts on its final budgeted instruction.  Returns the remaining
        budget when the schedule may have changed (thread died, blocked
        on a join, spawned another thread, or a step hook appeared).
        """
        handlers = self._handlers
        n = len(handlers)
        threads = self.threads
        n_threads = len(threads)
        while True:
            chunk = 64 if budget >= 64 else budget
            executed = 0
            for _ in range(chunk):
                if not thread.alive:
                    break
                pc = thread.pc
                if 0 <= pc < n:
                    handlers[pc](thread)
                else:
                    raise MachineFault(FAULT_EXEC, f"pc out of code: {pc}")
                executed += 1
            budget -= executed
            if (
                not thread.alive
                or thread.waiting_on is not None
                or len(threads) != n_threads
                or self._step_hooks
            ):
                return budget
            if budget <= 0:
                raise MachineFault(
                    "instruction-budget-exhausted",
                    f"exceeded {max_instructions} instructions",
                )

    def _run_hot_superblock(self, thread: Thread, budget: int,
                            max_instructions: int) -> int:
        """The superblock hot loop: run the only live thread through
        lazily fused basic-block functions.

        The 64-instruction quantum grid of ``_run_hot`` is observable
        only at budget faults and schedule changes; for a single
        thread, everything in between is a pure performance detail.  So
        the relaxed phase runs whole blocks back to back with no
        quantum bookkeeping while more than one block's worth of budget
        remains, checking the schedule only after blocks that can
        change it (fuse marks blocks containing ``Halt`` or a native
        gateway as impure).  Once the budget gets close, or a schedule
        event fires mid-grid, the precise phase single-steps the
        predecoded handlers along the exact virtual quantum boundaries
        ``_run_hot`` would have used, so budget faults and
        schedule-change returns land on bit-identical machine states.
        """
        handlers = self._handlers
        blocks = self._blocks
        fuse = self._fuser.fuse
        n = len(handlers)
        threads = self.threads
        n_threads = len(threads)
        hooks = self._step_hooks
        budget0 = budget
        executed = 0
        while budget0 - executed > 64:
            pc = thread.pc
            if not 0 <= pc < n:
                raise MachineFault(FAULT_EXEC, f"pc out of code: {pc}")
            entry = blocks[pc]
            if entry is None:
                entry = blocks[pc] = fuse(pc)
            entry[0](thread)
            executed += entry[1]
            if entry[2]:
                continue
            if (
                not thread.alive
                or thread.waiting_on is not None
                or len(threads) != n_threads
                or hooks
            ):
                break
        while True:
            if (
                not thread.alive
                or thread.waiting_on is not None
                or len(threads) != n_threads
                or hooks
            ):
                # Finish the quantum the event fell inside: _run_hot
                # only returns on a 64-grid (or budget) boundary.
                target = min(-(-executed // 64) * 64, budget0)
                while executed < target and thread.alive:
                    pc = thread.pc
                    if not 0 <= pc < n:
                        raise MachineFault(
                            FAULT_EXEC, f"pc out of code: {pc}"
                        )
                    handlers[pc](thread)
                    executed += 1
                return budget0 - executed
            if executed >= budget0:
                raise MachineFault(
                    "instruction-budget-exhausted",
                    f"exceeded {max_instructions} instructions",
                )
            target = min((executed // 64 + 1) * 64, budget0)
            while executed < target:
                if not thread.alive:
                    break
                pc = thread.pc
                if not 0 <= pc < n:
                    raise MachineFault(FAULT_EXEC, f"pc out of code: {pc}")
                handlers[pc](thread)
                executed += 1

    def _step_reference(self, thread: Thread) -> None:
        """One instruction via dict dispatch (the reference engine)."""
        pc = thread.pc
        if not 0 <= pc < len(self.code):
            # An explicit bounds check: Python's negative indexing would
            # otherwise let a negative PC silently wrap around and
            # execute the wrong instruction instead of faulting.
            raise MachineFault(FAULT_EXEC, f"pc out of code: {pc}")
        insn = self.code[pc]
        hooks = self._step_hooks
        if not hooks:
            self.stats.instructions += 1
            self.core_cycles[thread.core] += costs.BASE_COST[insn.cost_class]
            self._dispatch[type(insn)](thread, insn)
            return
        cache = self.caches[thread.core]
        before = self.core_cycles[thread.core]
        misses_before = cache.misses
        self.stats.instructions += 1
        self.core_cycles[thread.core] += costs.BASE_COST[insn.cost_class]
        self._dispatch[type(insn)](thread, insn)
        cycles = self.core_cycles[thread.core] - before
        self.hook_cache_misses = cache.misses - misses_before
        for hook in hooks:
            hook(thread, pc, insn, cycles)

    def _step_predecoded(self, thread: Thread) -> None:
        """One instruction via the predecoded handler table."""
        handlers = self._handlers
        pc = thread.pc
        if not 0 <= pc < len(handlers):
            raise MachineFault(FAULT_EXEC, f"pc out of code: {pc}")
        hooks = self._step_hooks
        if not hooks:
            handlers[pc](thread)
            return
        cache = self.caches[thread.core]
        before = self.core_cycles[thread.core]
        misses_before = cache.misses
        handlers[pc](thread)
        cycles = self.core_cycles[thread.core] - before
        self.hook_cache_misses = cache.misses - misses_before
        insn = self.code[pc]
        for hook in hooks:
            hook(thread, pc, insn, cycles)

    def charge(self, thread: Thread, cycles: int) -> None:
        self.core_cycles[thread.core] += cycles

    def publish_metrics(self, registry) -> None:
        """Snapshot execution counters into an obs registry.

        Counter names follow docs/OBSERVABILITY.md; calling this twice
        on the same registry accumulates (counters are monotonic).
        """
        stats = self.stats
        counter = registry.counter
        counter("machine.instructions").inc(stats.instructions)
        counter("machine.checks", kind="bnd").inc(stats.bnd_checks)
        counter("machine.checks", kind="cfi").inc(stats.cfi_checks)
        counter("machine.calls").inc(stats.calls)
        counter("machine.t_calls").inc(stats.t_calls)
        if self.config.separate_tu:
            counter("machine.t_stack_switches").inc(stats.t_calls)
        counter("machine.loads").inc(stats.loads)
        counter("machine.stores").inc(stats.stores)
        counter("machine.cycles.wall").inc(self.wall_cycles)
        counter("machine.cycles.total").inc(self.total_cycles)
        counter("machine.threads").inc(len(self.threads))
        counter("machine.cache.hits").inc(sum(c.hits for c in self.caches))
        counter("machine.cache.misses").inc(sum(c.misses for c in self.caches))
        for kind in sorted(stats.faults):
            counter("machine.faults", kind=kind).inc(stats.faults[kind])

    # ------------------------------------------------------------------
    # Operand helpers

    def _val(self, thread: Thread, operand) -> int:
        if isinstance(operand, isa.Imm):
            return operand.value & MASK64
        return thread.regs[operand]

    def effective_address(self, thread: Thread, mem: isa.Mem) -> int:
        if mem.abs is not None:
            addr = mem.abs + mem.disp
            if mem.index is not None:
                index = thread.regs[mem.index]
                if mem.use32:
                    index &= MASK32
                addr += index * mem.scale
        else:
            base = thread.regs[mem.base]
            if mem.use32:
                base &= MASK32
            addr = base + mem.disp
            if mem.index is not None:
                index = thread.regs[mem.index]
                if mem.use32:
                    index &= MASK32
                addr += index * mem.scale
        if mem.seg == isa.SEG_FS:
            addr += self.fs_base
        elif mem.seg == isa.SEG_GS:
            addr += self.gs_base
        return addr & MASK64

    def _touch(self, thread: Thread, addr: int, size: int = 1) -> None:
        """Charge L1 traffic for every cache line the access spans.

        An access crossing a 64-byte line boundary occupies both lines
        (the cache-pressure effect the Figure 6 OurMPX vs OurMPX-Sep
        gap is built on), so each spanned line is touched and each miss
        charged — not just the first.
        """
        cache = self.caches[thread.core]
        if (addr & (LINE_SIZE - 1)) + size <= LINE_SIZE:
            if not cache.access(addr):
                self.core_cycles[thread.core] += costs.CACHE_MISS_PENALTY
            return
        misses = cache.access_span(addr, size)
        if misses:
            self.core_cycles[thread.core] += (
                misses * costs.CACHE_MISS_PENALTY
            )

    def read_data(self, thread: Thread, addr: int, size: int) -> int:
        if addr >= CODE_BASE:
            word = self.read_code_word(addr)
            if size >= 8:
                return word
            # Sub-word reads of code-as-data truncate to the requested
            # width, exactly like sub-word reads of ordinary memory.
            return word & ((1 << (8 * size)) - 1)
        self._touch(thread, addr, size)
        return self.mem.read_int(addr, size)

    def write_data(self, thread: Thread, addr: int, size: int, value: int):
        if addr >= CODE_BASE:
            raise MachineFault(FAULT_UNMAPPED, "write to code space", addr=addr)
        self._touch(thread, addr, size)
        self.mem.write_int(addr, size, value)

    def read_code_word(self, addr: int) -> int:
        index = addr - CODE_BASE
        if 0 <= index < len(self.code):
            return self.code[index].encoding()
        raise MachineFault(FAULT_UNMAPPED, "code read out of range", addr=addr)

    # ------------------------------------------------------------------
    # Instruction semantics (reference engine)

    def _i_magic(self, t, insn):
        t.pc += 1

    def _i_mov_ri(self, t, insn):
        t.regs[insn.dst] = insn.imm & MASK64
        t.pc += 1

    def _i_mov_rr(self, t, insn):
        t.regs[insn.dst] = t.regs[insn.src]
        t.pc += 1

    def _i_mov_fa(self, t, insn):
        t.regs[insn.dst] = insn.value & MASK64
        t.pc += 1

    def _i_alu(self, t, insn):
        a = self._val(t, insn.a)
        if insn.op in ("neg", "not"):
            t.regs[insn.dst] = eval_un(insn.op, a)
        else:
            t.regs[insn.dst] = eval_bin(insn.op, a, self._val(t, insn.b))
        t.pc += 1

    def _i_setcc(self, t, insn):
        t.regs[insn.dst] = eval_bin(
            insn.op, self._val(t, insn.a), self._val(t, insn.b)
        )
        t.pc += 1

    def _i_load(self, t, insn):
        addr = self.effective_address(t, insn.mem)
        t.regs[insn.dst] = self.read_data(t, addr, insn.size)
        self.stats.loads += 1
        t.pc += 1

    def _i_store(self, t, insn):
        addr = self.effective_address(t, insn.mem)
        self.write_data(t, addr, insn.size, self._val(t, insn.src))
        self.stats.stores += 1
        t.pc += 1

    def _i_lea(self, t, insn):
        t.regs[insn.dst] = self.effective_address(t, insn.mem)
        t.pc += 1

    def _i_push(self, t, insn):
        rsp = (t.regs[regs.RSP] - 8) & MASK64
        t.regs[regs.RSP] = rsp
        self.write_data(t, rsp, 8, self._val(t, insn.src))
        t.pc += 1

    def _i_pop(self, t, insn):
        rsp = t.regs[regs.RSP]
        t.regs[insn.dst] = self.read_data(t, rsp, 8)
        t.regs[regs.RSP] = (rsp + 8) & MASK64
        t.pc += 1

    def _i_jmp(self, t, insn):
        t.pc = insn.addr

    def _i_jmp_table(self, t, insn):
        index = signed(t.regs[insn.reg]) - insn.base
        if not (0 <= index < len(insn.addrs)):
            raise MachineFault(FAULT_EXEC, "jump-table index out of range")
        # Table load + indirect branch.
        self.core_cycles[t.core] += 1 + costs.INDIRECT_JUMP_EXTRA
        t.pc = insn.addrs[index]

    def _i_br(self, t, insn):
        taken = eval_bin(insn.op, self._val(t, insn.a), self._val(t, insn.b))
        t.pc = insn.addr if taken else t.pc + 1

    def _i_call_d(self, t, insn):
        self.stats.calls += 1
        retaddr = CODE_BASE + t.pc + 1
        rsp = (t.regs[regs.RSP] - 8) & MASK64
        t.regs[regs.RSP] = rsp
        self.write_data(t, rsp, 8, retaddr)
        t.pc = insn.addr

    def _i_call_i(self, t, insn):
        self.stats.calls += 1
        target = t.regs[insn.reg]
        if not (CODE_BASE <= target < CODE_BASE + len(self.code)):
            raise MachineFault(FAULT_EXEC, "indirect call outside code",
                               addr=target)
        retaddr = CODE_BASE + t.pc + 1
        rsp = (t.regs[regs.RSP] - 8) & MASK64
        t.regs[regs.RSP] = rsp
        self.write_data(t, rsp, 8, retaddr)
        t.pc = target - CODE_BASE

    def _i_ret(self, t, insn):
        rsp = t.regs[regs.RSP]
        target = self.read_data(t, rsp, 8)
        t.regs[regs.RSP] = (rsp + 8) & MASK64
        if not (CODE_BASE <= target < CODE_BASE + len(self.code)):
            raise MachineFault(FAULT_EXEC, "return outside code", addr=target)
        t.pc = target - CODE_BASE

    def _i_jmp_ind(self, t, insn):
        addr = self.effective_address(t, insn.mem)
        target = self.read_data(t, addr, 8)
        self.core_cycles[t.core] += costs.INDIRECT_JUMP_EXTRA
        if target >= NATIVE_BASE:
            self._native(t, target - NATIVE_BASE)
            return
        if CODE_BASE <= target < CODE_BASE + len(self.code):
            t.pc = target - CODE_BASE
            return
        raise MachineFault(FAULT_EXEC, "indirect jump target", addr=target)

    def _i_jmp_reg(self, t, insn):
        target = t.regs[insn.reg] + insn.skip
        self.core_cycles[t.core] += costs.INDIRECT_JUMP_EXTRA
        # Strict upper bound: CODE_BASE + len(code) is one past the last
        # word and must fault here, not execute garbage.
        if not (CODE_BASE <= target < CODE_BASE + len(self.code)):
            raise MachineFault(FAULT_EXEC, "jump outside code", addr=target)
        t.pc = target - CODE_BASE

    def _i_check_magic(self, t, insn):
        self.stats.cfi_checks += 1
        target = t.regs[insn.reg]
        word = self.read_code_word(target)  # faults if not code
        expected = ~insn.inv_value & MASK64
        if word != expected:
            raise MachineFault(
                FAULT_CFI,
                f"magic mismatch at target (kind={insn.kind})",
                addr=target,
            )
        t.pc += 1

    def _i_bndchk(self, t, insn):
        self.stats.bnd_checks += 1
        if insn.mem is not None:
            addr = self.effective_address(t, insn.mem)
            self.core_cycles[t.core] += costs.BNDCHK_MEM_EXTRA
        else:
            addr = t.regs[insn.reg]
        lo, hi = self.bnd[insn.bnd]
        if not (lo <= addr < hi):
            raise MachineFault(
                FAULT_BOUNDS,
                f"bnd{insn.bnd} violation [{lo:#x},{hi:#x})",
                addr=addr,
            )
        t.pc += 1

    def _i_chkstk(self, t, insn):
        rsp = t.regs[regs.RSP]
        lo, hi = t.pub_stack
        if not (lo <= rsp <= hi):
            raise MachineFault(FAULT_CHKSTK, "rsp escaped its stack", addr=rsp)
        t.pc += 1

    def _i_tlsbase(self, t, insn):
        t.regs[insn.dst] = t.regs[regs.RSP] & ~(THREAD_STACK_SIZE - 1)
        t.pc += 1

    def _i_shadow_push(self, t, insn):
        t.shadow.append(self.read_data(t, t.regs[regs.RSP], 8))
        t.pc += 1

    def _i_shadow_pop(self, t, insn):
        actual = self.read_data(t, t.regs[regs.RSP], 8)
        if not t.shadow or t.shadow.pop() != actual:
            raise MachineFault(FAULT_CFI, "shadow stack mismatch")
        t.pc += 1

    def _i_halt(self, t, insn):
        t.alive = False
        t.finish_time = self.core_cycles[t.core]
        if t.tid == 0:
            self.exit_code = t.regs[regs.RAX]

    def _i_fail(self, t, insn):
        raise MachineFault(FAULT_CFI, "__debugbreak reached")

    # ------------------------------------------------------------------
    # Predecoded engine: per-instruction handler compilation.
    #
    # Each handler folds the reference engine's per-step work — the
    # type-dispatch dict lookup, the BASE_COST table read, and generic
    # `_val`/`effective_address` operand decoding — into one closure
    # specialized at load time.  Mutable architectural state (bnd
    # ranges, fs/gs bases, cycle counters, bound registers) is still
    # read at execute time, so loader and test mutations behave exactly
    # as under the reference engine.

    def _compile_addr(self, mem_op: isa.Mem):
        """An effective-address closure specialized for the common
        reg+disp shapes; anything unusual falls back to the generic
        :meth:`effective_address`."""
        m = self
        disp, scale = mem_op.disp, mem_op.scale
        if mem_op.abs is not None:
            const = mem_op.abs + disp
            if mem_op.index is None and mem_op.seg is None:
                folded = const & MASK64
                return lambda t: folded
            if mem_op.seg is None:
                idx = mem_op.index
                if mem_op.use32:
                    return lambda t: (
                        const + (t.regs[idx] & MASK32) * scale
                    ) & MASK64
                return lambda t: (const + t.regs[idx] * scale) & MASK64
            return lambda t: m.effective_address(t, mem_op)
        base = mem_op.base
        if not mem_op.use32 and mem_op.seg is None:
            if mem_op.index is None:
                return lambda t: (t.regs[base] + disp) & MASK64
            idx = mem_op.index
            return lambda t: (
                t.regs[base] + disp + t.regs[idx] * scale
            ) & MASK64
        if mem_op.use32:
            idx = mem_op.index
            if mem_op.seg == isa.SEG_FS:
                if idx is None:
                    return lambda t: (
                        (t.regs[base] & MASK32) + disp + m.fs_base
                    ) & MASK64
                return lambda t: (
                    (t.regs[base] & MASK32) + disp
                    + (t.regs[idx] & MASK32) * scale + m.fs_base
                ) & MASK64
            if mem_op.seg == isa.SEG_GS:
                if idx is None:
                    return lambda t: (
                        (t.regs[base] & MASK32) + disp + m.gs_base
                    ) & MASK64
                return lambda t: (
                    (t.regs[base] & MASK32) + disp
                    + (t.regs[idx] & MASK32) * scale + m.gs_base
                ) & MASK64
            if idx is None:
                return lambda t: ((t.regs[base] & MASK32) + disp) & MASK64
            return lambda t: (
                (t.regs[base] & MASK32) + disp
                + (t.regs[idx] & MASK32) * scale
            ) & MASK64
        return lambda t: m.effective_address(t, mem_op)

    def _operand_getter(self, operand):
        if isinstance(operand, isa.Imm):
            value = operand.value & MASK64
            return lambda t: value
        return lambda t: t.regs[operand]

    def _compile_insn(self, pc: int, insn):
        m = self
        stats = self.stats
        core_cycles = self.core_cycles
        caches = self.caches
        mem_read = self.mem.read_int
        mem_write = self.mem.write_int
        # The page dict and read-only index are mutated in place by the
        # loader (never reassigned), so capturing the dict objects here
        # stays coherent with later map_range/protect_read_only calls.
        pages = self.mem._pages
        ro_pages = self.mem._ro_pages
        from_bytes = int.from_bytes
        bnd = self.bnd
        RSP = regs.RSP
        MISS = costs.CACHE_MISS_PENALTY
        LINE_MASK = LINE_SIZE - 1
        code_end = CODE_BASE + len(self.code)
        npc = pc + 1
        kind = type(insn)

        try:
            cost = costs.BASE_COST[insn.cost_class]
        except KeyError:
            cost = None
        if cost is None or kind not in self._dispatch:
            # Unknown instruction (or cost class): replay the reference
            # engine's behaviour lazily so the error surfaces at the
            # same moment, not at load time.
            dispatch = self._dispatch

            def h_fallback(t, insn=insn):
                stats.instructions += 1
                core_cycles[t.core] += costs.BASE_COST[insn.cost_class]
                dispatch[type(insn)](t, insn)

            return h_fallback

        def touch(core, addr, size):
            if (addr & LINE_MASK) + size <= LINE_SIZE:
                if not caches[core].access(addr):
                    core_cycles[core] += MISS
            else:
                misses = caches[core].access_span(addr, size)
                if misses:
                    core_cycles[core] += misses * MISS

        if kind is isa.MagicWord:
            def h(t):
                stats.instructions += 1
                t.pc = npc
            return h

        if kind is isa.Halt:
            RAX = regs.RAX

            def h(t):
                stats.instructions += 1
                t.alive = False
                t.finish_time = core_cycles[t.core]
                if t.tid == 0:
                    m.exit_code = t.regs[RAX]
            return h

        if kind is isa.Fail:
            def h(t):
                stats.instructions += 1
                raise MachineFault(FAULT_CFI, "__debugbreak reached")
            return h

        if kind is isa.MovRI:
            dst, value = insn.dst, insn.imm & MASK64

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = value
                t.pc = npc
            return h

        if kind is isa.MovRR:
            dst, src = insn.dst, insn.src

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = t.regs[src]
                t.pc = npc
            return h

        if kind is isa.MovFuncAddr:
            dst, value = insn.dst, insn.value & MASK64

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = value
                t.pc = npc
            return h

        if kind is isa.Alu:
            return self._compile_alu(insn, cost, npc)

        if kind is isa.SetCC:
            return self._compile_setcc(insn, cost, npc)

        if kind is isa.Load:
            dst, size = insn.dst, insn.size
            mask = (1 << (8 * size)) - 1
            addr_of = self._compile_addr(insn.mem)
            full = size >= 8

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                addr = addr_of(t)
                if addr >= CODE_BASE:
                    word = m.read_code_word(addr)
                    value = word if full else word & mask
                else:
                    if (addr & LINE_MASK) + size <= LINE_SIZE:
                        if not caches[core].access(addr):
                            core_cycles[core] += MISS
                    else:
                        touch(core, addr, size)
                    offset = addr & PAGE_MASK
                    page = pages.get(addr - offset)
                    if page is not None and offset + size <= PAGE_SIZE:
                        value = from_bytes(
                            page[offset : offset + size], "little"
                        )
                    else:
                        value = mem_read(addr, size)
                t.regs[dst] = value
                stats.loads += 1
                t.pc = npc
            return h

        if kind is isa.Store:
            size = insn.size
            addr_of = self._compile_addr(insn.mem)
            vmask = (1 << (8 * size)) - 1
            is_imm = isinstance(insn.src, isa.Imm)
            imm = insn.src.value & MASK64 if is_imm else None
            src = None if is_imm else insn.src

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                addr = addr_of(t)
                if addr >= CODE_BASE:
                    raise MachineFault(
                        FAULT_UNMAPPED, "write to code space", addr=addr
                    )
                if (addr & LINE_MASK) + size <= LINE_SIZE:
                    if not caches[core].access(addr):
                        core_cycles[core] += MISS
                else:
                    touch(core, addr, size)
                value = imm if is_imm else t.regs[src]
                offset = addr & PAGE_MASK
                if offset + size <= PAGE_SIZE:
                    base = addr - offset
                    ranges = ro_pages.get(base)
                    if ranges is not None:
                        for lo, hi in ranges:
                            if addr < hi and addr + size > lo:
                                raise MachineFault(
                                    FAULT_PERM,
                                    "write to read-only memory",
                                    addr=addr,
                                )
                    page = pages.get(base)
                    if page is not None:
                        page[offset : offset + size] = (
                            value & vmask
                        ).to_bytes(size, "little")
                    else:
                        mem_write(addr, size, value)
                else:
                    mem_write(addr, size, value)
                stats.stores += 1
                t.pc = npc
            return h

        if kind is isa.Lea:
            dst = insn.dst
            addr_of = self._compile_addr(insn.mem)

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = addr_of(t)
                t.pc = npc
            return h

        if kind is isa.Push:
            get_src = self._operand_getter(insn.src)

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                rsp = (t.regs[RSP] - 8) & MASK64
                t.regs[RSP] = rsp
                value = get_src(t)
                if rsp >= CODE_BASE:
                    raise MachineFault(
                        FAULT_UNMAPPED, "write to code space", addr=rsp
                    )
                if (rsp & LINE_MASK) + 8 <= LINE_SIZE:
                    if not caches[core].access(rsp):
                        core_cycles[core] += MISS
                else:
                    touch(core, rsp, 8)
                offset = rsp & PAGE_MASK
                page = None
                if offset + 8 <= PAGE_SIZE and not ro_pages.get(rsp - offset):
                    page = pages.get(rsp - offset)
                if page is not None:
                    page[offset : offset + 8] = value.to_bytes(8, "little")
                else:
                    mem_write(rsp, 8, value)
                t.pc = npc
            return h

        if kind is isa.Pop:
            dst = insn.dst

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                rsp = t.regs[RSP]
                if rsp >= CODE_BASE:
                    value = m.read_code_word(rsp)
                else:
                    if (rsp & LINE_MASK) + 8 <= LINE_SIZE:
                        if not caches[core].access(rsp):
                            core_cycles[core] += MISS
                    else:
                        touch(core, rsp, 8)
                    offset = rsp & PAGE_MASK
                    page = pages.get(rsp - offset)
                    if page is not None and offset + 8 <= PAGE_SIZE:
                        value = from_bytes(page[offset : offset + 8], "little")
                    else:
                        value = mem_read(rsp, 8)
                t.regs[dst] = value
                t.regs[RSP] = (rsp + 8) & MASK64
                t.pc = npc
            return h

        if kind is isa.Jmp:
            addr = insn.addr

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.pc = addr
            return h

        if kind is isa.JmpTable:
            reg_i, base, addrs = insn.reg, insn.base, insn.addrs
            extra = 1 + costs.INDIRECT_JUMP_EXTRA

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                index = signed(t.regs[reg_i]) - base
                if not (0 <= index < len(addrs)):
                    raise MachineFault(
                        FAULT_EXEC, "jump-table index out of range"
                    )
                core_cycles[core] += extra
                t.pc = addrs[index]
            return h

        if kind is isa.Br:
            return self._compile_br(insn, cost, npc)

        if kind is isa.CallD:
            addr = insn.addr
            retaddr = CODE_BASE + npc

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                stats.calls += 1
                rsp = (t.regs[RSP] - 8) & MASK64
                t.regs[RSP] = rsp
                if rsp >= CODE_BASE:
                    raise MachineFault(
                        FAULT_UNMAPPED, "write to code space", addr=rsp
                    )
                touch(core, rsp, 8)
                mem_write(rsp, 8, retaddr)
                t.pc = addr
            return h

        if kind is isa.CallI:
            reg_i = insn.reg
            retaddr = CODE_BASE + npc

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                stats.calls += 1
                target = t.regs[reg_i]
                if not (CODE_BASE <= target < code_end):
                    raise MachineFault(
                        FAULT_EXEC, "indirect call outside code", addr=target
                    )
                rsp = (t.regs[RSP] - 8) & MASK64
                t.regs[RSP] = rsp
                if rsp >= CODE_BASE:
                    raise MachineFault(
                        FAULT_UNMAPPED, "write to code space", addr=rsp
                    )
                touch(core, rsp, 8)
                mem_write(rsp, 8, retaddr)
                t.pc = target - CODE_BASE
            return h

        if kind is isa.RetPlain:
            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                rsp = t.regs[RSP]
                if rsp >= CODE_BASE:
                    target = m.read_code_word(rsp)
                else:
                    touch(core, rsp, 8)
                    target = mem_read(rsp, 8)
                t.regs[RSP] = (rsp + 8) & MASK64
                if not (CODE_BASE <= target < code_end):
                    raise MachineFault(
                        FAULT_EXEC, "return outside code", addr=target
                    )
                t.pc = target - CODE_BASE
            return h

        if kind is isa.JmpInd:
            addr_of = self._compile_addr(insn.mem)
            extra = costs.INDIRECT_JUMP_EXTRA

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                addr = addr_of(t)
                target = m.read_data(t, addr, 8)
                core_cycles[core] += extra
                if target >= NATIVE_BASE:
                    m._native(t, target - NATIVE_BASE)
                    return
                if CODE_BASE <= target < code_end:
                    t.pc = target - CODE_BASE
                    return
                raise MachineFault(
                    FAULT_EXEC, "indirect jump target", addr=target
                )
            return h

        if kind is isa.JmpReg:
            reg_i, skip = insn.reg, insn.skip
            extra = costs.INDIRECT_JUMP_EXTRA

            def h(t):
                stats.instructions += 1
                core = t.core
                core_cycles[core] += cost
                target = t.regs[reg_i] + skip
                core_cycles[core] += extra
                if not (CODE_BASE <= target < code_end):
                    raise MachineFault(
                        FAULT_EXEC, "jump outside code", addr=target
                    )
                t.pc = target - CODE_BASE
            return h

        if kind is isa.CheckMagic:
            reg_i = insn.reg
            expected = ~insn.inv_value & MASK64
            magic_kind = insn.kind

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                stats.cfi_checks += 1
                target = t.regs[reg_i]
                word = m.read_code_word(target)  # faults if not code
                if word != expected:
                    raise MachineFault(
                        FAULT_CFI,
                        f"magic mismatch at target (kind={magic_kind})",
                        addr=target,
                    )
                t.pc = npc
            return h

        if kind is isa.BndChk:
            bnd_i = insn.bnd
            if insn.mem is not None:
                addr_of = self._compile_addr(insn.mem)
                extra = costs.BNDCHK_MEM_EXTRA

                def h(t):
                    stats.instructions += 1
                    core = t.core
                    core_cycles[core] += cost
                    stats.bnd_checks += 1
                    addr = addr_of(t)
                    core_cycles[core] += extra
                    lo, hi = bnd[bnd_i]
                    if not (lo <= addr < hi):
                        raise MachineFault(
                            FAULT_BOUNDS,
                            f"bnd{bnd_i} violation [{lo:#x},{hi:#x})",
                            addr=addr,
                        )
                    t.pc = npc
                return h
            reg_i = insn.reg

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                stats.bnd_checks += 1
                addr = t.regs[reg_i]
                lo, hi = bnd[bnd_i]
                if not (lo <= addr < hi):
                    raise MachineFault(
                        FAULT_BOUNDS,
                        f"bnd{bnd_i} violation [{lo:#x},{hi:#x})",
                        addr=addr,
                    )
                t.pc = npc
            return h

        if kind is isa.ChkStk:
            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                rsp = t.regs[RSP]
                lo, hi = t.pub_stack
                if not (lo <= rsp <= hi):
                    raise MachineFault(
                        FAULT_CHKSTK, "rsp escaped its stack", addr=rsp
                    )
                t.pc = npc
            return h

        if kind is isa.TlsBase:
            dst = insn.dst
            tls_mask = ~(THREAD_STACK_SIZE - 1)

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = t.regs[RSP] & tls_mask
                t.pc = npc
            return h

        if kind is isa.ShadowPush:
            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.shadow.append(m.read_data(t, t.regs[RSP], 8))
                t.pc = npc
            return h

        if kind is isa.ShadowPop:
            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                actual = m.read_data(t, t.regs[RSP], 8)
                if not t.shadow or t.shadow.pop() != actual:
                    raise MachineFault(FAULT_CFI, "shadow stack mismatch")
                t.pc = npc
            return h

        # Dispatchable type without a specialized template: execute it
        # through the reference semantics with the cost pre-resolved.
        handler = self._dispatch[kind]

        def h_generic(t, insn=insn):
            stats.instructions += 1
            core_cycles[t.core] += cost
            handler(t, insn)

        return h_generic

    def _compile_alu(self, insn, cost: int, npc: int):
        stats = self.stats
        core_cycles = self.core_cycles
        dst, op = insn.dst, insn.op

        if op in ("neg", "not"):
            if isinstance(insn.a, isa.Imm):
                value = eval_un(op, insn.a.value & MASK64)

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.regs[dst] = value
                    t.pc = npc
                return h
            a = insn.a
            if op == "neg":
                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.regs[dst] = -t.regs[a] & MASK64
                    t.pc = npc
                return h

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = ~t.regs[a] & MASK64
                t.pc = npc
            return h

        a_imm = isinstance(insn.a, isa.Imm)
        b_imm = isinstance(insn.b, isa.Imm)
        if a_imm and b_imm and op not in ("div", "mod"):
            # Faultless constant operations fold at predecode time;
            # div/mod must keep faulting at execute time.
            value = eval_bin(op, insn.a.value & MASK64, insn.b.value & MASK64)

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = value
                t.pc = npc
            return h

        if op in ("add", "sub") and not a_imm:
            a = insn.a
            if b_imm:
                bv = insn.b.value & MASK64
                if op == "sub":
                    bv = -bv

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.regs[dst] = (t.regs[a] + bv) & MASK64
                    t.pc = npc
                return h
            b = insn.b
            if op == "add":
                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.regs[dst] = (t.regs[a] + t.regs[b]) & MASK64
                    t.pc = npc
                return h

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = (t.regs[a] - t.regs[b]) & MASK64
                t.pc = npc
            return h

        if op in ("and", "or", "xor") and not a_imm:
            a = insn.a
            bit_op = {"and": operator.and_, "or": operator.or_,
                      "xor": operator.xor}[op]
            if b_imm:
                bv = insn.b.value & MASK64

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.regs[dst] = bit_op(t.regs[a], bv)
                    t.pc = npc
                return h
            b = insn.b

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = bit_op(t.regs[a], t.regs[b])
                t.pc = npc
            return h

        if op == "mul" and not a_imm:
            a = insn.a
            if b_imm:
                sb = signed(insn.b.value)

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    av = t.regs[a]
                    if av & SIGN_BIT:
                        av -= TWO64
                    t.regs[dst] = (av * sb) & MASK64
                    t.pc = npc
                return h
            b = insn.b

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                av = t.regs[a]
                if av & SIGN_BIT:
                    av -= TWO64
                bv = t.regs[b]
                if bv & SIGN_BIT:
                    bv -= TWO64
                t.regs[dst] = (av * bv) & MASK64
                t.pc = npc
            return h

        if op in ("shl", "shr") and not a_imm and b_imm:
            a = insn.a
            sh = insn.b.value & 63
            if op == "shl":
                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.regs[dst] = (t.regs[a] << sh) & MASK64
                    t.pc = npc
                return h

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                av = t.regs[a]
                if av & SIGN_BIT:
                    av -= TWO64
                t.regs[dst] = (av >> sh) & MASK64
                t.pc = npc
            return h

        ga = self._operand_getter(insn.a)
        gb = self._operand_getter(insn.b)

        def h(t):
            stats.instructions += 1
            core_cycles[t.core] += cost
            t.regs[dst] = eval_bin(op, ga(t), gb(t))
            t.pc = npc
        return h

    def _compile_setcc(self, insn, cost: int, npc: int):
        stats = self.stats
        core_cycles = self.core_cycles
        dst, op = insn.dst, insn.op
        a_imm = isinstance(insn.a, isa.Imm)
        b_imm = isinstance(insn.b, isa.Imm)

        if a_imm and b_imm:
            value = eval_bin(op, insn.a.value & MASK64, insn.b.value & MASK64)

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = value
                t.pc = npc
            return h

        if not a_imm and op in ("eq", "ne"):
            a = insn.a
            want = op == "eq"
            if b_imm:
                bv = insn.b.value & MASK64

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.regs[dst] = 1 if (t.regs[a] == bv) is want else 0
                    t.pc = npc
                return h
            b = insn.b

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.regs[dst] = 1 if (t.regs[a] == t.regs[b]) is want else 0
                t.pc = npc
            return h

        if not a_imm and op in _SIGNED_CMPS:
            a = insn.a
            cmp = _SIGNED_CMPS[op]
            if b_imm:
                sb = signed(insn.b.value)

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    av = t.regs[a]
                    if av & SIGN_BIT:
                        av -= TWO64
                    t.regs[dst] = 1 if cmp(av, sb) else 0
                    t.pc = npc
                return h
            b = insn.b

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                av = t.regs[a]
                if av & SIGN_BIT:
                    av -= TWO64
                bv = t.regs[b]
                if bv & SIGN_BIT:
                    bv -= TWO64
                t.regs[dst] = 1 if cmp(av, bv) else 0
                t.pc = npc
            return h

        ga = self._operand_getter(insn.a)
        gb = self._operand_getter(insn.b)

        def h(t):
            stats.instructions += 1
            core_cycles[t.core] += cost
            t.regs[dst] = eval_bin(op, ga(t), gb(t))
            t.pc = npc
        return h

    def _compile_br(self, insn, cost: int, npc: int):
        stats = self.stats
        core_cycles = self.core_cycles
        op, addr = insn.op, insn.addr
        a_imm = isinstance(insn.a, isa.Imm)
        b_imm = isinstance(insn.b, isa.Imm)

        if not a_imm and op in ("eq", "ne"):
            a = insn.a
            want = op == "eq"
            if b_imm:
                bv = insn.b.value & MASK64

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    t.pc = addr if (t.regs[a] == bv) is want else npc
                return h
            b = insn.b

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                t.pc = addr if (t.regs[a] == t.regs[b]) is want else npc
            return h

        if not a_imm and op in _SIGNED_CMPS:
            a = insn.a
            cmp = _SIGNED_CMPS[op]
            if b_imm:
                sb = signed(insn.b.value)

                def h(t):
                    stats.instructions += 1
                    core_cycles[t.core] += cost
                    av = t.regs[a]
                    if av & SIGN_BIT:
                        av -= TWO64
                    t.pc = addr if cmp(av, sb) else npc
                return h
            b = insn.b

            def h(t):
                stats.instructions += 1
                core_cycles[t.core] += cost
                av = t.regs[a]
                if av & SIGN_BIT:
                    av -= TWO64
                bv = t.regs[b]
                if bv & SIGN_BIT:
                    bv -= TWO64
                t.pc = addr if cmp(av, bv) else npc
            return h

        ga = self._operand_getter(insn.a)
        gb = self._operand_getter(insn.b)

        def h(t):
            stats.instructions += 1
            core_cycles[t.core] += cost
            t.pc = addr if eval_bin(op, ga(t), gb(t)) else npc
        return h

    # ------------------------------------------------------------------
    # Trusted dispatch

    def _native(self, t: Thread, index: int) -> None:
        self.stats.t_calls += 1
        if not (0 <= index < len(self.natives)):
            raise MachineFault(FAULT_EXEC, f"bad native index {index}")
        self.natives[index](self, t)
