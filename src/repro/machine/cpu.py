"""The virtual CPU: executes linked binaries with cycle accounting.

The machine implements ConfISA exactly as the instrumentation expects:

* memory operands compute ``seg + (base & 0xffffffff) + ...`` when the
  32-bit segmentation addressing is in use, so fs/gs-prefixed accesses
  physically cannot escape their segment (Section 3);
* MPX bound checks compare against the ``bnd0``/``bnd1`` ranges the
  loader installed and fault on violation;
* CFI checks read *code as data*: ``CheckMagic`` fetches the 64-bit
  encoding of the word at the target address and compares it with the
  (re-negated) expected magic value (Section 4);
* unmapped accesses fault — guard areas are simply unmapped.

Multi-threading is round-robin over a fixed number of cores with
per-core cycle counters and per-core L1 caches; simulated wall-clock
time is the maximum core time.
"""

from __future__ import annotations

from ..arith import MASK64, eval_bin, eval_un
from ..backend import isa, regs
from ..errors import (
    FAULT_BOUNDS,
    FAULT_CFI,
    FAULT_CHKSTK,
    FAULT_EXEC,
    FAULT_UNMAPPED,
    MachineFault,
)
from ..link.layout import CODE_BASE, NATIVE_BASE, THREAD_STACK_SIZE
from . import costs
from .cache import L1Cache
from .memory import Memory

MASK32 = 0xFFFFFFFF


class Thread:
    __slots__ = (
        "tid",
        "regs",
        "pc",
        "alive",
        "core",
        "shadow",
        "pub_stack",
        "priv_stack",
        "waiting_on",
        "ready_time",
        "finish_time",
    )

    def __init__(self, tid: int, core: int):
        self.tid = tid
        self.regs = [0] * regs.NUM_GPRS
        self.pc = 0
        self.alive = True
        self.core = core
        self.shadow: list[int] = []
        self.pub_stack = (0, 0)
        self.priv_stack = (0, 0)
        # tid of a thread this one is blocked joining on (consumes no
        # core cycles while set).
        self.waiting_on: int | None = None
        # Virtual-time bookkeeping: a thread cannot execute before it
        # was spawned, and a joiner resumes no earlier than the target
        # finished.
        self.ready_time = 0
        self.finish_time = 0


class Stats:
    __slots__ = (
        "instructions",
        "bnd_checks",
        "cfi_checks",
        "calls",
        "t_calls",
        "loads",
        "stores",
        "faults",
    )

    def __init__(self):
        self.instructions = 0
        self.bnd_checks = 0
        self.cfi_checks = 0
        self.calls = 0
        self.t_calls = 0
        self.loads = 0
        self.stores = 0
        # Fault kind -> occurrence count (a fault normally ends the run,
        # but callers that catch-and-restart keep accumulating here).
        self.faults: dict[str, int] = {}


class Machine:
    def __init__(self, binary, natives, n_cores: int = 4):
        self.binary = binary
        self.config = binary.config
        self.layout = binary.layout
        self.code = binary.code
        self.natives = natives  # list of callables(machine, thread)
        self.mem = Memory()
        self.n_cores = n_cores
        self.caches = [L1Cache() for _ in range(n_cores)]
        self.core_cycles = [0] * n_cores
        self.threads: list[Thread] = []
        self.stats = Stats()
        self.exit_code: int | None = None
        # Architectural state installed by the loader:
        self.fs_base = 0
        self.gs_base = 0
        self.bnd = [(0, 0), (0, 0)]  # bnd0 (public), bnd1 (private)
        self._next_tid = 0
        # Step hooks: callables (thread, pc, insn, cycles) invoked after
        # every retired instruction.  Empty by default; the fast path
        # pays one truthiness test per instruction and nothing else.
        self._step_hooks: list = []
        self._dispatch = {
            isa.MagicWord: self._i_magic,
            isa.MovRI: self._i_mov_ri,
            isa.MovRR: self._i_mov_rr,
            isa.MovFuncAddr: self._i_mov_fa,
            isa.Alu: self._i_alu,
            isa.SetCC: self._i_setcc,
            isa.Load: self._i_load,
            isa.Store: self._i_store,
            isa.Lea: self._i_lea,
            isa.Push: self._i_push,
            isa.Pop: self._i_pop,
            isa.Jmp: self._i_jmp,
            isa.JmpTable: self._i_jmp_table,
            isa.Br: self._i_br,
            isa.CallD: self._i_call_d,
            isa.CallI: self._i_call_i,
            isa.RetPlain: self._i_ret,
            isa.JmpInd: self._i_jmp_ind,
            isa.JmpReg: self._i_jmp_reg,
            isa.CheckMagic: self._i_check_magic,
            isa.BndChk: self._i_bndchk,
            isa.ChkStk: self._i_chkstk,
            isa.TlsBase: self._i_tlsbase,
            isa.ShadowPush: self._i_shadow_push,
            isa.ShadowPop: self._i_shadow_pop,
            isa.Halt: self._i_halt,
            isa.Fail: self._i_fail,
        }

    # ------------------------------------------------------------------
    # Step hooks (the supported way to observe execution; replaces the
    # old pattern of monkey-patching ``_step``, which composed wrongly
    # when attached twice)

    def add_step_hook(self, hook) -> None:
        """Register ``hook(thread, pc, insn, cycles)`` to run after each
        retired instruction.  ``cycles`` is the simulated cost the
        instruction added to its core, cache penalties included."""
        if hook in self._step_hooks:
            raise ValueError("step hook already attached")
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook) -> None:
        self._step_hooks.remove(hook)

    # ------------------------------------------------------------------
    # Thread management

    def spawn(self, pc: int, stack_slot: int | None = None) -> Thread:
        tid = self._next_tid
        self._next_tid += 1
        slot = stack_slot if stack_slot is not None else tid
        thread = Thread(tid, core=tid % self.n_cores)
        thread.pc = pc
        pub_lo, pub_hi = self.layout.stack_range(False, slot)
        thread.pub_stack = (pub_lo, pub_hi)
        if self.layout.private is not None:
            thread.priv_stack = self.layout.stack_range(True, slot)
        # Leave headroom and keep 16-byte alignment.
        thread.regs[regs.RSP] = pub_hi - 64
        self.threads.append(thread)
        return thread

    @property
    def wall_cycles(self) -> int:
        return max(self.core_cycles)

    @property
    def total_cycles(self) -> int:
        return sum(self.core_cycles)

    # ------------------------------------------------------------------
    # Execution

    def run(self, max_instructions: int = 500_000_000) -> int:
        """Run until every thread halts; returns main's exit code."""
        try:
            return self._run_loop(max_instructions)
        except MachineFault as fault:
            self.stats.faults[fault.kind] = (
                self.stats.faults.get(fault.kind, 0) + 1
            )
            raise

    def _run_loop(self, max_instructions: int) -> int:
        budget = max_instructions
        quantum = 64
        while True:
            alive = [t for t in self.threads if t.alive]
            if not alive:
                break
            runnable = []
            for thread in alive:
                if thread.waiting_on is not None:
                    target = next(
                        (t for t in self.threads if t.tid == thread.waiting_on),
                        None,
                    )
                    if target is not None and target.alive:
                        continue  # blocked: burns no cycles
                    thread.waiting_on = None
                    if target is not None:
                        # Resume no earlier than the join target ended.
                        core = thread.core
                        self.core_cycles[core] = max(
                            self.core_cycles[core], target.finish_time
                        )
                # A core idles until the thread it hosts is spawned.
                if self.core_cycles[thread.core] < thread.ready_time:
                    self.core_cycles[thread.core] = thread.ready_time
                runnable.append(thread)
            if not runnable:
                raise MachineFault("deadlock", "all live threads blocked")
            for thread in runnable:
                if not thread.alive:
                    continue
                for _ in range(quantum):
                    if not thread.alive:
                        break
                    self._step(thread)
                    budget -= 1
                    if budget <= 0:
                        raise MachineFault(
                            "instruction-budget-exhausted",
                            f"exceeded {max_instructions} instructions",
                        )
        return self.exit_code if self.exit_code is not None else 0

    def _step(self, thread: Thread) -> None:
        try:
            insn = self.code[thread.pc]
        except IndexError:
            raise MachineFault(FAULT_EXEC, f"pc out of code: {thread.pc}")
        hooks = self._step_hooks
        if not hooks:
            self.stats.instructions += 1
            self.core_cycles[thread.core] += costs.BASE_COST[insn.cost_class]
            self._dispatch[type(insn)](thread, insn)
            return
        pc = thread.pc
        before = self.core_cycles[thread.core]
        self.stats.instructions += 1
        self.core_cycles[thread.core] += costs.BASE_COST[insn.cost_class]
        self._dispatch[type(insn)](thread, insn)
        cycles = self.core_cycles[thread.core] - before
        for hook in hooks:
            hook(thread, pc, insn, cycles)

    def charge(self, thread: Thread, cycles: int) -> None:
        self.core_cycles[thread.core] += cycles

    def publish_metrics(self, registry) -> None:
        """Snapshot execution counters into an obs registry.

        Counter names follow docs/OBSERVABILITY.md; calling this twice
        on the same registry accumulates (counters are monotonic).
        """
        stats = self.stats
        counter = registry.counter
        counter("machine.instructions").inc(stats.instructions)
        counter("machine.checks", kind="bnd").inc(stats.bnd_checks)
        counter("machine.checks", kind="cfi").inc(stats.cfi_checks)
        counter("machine.calls").inc(stats.calls)
        counter("machine.t_calls").inc(stats.t_calls)
        if self.config.separate_tu:
            counter("machine.t_stack_switches").inc(stats.t_calls)
        counter("machine.loads").inc(stats.loads)
        counter("machine.stores").inc(stats.stores)
        counter("machine.cycles.wall").inc(self.wall_cycles)
        counter("machine.cycles.total").inc(self.total_cycles)
        counter("machine.threads").inc(len(self.threads))
        counter("machine.cache.hits").inc(sum(c.hits for c in self.caches))
        counter("machine.cache.misses").inc(sum(c.misses for c in self.caches))
        for kind in sorted(stats.faults):
            counter("machine.faults", kind=kind).inc(stats.faults[kind])

    # ------------------------------------------------------------------
    # Operand helpers

    def _val(self, thread: Thread, operand) -> int:
        if isinstance(operand, isa.Imm):
            return operand.value & MASK64
        return thread.regs[operand]

    def effective_address(self, thread: Thread, mem: isa.Mem) -> int:
        if mem.abs is not None:
            addr = mem.abs + mem.disp
            if mem.index is not None:
                index = thread.regs[mem.index]
                if mem.use32:
                    index &= MASK32
                addr += index * mem.scale
        else:
            base = thread.regs[mem.base]
            if mem.use32:
                base &= MASK32
            addr = base + mem.disp
            if mem.index is not None:
                index = thread.regs[mem.index]
                if mem.use32:
                    index &= MASK32
                addr += index * mem.scale
        if mem.seg == isa.SEG_FS:
            addr += self.fs_base
        elif mem.seg == isa.SEG_GS:
            addr += self.gs_base
        return addr & MASK64

    def _touch(self, thread: Thread, addr: int) -> None:
        cache = self.caches[thread.core]
        if not cache.access(addr):
            self.core_cycles[thread.core] += costs.CACHE_MISS_PENALTY

    def read_data(self, thread: Thread, addr: int, size: int) -> int:
        if addr >= CODE_BASE:
            return self.read_code_word(addr)
        self._touch(thread, addr)
        return self.mem.read_int(addr, size)

    def write_data(self, thread: Thread, addr: int, size: int, value: int):
        if addr >= CODE_BASE:
            raise MachineFault(FAULT_UNMAPPED, "write to code space", addr=addr)
        self._touch(thread, addr)
        self.mem.write_int(addr, size, value)

    def read_code_word(self, addr: int) -> int:
        index = addr - CODE_BASE
        if 0 <= index < len(self.code):
            return self.code[index].encoding()
        raise MachineFault(FAULT_UNMAPPED, "code read out of range", addr=addr)

    # ------------------------------------------------------------------
    # Instruction semantics

    def _i_magic(self, t, insn):
        t.pc += 1

    def _i_mov_ri(self, t, insn):
        t.regs[insn.dst] = insn.imm & MASK64
        t.pc += 1

    def _i_mov_rr(self, t, insn):
        t.regs[insn.dst] = t.regs[insn.src]
        t.pc += 1

    def _i_mov_fa(self, t, insn):
        t.regs[insn.dst] = insn.value & MASK64
        t.pc += 1

    def _i_alu(self, t, insn):
        a = self._val(t, insn.a)
        if insn.op in ("neg", "not"):
            t.regs[insn.dst] = eval_un(insn.op, a)
        else:
            t.regs[insn.dst] = eval_bin(insn.op, a, self._val(t, insn.b))
        t.pc += 1

    def _i_setcc(self, t, insn):
        t.regs[insn.dst] = eval_bin(
            insn.op, self._val(t, insn.a), self._val(t, insn.b)
        )
        t.pc += 1

    def _i_load(self, t, insn):
        addr = self.effective_address(t, insn.mem)
        t.regs[insn.dst] = self.read_data(t, addr, insn.size)
        self.stats.loads += 1
        t.pc += 1

    def _i_store(self, t, insn):
        addr = self.effective_address(t, insn.mem)
        self.write_data(t, addr, insn.size, self._val(t, insn.src))
        self.stats.stores += 1
        t.pc += 1

    def _i_lea(self, t, insn):
        t.regs[insn.dst] = self.effective_address(t, insn.mem)
        t.pc += 1

    def _i_push(self, t, insn):
        rsp = (t.regs[regs.RSP] - 8) & MASK64
        t.regs[regs.RSP] = rsp
        self.write_data(t, rsp, 8, self._val(t, insn.src))
        t.pc += 1

    def _i_pop(self, t, insn):
        rsp = t.regs[regs.RSP]
        t.regs[insn.dst] = self.read_data(t, rsp, 8)
        t.regs[regs.RSP] = (rsp + 8) & MASK64
        t.pc += 1

    def _i_jmp(self, t, insn):
        t.pc = insn.addr

    def _i_jmp_table(self, t, insn):
        from ..arith import signed

        index = signed(t.regs[insn.reg]) - insn.base
        if not (0 <= index < len(insn.addrs)):
            raise MachineFault(FAULT_EXEC, "jump-table index out of range")
        # Table load + indirect branch.
        self.core_cycles[t.core] += 1 + costs.INDIRECT_JUMP_EXTRA
        t.pc = insn.addrs[index]

    def _i_br(self, t, insn):
        taken = eval_bin(insn.op, self._val(t, insn.a), self._val(t, insn.b))
        t.pc = insn.addr if taken else t.pc + 1

    def _i_call_d(self, t, insn):
        self.stats.calls += 1
        retaddr = CODE_BASE + t.pc + 1
        rsp = (t.regs[regs.RSP] - 8) & MASK64
        t.regs[regs.RSP] = rsp
        self.write_data(t, rsp, 8, retaddr)
        t.pc = insn.addr

    def _i_call_i(self, t, insn):
        self.stats.calls += 1
        target = t.regs[insn.reg]
        if not (CODE_BASE <= target < CODE_BASE + len(self.code)):
            raise MachineFault(FAULT_EXEC, "indirect call outside code",
                               addr=target)
        retaddr = CODE_BASE + t.pc + 1
        rsp = (t.regs[regs.RSP] - 8) & MASK64
        t.regs[regs.RSP] = rsp
        self.write_data(t, rsp, 8, retaddr)
        t.pc = target - CODE_BASE

    def _i_ret(self, t, insn):
        rsp = t.regs[regs.RSP]
        target = self.read_data(t, rsp, 8)
        t.regs[regs.RSP] = (rsp + 8) & MASK64
        if not (CODE_BASE <= target < CODE_BASE + len(self.code)):
            raise MachineFault(FAULT_EXEC, "return outside code", addr=target)
        t.pc = target - CODE_BASE

    def _i_jmp_ind(self, t, insn):
        addr = self.effective_address(t, insn.mem)
        target = self.read_data(t, addr, 8)
        self.core_cycles[t.core] += costs.INDIRECT_JUMP_EXTRA
        if target >= NATIVE_BASE:
            self._native(t, target - NATIVE_BASE)
            return
        if CODE_BASE <= target < CODE_BASE + len(self.code):
            t.pc = target - CODE_BASE
            return
        raise MachineFault(FAULT_EXEC, "indirect jump target", addr=target)

    def _i_jmp_reg(self, t, insn):
        target = t.regs[insn.reg] + insn.skip
        self.core_cycles[t.core] += costs.INDIRECT_JUMP_EXTRA
        if not (CODE_BASE <= target <= CODE_BASE + len(self.code)):
            raise MachineFault(FAULT_EXEC, "jump outside code", addr=target)
        t.pc = target - CODE_BASE

    def _i_check_magic(self, t, insn):
        self.stats.cfi_checks += 1
        target = t.regs[insn.reg]
        word = self.read_code_word(target)  # faults if not code
        expected = ~insn.inv_value & MASK64
        if word != expected:
            raise MachineFault(
                FAULT_CFI,
                f"magic mismatch at target (kind={insn.kind})",
                addr=target,
            )
        t.pc += 1

    def _i_bndchk(self, t, insn):
        self.stats.bnd_checks += 1
        if insn.mem is not None:
            addr = self.effective_address(t, insn.mem)
            self.core_cycles[t.core] += costs.BNDCHK_MEM_EXTRA
        else:
            addr = t.regs[insn.reg]
        lo, hi = self.bnd[insn.bnd]
        if not (lo <= addr < hi):
            raise MachineFault(
                FAULT_BOUNDS,
                f"bnd{insn.bnd} violation [{lo:#x},{hi:#x})",
                addr=addr,
            )
        t.pc += 1

    def _i_chkstk(self, t, insn):
        rsp = t.regs[regs.RSP]
        lo, hi = t.pub_stack
        if not (lo <= rsp <= hi):
            raise MachineFault(FAULT_CHKSTK, "rsp escaped its stack", addr=rsp)
        t.pc += 1

    def _i_tlsbase(self, t, insn):
        t.regs[insn.dst] = t.regs[regs.RSP] & ~(THREAD_STACK_SIZE - 1)
        t.pc += 1

    def _i_shadow_push(self, t, insn):
        t.shadow.append(self.read_data(t, t.regs[regs.RSP], 8))
        t.pc += 1

    def _i_shadow_pop(self, t, insn):
        actual = self.read_data(t, t.regs[regs.RSP], 8)
        if not t.shadow or t.shadow.pop() != actual:
            raise MachineFault(FAULT_CFI, "shadow stack mismatch")
        t.pc += 1

    def _i_halt(self, t, insn):
        t.alive = False
        t.finish_time = self.core_cycles[t.core]
        if t.tid == 0:
            self.exit_code = t.regs[regs.RAX]

    def _i_fail(self, t, insn):
        raise MachineFault(FAULT_CFI, "__debugbreak reached")

    # ------------------------------------------------------------------
    # Trusted dispatch

    def _native(self, t: Thread, index: int) -> None:
        self.stats.t_calls += 1
        if not (0 <= index < len(self.natives)):
            raise MachineFault(FAULT_EXEC, f"bad native index {index}")
        self.natives[index](self, t)
