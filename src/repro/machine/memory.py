"""Paged virtual memory with permissions and guard (unmapped) areas.

Mapping is page-granular; anything not explicitly mapped faults on
access — that is what makes the segmentation scheme's guard areas and
the MPX layout's guard zones real: an access that escapes its region
lands on an unmapped page and the machine faults, exactly like the
paper's unmapped-guard-page design.
"""

from __future__ import annotations

from ..errors import FAULT_PERM, FAULT_UNMAPPED, MachineFault

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        # Page bases covered by map_range.  Backing bytearrays are
        # allocated lazily on first touch (regions are tens of MiB and
        # mostly untouched), so _pages holds only the materialized
        # subset of _mapped.
        self._mapped: set[int] = set()
        self._read_only: list[tuple[int, int]] = []
        # Per-page permission cache: page base -> read-only ranges that
        # can affect a write touching that page.  Stores consult this
        # instead of scanning the full _read_only list, so the common
        # case (a store to a page with no read-only data) is a single
        # dict probe rather than an O(n) range walk.
        self._ro_pages: dict[int, list[tuple[int, int]]] = {}

    # -- mapping --------------------------------------------------------

    def map_range(self, lo: int, hi: int) -> None:
        """Map [lo, hi) (page-rounded) as zero-filled RW memory."""
        first = lo & ~PAGE_MASK
        last = (hi + PAGE_MASK) & ~PAGE_MASK
        self._mapped.update(range(first, last, PAGE_SIZE))

    def _page(self, base: int) -> bytearray | None:
        """The backing page for ``base``, materializing it on first
        touch; None when the page is unmapped."""
        page = self._pages.get(base)
        if page is None and base in self._mapped:
            page = self._pages[base] = bytearray(PAGE_SIZE)
        return page

    def protect_read_only(self, lo: int, hi: int) -> None:
        self._read_only.append((lo, hi))
        # Index the range on every page where a write could overlap it.
        # (`max(hi - 1, lo)` keeps degenerate empty ranges indexed on
        # lo's page, preserving the historical overlap test exactly.)
        first = lo & ~PAGE_MASK
        last = max(hi - 1, lo) & ~PAGE_MASK
        for base in range(first, last + 1, PAGE_SIZE):
            self._ro_pages.setdefault(base, []).append((lo, hi))

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        first = addr & ~PAGE_MASK
        last = (addr + size - 1) & ~PAGE_MASK
        for base in range(first, last + 1, PAGE_SIZE):
            if base not in self._mapped:
                return False
        return True

    # -- access ---------------------------------------------------------

    def read_int(self, addr: int, size: int) -> int:
        page = self._page(addr & ~PAGE_MASK)
        offset = addr & PAGE_MASK
        if page is not None and offset + size <= PAGE_SIZE:
            return int.from_bytes(page[offset : offset + size], "little")
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        self._check_writable(addr, size)
        page = self._page(addr & ~PAGE_MASK)
        offset = addr & PAGE_MASK
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if page is not None and offset + size <= PAGE_SIZE:
            page[offset : offset + size] = data
            return
        self._write_bytes_unchecked(addr, data)

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        remaining = size
        cursor = addr
        while remaining > 0:
            page = self._page(cursor & ~PAGE_MASK)
            if page is None:
                raise MachineFault(FAULT_UNMAPPED, f"read {size}B", addr=cursor)
            offset = cursor & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            out += page[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check_writable(addr, len(data))
        self._write_bytes_unchecked(addr, data)

    def write_bytes_unprotected(self, addr: int, data: bytes) -> None:
        """Loader-only: write ignoring read-only protections."""
        self._write_bytes_unchecked(addr, data)

    def _write_bytes_unchecked(self, addr: int, data: bytes) -> None:
        remaining = len(data)
        cursor = addr
        index = 0
        while remaining > 0:
            page = self._page(cursor & ~PAGE_MASK)
            if page is None:
                raise MachineFault(
                    FAULT_UNMAPPED, f"write {len(data)}B", addr=cursor
                )
            offset = cursor & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            page[offset : offset + chunk] = data[index : index + chunk]
            cursor += chunk
            index += chunk
            remaining -= chunk

    def _check_writable(self, addr: int, size: int) -> None:
        ro_pages = self._ro_pages
        if not ro_pages:
            return
        base = addr & ~PAGE_MASK
        last = (addr + size - 1) & ~PAGE_MASK
        while base <= last:
            for lo, hi in ro_pages.get(base, ()):
                if addr < hi and addr + size > lo:
                    raise MachineFault(
                        FAULT_PERM, "write to read-only memory", addr=addr
                    )
            base += PAGE_SIZE
