"""Paged virtual memory with permissions and guard (unmapped) areas.

Mapping is page-granular; anything not explicitly mapped faults on
access — that is what makes the segmentation scheme's guard areas and
the MPX layout's guard zones real: an access that escapes its region
lands on an unmapped page and the machine faults, exactly like the
paper's unmapped-guard-page design.
"""

from __future__ import annotations

import itertools

from ..errors import FAULT_PERM, FAULT_UNMAPPED, MachineFault

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1

_ZERO_PAGE = bytes(PAGE_SIZE)
_PROT_STAMP = itertools.count(1)


class MemoryState:
    """Frozen image of a Memory: immutable page contents plus the
    mapping/permission tables.  Safe to share between machines — pages
    are bytes and only ever copied into fresh bytearrays on first
    touch after a restore."""

    __slots__ = ("pages", "mapped", "read_only", "ro_pages",
                 "prot_version")

    def __init__(self, pages, mapped, read_only, ro_pages, prot_version):
        self.pages: dict[int, bytes] = pages
        self.mapped: frozenset[int] = mapped
        self.read_only: tuple[tuple[int, int], ...] = read_only
        self.ro_pages: dict[int, tuple[tuple[int, int], ...]] = ro_pages
        self.prot_version = prot_version


class Memory:
    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        # Page bases covered by map_range.  Backing bytearrays are
        # allocated lazily on first touch (regions are tens of MiB and
        # mostly untouched), so _pages holds only the materialized
        # subset of _mapped.
        self._mapped: set[int] = set()
        self._read_only: list[tuple[int, int]] = []
        # Per-page permission cache: page base -> read-only ranges that
        # can affect a write touching that page.  Stores consult this
        # instead of scanning the full _read_only list, so the common
        # case (a store to a page with no read-only data) is a single
        # dict probe rather than an O(n) range walk.
        self._ro_pages: dict[int, list[tuple[int, int]]] = {}
        # Copy-on-write backing store for snapshot/restore: page base ->
        # immutable bytes.  After a restore, _pages is empty and pages
        # re-materialize lazily from this dict (or zero-filled when the
        # page was never touched before the snapshot).  The dict is
        # shared between every fork of an image and never mutated.
        self._snapshot_pages: dict[int, bytes] | None = None
        # Stamped by map_range/protect_read_only with a globally
        # unique value.  Mapping and protection are load-time-only in
        # practice, so restore_state skips rebuilding the (large)
        # _mapped set when the stamp already matches the snapshot's —
        # the common case for per-request pool resets.
        self._prot_version = 0

    # -- mapping --------------------------------------------------------

    def map_range(self, lo: int, hi: int) -> None:
        """Map [lo, hi) (page-rounded) as zero-filled RW memory."""
        first = lo & ~PAGE_MASK
        last = (hi + PAGE_MASK) & ~PAGE_MASK
        self._mapped.update(range(first, last, PAGE_SIZE))
        self._prot_version = next(_PROT_STAMP)

    def _page(self, base: int) -> bytearray | None:
        """The backing page for ``base``, materializing it on first
        touch; None when the page is unmapped."""
        page = self._pages.get(base)
        if page is None and base in self._mapped:
            snapshot = self._snapshot_pages
            if snapshot is not None:
                frozen = snapshot.get(base)
                if frozen is not None:
                    page = self._pages[base] = bytearray(frozen)
                    return page
            page = self._pages[base] = bytearray(PAGE_SIZE)
        return page

    def protect_read_only(self, lo: int, hi: int) -> None:
        self._read_only.append((lo, hi))
        # Index the range on every page where a write could overlap it.
        # (`max(hi - 1, lo)` keeps degenerate empty ranges indexed on
        # lo's page, preserving the historical overlap test exactly.)
        first = lo & ~PAGE_MASK
        last = max(hi - 1, lo) & ~PAGE_MASK
        for base in range(first, last + 1, PAGE_SIZE):
            self._ro_pages.setdefault(base, []).append((lo, hi))
        self._prot_version = next(_PROT_STAMP)

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        first = addr & ~PAGE_MASK
        last = (addr + size - 1) & ~PAGE_MASK
        for base in range(first, last + 1, PAGE_SIZE):
            if base not in self._mapped:
                return False
        return True

    # -- access ---------------------------------------------------------

    def read_int(self, addr: int, size: int) -> int:
        page = self._page(addr & ~PAGE_MASK)
        offset = addr & PAGE_MASK
        if page is not None and offset + size <= PAGE_SIZE:
            return int.from_bytes(page[offset : offset + size], "little")
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        self._check_writable(addr, size)
        page = self._page(addr & ~PAGE_MASK)
        offset = addr & PAGE_MASK
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if page is not None and offset + size <= PAGE_SIZE:
            page[offset : offset + size] = data
            return
        self._write_bytes_unchecked(addr, data)

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        remaining = size
        cursor = addr
        while remaining > 0:
            page = self._page(cursor & ~PAGE_MASK)
            if page is None:
                raise MachineFault(FAULT_UNMAPPED, f"read {size}B", addr=cursor)
            offset = cursor & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            out += page[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check_writable(addr, len(data))
        self._write_bytes_unchecked(addr, data)

    def write_bytes_unprotected(self, addr: int, data: bytes) -> None:
        """Loader-only: write ignoring read-only protections."""
        self._write_bytes_unchecked(addr, data)

    def _write_bytes_unchecked(self, addr: int, data: bytes) -> None:
        remaining = len(data)
        cursor = addr
        index = 0
        while remaining > 0:
            page = self._page(cursor & ~PAGE_MASK)
            if page is None:
                raise MachineFault(
                    FAULT_UNMAPPED, f"write {len(data)}B", addr=cursor
                )
            offset = cursor & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            page[offset : offset + chunk] = data[index : index + chunk]
            cursor += chunk
            index += chunk
            remaining -= chunk

    # -- snapshot / restore --------------------------------------------

    def snapshot_state(self) -> MemoryState:
        """Freeze the current contents as an immutable MemoryState.

        Pages still lazily backed by a previous snapshot are carried
        over by reference; only pages materialized since then are
        copied, so snapshotting a mostly-idle image is cheap."""
        pages = dict(self._snapshot_pages or ())
        for base, page in self._pages.items():
            pages[base] = bytes(page)
        return MemoryState(
            pages,
            frozenset(self._mapped),
            tuple(self._read_only),
            {base: tuple(rs) for base, rs in self._ro_pages.items()},
            self._prot_version,
        )

    def restore_state(self, state: MemoryState) -> None:
        """Rewind to ``state`` in place (copy-on-write: materialized
        pages are dropped and re-filled lazily from the snapshot).

        Mutates the existing _pages/_mapped/_ro_pages containers rather
        than rebinding them — predecoded instruction handlers close
        over these objects."""
        self._pages.clear()
        self._snapshot_pages = state.pages
        if self._prot_version != state.prot_version:
            # Mapping/protection changed since the snapshot (or this is
            # a fresh machine being restored for the first time) —
            # rebuild the tables.  The stamp is globally unique, so a
            # matching version guarantees the tables are already
            # exactly the snapshot's; per-request pool resets take the
            # cheap path.
            self._mapped.clear()
            self._mapped.update(state.mapped)
            self._read_only[:] = state.read_only
            self._ro_pages.clear()
            for base, ranges in state.ro_pages.items():
                self._ro_pages[base] = list(ranges)
            self._prot_version = state.prot_version

    def content_signature(self) -> dict[int, bytes]:
        """All non-zero page contents, independent of which pages
        happen to be materialized — two memories with identical
        signatures are observationally identical to the machine."""
        out: dict[int, bytes] = {}
        if self._snapshot_pages:
            for base, frozen in self._snapshot_pages.items():
                if base in self._mapped and frozen != _ZERO_PAGE:
                    out[base] = frozen
        for base, page in self._pages.items():
            data = bytes(page)
            if data != _ZERO_PAGE:
                out[base] = data
            else:
                out.pop(base, None)
        return out

    def _check_writable(self, addr: int, size: int) -> None:
        ro_pages = self._ro_pages
        if not ro_pages:
            return
        base = addr & ~PAGE_MASK
        last = (addr + size - 1) & ~PAGE_MASK
        while base <= last:
            for lo, hi in ro_pages.get(base, ()):
                if addr < hi and addr + size > lo:
                    raise MachineFault(
                        FAULT_PERM, "write to read-only memory", addr=addr
                    )
            base += PAGE_SIZE
