"""Machine images: snapshot a loaded (compile+ConfVerify+load) process
once, then fork verified instances in microseconds.

The cold path the rest of the repo takes — ``BuildSession`` compile,
ConfVerify, link, load — costs seconds of host time per process.  A
``MachineImage`` freezes the *result* of that pipeline instead:

* memory is captured copy-on-write through the existing lazy page
  materialization (``Memory.snapshot_state``), so every fork of an
  image shares one immutable page dict and only copies the pages a
  request actually touches;
* CPU state (registers, pc, shadow stacks), cycle counters, L1 cache
  tags, ``Stats``, and the T runtime's program-visible state
  (channels, files, secrets, RNG, allocators) are captured alongside.

``fork()`` builds a fresh ``Machine`` + ``TrustedRuntime`` pair from
the image — bit-identical to a cold ``load()`` of the same binary (the
differential test in ``tests/serve/test_image.py`` pins this across
configs and engines).  The even cheaper per-request path is
``Process.reset()`` on an existing fork: every mutable structure is
rewound in place, so the predecoded engine's handler closures stay
valid and nothing is re-predecoded.

Warm images park the program at its request loop: with a ``recv_gate``
armed, the first ``recv`` that finds fewer bytes than it wants raises
``PauseForRequest`` *before* consuming anything, while the thread's pc
still points at the T stub's indirect jump.  Snapshotting there means
a restored fork re-enters ``recv`` deterministically — app
initialization (table population, model loading) is paid once at image
build, never per request.
"""

from __future__ import annotations

import time

from ..errors import ServeError
from ..link.loader import Process
from ..machine.cpu import Machine
from ..machine.snapshot import MachineState
from ..runtime.trusted import PauseForRequest, TrustedRuntime

#: Per-request instruction ceiling when the caller sets no budget.
DEFAULT_BUDGET = 500_000_000


def starved_gate(runtime, fd: int, n: int) -> bool:
    """The serving-tier recv gate: pause whenever a ``recv`` would
    return short — i.e. the current request is finished and the
    program is asking for the next one."""
    return len(runtime.channel(fd).inbox) < n


class MachineImage:
    """A frozen, verified, loaded machine — the unit of forking."""

    def __init__(self, binary, machine_state: MachineState,
                 runtime_state, *, n_cores: int, engine: str):
        self.binary = binary
        self.machine_state = machine_state
        self.runtime_state = runtime_state
        self.n_cores = n_cores
        self.engine = engine
        # Filled in by warm_image(): the one-time cost a cold instance
        # pays from spawn to its first request wait.
        self.warmup_cycles = 0
        self.warmup_instructions = 0
        self.warmup_wall_s = 0.0

    @classmethod
    def snapshot(cls, process: Process) -> "MachineImage":
        """Freeze ``process`` as it stands.  The process keeps running
        independently afterwards — the image shares nothing mutable
        with it."""
        machine = process.machine
        return cls(
            machine.binary,
            MachineState.capture(machine),
            process.runtime.snapshot_state(),
            n_cores=machine.n_cores,
            engine=machine.engine,
        )

    def fork(self, engine: str | None = None) -> Process:
        """A fresh, independent Process restored to the image point.

        Builds a new Machine (predecode runs once per fork — pool
        slots amortize it over thousands of requests) and a new
        TrustedRuntime, then restores both from the image.  The
        fork's sealed image is this image, so ``Process.reset()``
        rewinds to it, not to the original post-load state.
        """
        runtime = TrustedRuntime()
        natives = runtime.natives_for(self.binary)
        machine = Machine(
            self.binary, natives, n_cores=self.n_cores,
            engine=engine or self.engine,
        )
        self.machine_state.restore(machine)
        machine._image_state = self.machine_state
        runtime.restore_state(self.runtime_state)
        runtime.machine = machine
        process = Process(machine, runtime)
        process._image_runtime_state = self.runtime_state
        return process


def run_to_request(process: Process,
                   max_instructions: int = DEFAULT_BUDGET) -> None:
    """Run ``process`` until it blocks waiting for a request (arming
    the recv gate for the duration).  Raises ServeError if the program
    exits instead — a serveable app must sit in a request loop."""
    runtime = process.runtime
    previous = runtime.recv_gate
    runtime.recv_gate = starved_gate
    try:
        process.machine.run(max_instructions)
    except PauseForRequest:
        return
    finally:
        runtime.recv_gate = previous
    raise ServeError(
        "program exited during warm-up without waiting for a request"
    )


def warm_image(process: Process) -> MachineImage:
    """Run ``process`` to its first request wait, then freeze it.

    The resulting image's ``warmup_*`` fields record what the skipped
    initialization cost — the simulated-cycle price a cold instance
    would pay per request that forks avoid.
    """
    machine = process.machine
    cycles0 = machine.wall_cycles
    instr0 = machine.stats.instructions
    wall0 = time.perf_counter()
    run_to_request(process)
    image = MachineImage.snapshot(process)
    image.warmup_cycles = machine.wall_cycles - cycles0
    image.warmup_instructions = machine.stats.instructions - instr0
    image.warmup_wall_s = time.perf_counter() - wall0
    return image


class ServeInstance:
    """One fork of a MachineImage, driven one request at a time.

    ``handle_request`` is the uniform entrypoint contract: feed the
    request bytes, run the machine until it waits for the next
    request, return whatever the app wrote to the response channel.
    """

    def __init__(self, process: Process, *, request_fd: int = 0,
                 response_fd: int = 1):
        self.process = process
        self.request_fd = request_fd
        self.response_fd = response_fd
        process.runtime.recv_gate = starved_gate
        #: Exit code if the app left its serve loop (e.g. a quit
        #: request); None while it is parked at recv.
        self.exit_code: int | None = None
        # Per-request accounting, updated by handle_request (also on
        # faults, so evicted requests still report their cost).
        self.last_cycles = 0
        self.last_instructions = 0
        self.last_checks = 0

    @property
    def machine(self) -> Machine:
        return self.process.machine

    @property
    def runtime(self) -> TrustedRuntime:
        return self.process.runtime

    def reset(self) -> None:
        """Rewind to the image point (in place — microseconds)."""
        self.process.reset()
        self.exit_code = None

    def handle_request(self, data: bytes, *,
                       max_instructions: int = DEFAULT_BUDGET) -> bytes:
        """Uniform app entrypoint: request bytes in, response bytes
        out.  MachineFaults (verifier-inserted checks, exhausted
        budgets) propagate to the caller after accounting."""
        machine = self.process.machine
        runtime = self.process.runtime
        stats = machine.stats
        runtime.channel(self.request_fd).feed(data)
        cycles0 = machine.wall_cycles
        instr0 = stats.instructions
        checks0 = stats.bnd_checks + stats.cfi_checks
        try:
            self.exit_code = machine.run(max_instructions)
        except PauseForRequest:
            pass
        finally:
            self.last_cycles = machine.wall_cycles - cycles0
            self.last_instructions = stats.instructions - instr0
            self.last_checks = (
                stats.bnd_checks + stats.cfi_checks - checks0
            )
        return bytes(runtime.channel(self.response_fd).drain_out())


def resume_overhead_cycles(instance: ServeInstance) -> int:
    """The fork path's entire per-request setup cost in simulated
    cycles: restore the image and let the machine replay its way back
    to the request wait (stub jump + wrapper entry + starved recv).
    Leaves the instance reset."""
    instance.reset()
    machine = instance.machine
    base = machine.wall_cycles
    try:
        machine.run(DEFAULT_BUDGET)
    except PauseForRequest:
        pass
    else:
        raise ServeError("image is not parked at a request wait")
    cycles = machine.wall_cycles - base
    instance.reset()
    return cycles
