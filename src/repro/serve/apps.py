"""Serveable app registry: the uniform ``handle_request`` contract.

Each :class:`ServeApp` adapts one of the repo's request-loop apps
(webserver, dirserver, classifier, plus a tiny echo demo) to the
serving tier: how to set up its T-side state, how to encode a
deterministic request stream, and how to validate responses.  The
actual entrypoint is uniform — ``ServeInstance.handle_request(bytes)
-> bytes`` drives any of them — because all three apps already follow
the same shape: block on ``recv`` for a fixed-size request, write one
response to the reply channel, loop.

``build_app_image`` is the one-stop cold path: compile (+ConfVerify)
→ load → run to the first request wait → freeze as a
:class:`MachineImage`.  Everything after that is forks and resets.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import Callable

from ..apps.classifier import CLASSIFIER_SRC, IMAGE_BYTES, make_image
from ..apps.dirserver import DIRSERVER_SRC, REQ_SIZE as DIR_REQ_SIZE, \
    make_query
from ..apps.webserver import REQ_SIZE as WEB_REQ_SIZE, WEBSERVER_SRC, \
    make_request
from ..compiler import compile_source
from ..link.loader import load
from ..runtime.trusted import T_PROTOTYPES, TrustedRuntime
from .image import MachineImage, warm_image

# ---------------------------------------------------------------------------
# Echo: a deliberately tiny app for high-volume load tests and fault
# injection.  Protocol (16-byte requests):
#   byte 0: 'Q' quits the serve loop, anything else is a normal request
#   byte 1: ASCII digit; '0' divides by zero (a machine fault — the
#           fault-isolation tests use it as their verifier-style trap)
#   byte 2: 'S' spins forever (exercises per-request budgets/eviction)
# Response: 16 bytes — 'E', the echo of bytes 1..7, then 1000/digit as
# a little-endian word.

ECHO_SRC = T_PROTOTYPES + r"""
char req[16];
char resp[16];
int g_echoed = 0;

int main() {
    while (1) {
        int got = recv(0, req, 16);
        if (got < 16) { break; }
        if (req[0] == 'Q') { break; }
        int denom = (int)req[1] - '0';
        if (req[2] == 'S') {
            int spin = 1;
            while (spin > 0) { spin = spin + 1; }
        }
        int scaled = 1000 / denom;
        for (int i = 0; i < 8; i++) { resp[i] = req[i]; }
        resp[0] = 'E';
        int *out = (int*)(resp + 8);
        *out = scaled;
        send(1, resp, 16);
        g_echoed++;
    }
    return g_echoed;
}
"""

ECHO_REQ_SIZE = 16


def echo_request(index: int) -> bytes:
    digit = ord("1") + index % 9
    tail = bytes((index + i) & 0x7F for i in range(13))
    return bytes((ord("R"), digit, ord("N"))) + tail


def echo_fault_request() -> bytes:
    """Divides by zero inside the enclave — a machine fault."""
    return b"R0N" + b"\x00" * 13


def echo_spin_request() -> bytes:
    """Never finishes — exhausts any per-request budget."""
    return b"R5S" + b"\x00" * 13


def _echo_encode(runtime: TrustedRuntime, index: int) -> bytes:
    return echo_request(index)


def _echo_check(runtime, request: bytes, response: bytes) -> bool:
    if len(response) != 16 or response[0] != ord("E"):
        return False
    if response[1:8] != request[1:8]:
        return False
    scaled = struct.unpack_from("<q", response, 8)[0]
    return scaled == 1000 // (request[1] - ord("0"))


# ---------------------------------------------------------------------------
# Webserver: a fixed deterministic document set, requests round-robin
# over it, responses are whole-record session-key encrypted.

WEB_FILES = {
    "fileAAAA": b"A" * 512,
    "fileBBBB": bytes(range(256)) * 8,
    "fileCCCC": b"The quick brown fox jumps over the lazy dog. " * 40,
    "filetiny": b"ok",
}
_WEB_NAMES = tuple(WEB_FILES)


def _web_setup(runtime: TrustedRuntime) -> None:
    for name, data in WEB_FILES.items():
        runtime.add_file(name, data)


def _web_encode(runtime: TrustedRuntime, index: int) -> bytes:
    return make_request(_WEB_NAMES[index % len(_WEB_NAMES)])


def _web_check(runtime, request: bytes, response: bytes) -> bool:
    name = request[4:12].rstrip(b"\x00").decode()
    expected = WEB_FILES.get(name, b"")
    if len(response) != 16 + len(expected):
        return False
    plain = runtime.encrypt_with(runtime.session_key, response)
    if plain[:2] != b"OK":
        return False
    length = int.from_bytes(plain[8:16], "little")
    return length == len(expected) and plain[16:16 + length] == expected


# ---------------------------------------------------------------------------
# Dirserver: single bind user; the request stream mixes lookup hits
# (even ids below 20000) with misses.  With per-request image resets
# every request re-binds, which is exactly the fresh-instance
# semantics — the cached-bind fast path only matters within a batch.

_DIR_USER = "alice"
_DIR_PASSWORD = b"pw123"
_HASH_K = 2654435761


def _dir_setup(runtime: TrustedRuntime) -> None:
    runtime.set_password(_DIR_USER, _DIR_PASSWORD)


def _dir_encode(runtime: TrustedRuntime, index: int) -> bytes:
    if index % 3 == 2:  # a miss: odd ids are never populated
        entry_id = (index * _HASH_K) % 20000 | 1
    else:
        entry_id = 2 * ((index * 7919) % 10000)
    return make_query(runtime, entry_id, _DIR_USER)


def _dir_check(runtime, request: bytes, response: bytes) -> bool:
    if len(response) != 16:
        return False
    entry_id = struct.unpack_from("<q", request, 0)[0]
    status = struct.unpack_from("<q", response, 0)[0]
    if entry_id % 2 == 0 and 0 <= entry_id < 20000:
        return status == (entry_id // 2 * _HASH_K) & 0xFFFFFF
    return status < 0


# ---------------------------------------------------------------------------
# Classifier: encrypted 3 KB images in, an 8-byte class id out.


def _cls_encode(runtime: TrustedRuntime, index: int) -> bytes:
    return make_image(runtime, seed=index)


def _cls_check(runtime, request: bytes, response: bytes) -> bool:
    if len(response) != 8:
        return False
    return 0 <= struct.unpack("<q", response)[0] < 10


# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeApp:
    """How the serving tier drives one app."""

    name: str
    source: str = field(repr=False)
    request_size: int
    #: Install T-side state (files, passwords) — runs before load, so
    #: it is part of the frozen image.
    setup: Callable[[TrustedRuntime], None] | None
    #: Deterministic request stream: index -> wire bytes.  Uses only
    #: the runtime's keys, so any runtime restored from the image (or
    #: sharing its seed) encodes identical bytes.
    encode_request: Callable[[TrustedRuntime, int], bytes]
    #: Validate a response against its request.
    check_response: Callable[[TrustedRuntime, bytes, bytes], bool]
    request_fd: int = 0
    response_fd: int = 1


SERVE_APPS: dict[str, ServeApp] = {
    app.name: app
    for app in (
        ServeApp(
            name="webserver",
            source=WEBSERVER_SRC,
            request_size=WEB_REQ_SIZE,
            setup=_web_setup,
            encode_request=_web_encode,
            check_response=_web_check,
        ),
        ServeApp(
            name="dirserver",
            source=DIRSERVER_SRC,
            request_size=DIR_REQ_SIZE,
            setup=_dir_setup,
            encode_request=_dir_encode,
            check_response=_dir_check,
        ),
        ServeApp(
            name="classifier",
            source=CLASSIFIER_SRC,
            request_size=IMAGE_BYTES,
            setup=None,
            encode_request=_cls_encode,
            check_response=_cls_check,
        ),
        ServeApp(
            name="echo",
            source=ECHO_SRC,
            request_size=ECHO_REQ_SIZE,
            setup=None,
            encode_request=_echo_encode,
            check_response=_echo_check,
        ),
    )
}


def build_app_image(
    app: ServeApp,
    config,
    *,
    seed: int | None = None,
    engine: str = "predecoded",
    n_cores: int = 4,
    verify: bool = True,
    warm: bool = True,
):
    """The one cold pass: compile (+ConfVerify) → load → park at the
    request loop → freeze.  Returns ``(image, timings)`` where
    ``timings`` records the cold wall costs the fork path amortizes
    away (``build_wall_s``, ``load_wall_s``)."""
    runtime = TrustedRuntime()
    if app.setup is not None:
        app.setup(runtime)
    t0 = time.perf_counter()
    binary = compile_source(app.source, config, seed=seed, verify=verify)
    build_wall_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    process = load(binary, runtime=runtime, n_cores=n_cores, engine=engine)
    load_wall_s = time.perf_counter() - t0
    if warm:
        image = warm_image(process)
    else:
        image = MachineImage.snapshot(process)
    return image, {"build_wall_s": build_wall_s, "load_wall_s": load_wall_s}
