"""The fleet scheduler: per-tenant machine pools behind one async
admission loop.

Multi-tenancy model (the HasTEE+ "enclave as a service" shape):

* every tenant gets its own pool of ``pool_size`` forks of the shared
  verified :class:`MachineImage` — machines are never shared across
  tenants, so tenant isolation is structural, and within a tenant
  every request starts from the image state (per-request reset);
* admission is a bounded per-tenant queue — producers block when a
  tenant falls behind (backpressure) instead of growing memory;
* batching: a pool slot may drain up to ``batch`` already-queued
  requests of its tenant before resetting, modelling per-connection
  request pipelining (the dirserver's cached bind only persists
  within a batch).  ``batch=1`` (default) gives fully deterministic
  per-request cycle accounting;
* per-request budgets: a request that exhausts its instruction budget
  faults with ``instruction-budget-exhausted`` and is reported as
  *evicted* — the slot resets and keeps serving;
* fault isolation: any ``MachineFault`` (a verifier-inserted check
  firing, a budget eviction) kills only that fork's state — the slot
  resets to the image and the pool, and every other tenant, is
  untouched.

Everything is cooperative asyncio on one host thread: the simulated
machines are CPU-bound, so concurrency here is about queueing and
fairness, not parallelism — and it keeps total simulated-cycle counts
deterministic for the bench-trajectory gate.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ..errors import MachineFault, ServeError
from .image import DEFAULT_BUDGET, MachineImage, ServeInstance

#: Default admission-queue depth per tenant.
DEFAULT_QUEUE_DEPTH = 64


async def _race(awaitable, failure: asyncio.Future):
    """Await ``awaitable``, failing fast if ``failure`` completes first.

    ``failure`` carries the first pool-worker crash.  Without the race,
    ``queue.join()`` waits forever on ``task_done()`` calls a dead
    worker will never make, and a blocking ``queue.put()`` waits
    forever on consumers that no longer exist.
    """
    op = asyncio.ensure_future(awaitable)
    try:
        done, _ = await asyncio.wait(
            (op, failure), return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:
        op.cancel()
        raise
    if op in done:
        return op.result()
    op.cancel()
    await asyncio.gather(op, return_exceptions=True)
    return failure.result()  # re-raises the worker's exception


@dataclass
class RequestResult:
    """Outcome of one request through the fleet."""

    tenant: str
    index: int  # submission order across the whole run
    ok: bool  # completed without fault (response validity is separate)
    response: bytes
    fault: str | None  # MachineFault kind, e.g. "divide-error"
    evicted: bool  # budget exhaustion specifically
    cycles: int  # simulated service cycles (includes resume replay)
    instructions: int
    checks: int  # bnd+cfi checks retired by this request
    wall_s: float  # admission -> completion (queueing included)
    queue_s: float  # admission -> dequeue


@dataclass
class TenantCounters:
    requests: int = 0
    faults: int = 0
    evictions: int = 0
    resets: int = 0
    batches: int = 0
    cycles: int = 0
    instructions: int = 0
    checks: int = 0
    max_queue_depth: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "faults": self.faults,
            "evictions": self.evictions,
            "resets": self.resets,
            "batches": self.batches,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "checks": self.checks,
            "max_queue_depth": self.max_queue_depth,
        }


@dataclass
class _Pending:
    index: int
    payload: bytes
    enqueued: float
    result: RequestResult | None = None


class TenantPool:
    """One tenant's machines + admission queue."""

    def __init__(self, tenant: str, image: MachineImage, *,
                 pool_size: int, batch: int, budget: int,
                 request_fd: int, response_fd: int, queue_depth: int):
        if pool_size < 1:
            raise ServeError(f"tenant {tenant!r}: pool_size must be >= 1")
        if batch < 1:
            raise ServeError(f"tenant {tenant!r}: batch must be >= 1")
        self.tenant = tenant
        self.batch = batch
        self.budget = budget
        self.instances = [
            ServeInstance(
                image.fork(), request_fd=request_fd,
                response_fd=response_fd,
            )
            for _ in range(pool_size)
        ]
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.counters = TenantCounters()

    async def submit(self, pending: _Pending,
                     failure: asyncio.Future | None = None) -> None:
        try:
            # Fast path: like Queue.put on a non-full queue, this does
            # not yield, so request interleaving (and therefore batch
            # composition and cycle accounting) stays deterministic.
            self.queue.put_nowait(pending)
        except asyncio.QueueFull:
            if failure is None:
                await self.queue.put(pending)
            else:
                await _race(self.queue.put(pending), failure)
        depth = self.queue.qsize()
        if depth > self.counters.max_queue_depth:
            self.counters.max_queue_depth = depth

    async def worker(self, instance: ServeInstance) -> None:
        """One pool slot: drain batches until cancelled."""
        counters = self.counters
        while True:
            batch = [await self.queue.get()]
            while len(batch) < self.batch:
                try:
                    batch.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            dequeued = time.perf_counter()
            fresh = False
            for pending in batch:
                pending.result = self._serve_one(
                    instance, pending, dequeued
                )
                fresh = False
                if pending.result.fault is not None or (
                    instance.exit_code is not None
                ):
                    # The fork is dead (fault) or left its loop (quit
                    # request) — rewind it before the rest of the
                    # batch; the pool itself never dies.
                    instance.reset()
                    counters.resets += 1
                    fresh = True
            if not fresh:
                instance.reset()
                counters.resets += 1
            counters.batches += 1
            for _ in batch:
                self.queue.task_done()
            # Yield so producers and other pools interleave.
            await asyncio.sleep(0)

    def _serve_one(self, instance: ServeInstance, pending: _Pending,
                   dequeued: float) -> RequestResult:
        counters = self.counters
        fault = None
        evicted = False
        response = b""
        try:
            response = instance.handle_request(
                pending.payload, max_instructions=self.budget
            )
        except MachineFault as exc:
            fault = exc.kind
            evicted = exc.kind == "instruction-budget-exhausted"
            counters.faults += 1
            if evicted:
                counters.evictions += 1
        counters.requests += 1
        counters.cycles += instance.last_cycles
        counters.instructions += instance.last_instructions
        counters.checks += instance.last_checks
        done = time.perf_counter()
        return RequestResult(
            tenant=self.tenant,
            index=pending.index,
            ok=fault is None,
            response=response,
            fault=fault,
            evicted=evicted,
            cycles=instance.last_cycles,
            instructions=instance.last_instructions,
            checks=instance.last_checks,
            wall_s=done - pending.enqueued,
            queue_s=dequeued - pending.enqueued,
        )


class Fleet:
    """A multi-tenant serving fleet over one MachineImage."""

    def __init__(self, image: MachineImage, tenants, *,
                 pool_size: int = 2, batch: int = 1,
                 budget: int = DEFAULT_BUDGET,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 request_fd: int = 0, response_fd: int = 1):
        if isinstance(tenants, int):
            tenants = [f"tenant{i}" for i in range(tenants)]
        tenants = list(tenants)
        if not tenants:
            raise ServeError("fleet needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise ServeError("duplicate tenant names")
        self.image = image
        self.pools: dict[str, TenantPool] = {
            name: TenantPool(
                name, image, pool_size=pool_size, batch=batch,
                budget=budget, request_fd=request_fd,
                response_fd=response_fd, queue_depth=queue_depth,
            )
            for name in tenants
        }

    @property
    def tenants(self) -> list[str]:
        return list(self.pools)

    def serve(self, requests) -> list[RequestResult]:
        """Push ``requests`` — an iterable of ``(tenant, payload)`` —
        through the fleet; returns results in submission order."""
        return asyncio.run(self.serve_async(requests))

    async def serve_async(self, requests) -> list[RequestResult]:
        loop = asyncio.get_running_loop()
        failure: asyncio.Future = loop.create_future()

        def _surface(task: asyncio.Task) -> None:
            if task.cancelled():
                return
            exc = task.exception()
            if exc is not None and not failure.done():
                failure.set_exception(exc)

        workers = []
        for pool in self.pools.values():
            for instance in pool.instances:
                worker = asyncio.ensure_future(pool.worker(instance))
                worker.add_done_callback(_surface)
                workers.append(worker)
        submitted: list[_Pending] = []
        try:
            for tenant, payload in requests:
                pool = self.pools.get(tenant)
                if pool is None:
                    raise ServeError(f"unknown tenant {tenant!r}")
                pending = _Pending(
                    index=len(submitted), payload=payload,
                    enqueued=time.perf_counter(),
                )
                submitted.append(pending)
                await pool.submit(pending, failure)
            for pool in self.pools.values():
                await _race(pool.queue.join(), failure)
        finally:
            for worker in workers:
                worker.cancel()
            await asyncio.gather(*workers, return_exceptions=True)
            if failure.done() and not failure.cancelled():
                failure.exception()  # mark retrieved; _race already raised
        # Surface unexpected worker crashes (anything but cancellation).
        for worker in workers:
            if worker.cancelled():
                continue
            exc = worker.exception()
            if exc is not None:
                raise exc
        return [pending.result for pending in submitted]

    def counters(self) -> dict[str, dict]:
        return {
            name: pool.counters.as_dict()
            for name, pool in self.pools.items()
        }

    def publish_metrics(self, registry) -> None:
        """Publish the full per-tenant counter set into an obs
        registry — one ``serve.<counter>`` metric per
        :class:`TenantCounters` field."""
        for name, pool in self.pools.items():
            for key, value in pool.counters.as_dict().items():
                registry.counter(f"serve.{key}", tenant=name).inc(value)
