"""repro.serve — multi-tenant enclave-fleet serving tier.

Builds on the machine snapshot layer (``repro.machine.snapshot``) to
turn the repo's request-loop apps into long-lived services: one
compile+ConfVerify+load pass is frozen as a :class:`MachineImage`,
then per-tenant pools fork verified instances from it in microseconds
and reset them between requests.  See ``docs/SERVING.md``.
"""

from .apps import SERVE_APPS, ServeApp, build_app_image
from .image import (
    DEFAULT_BUDGET,
    MachineImage,
    ServeInstance,
    resume_overhead_cycles,
    run_to_request,
    starved_gate,
    warm_image,
)
from .loadgen import ServeReport, percentile, run_load
from .scheduler import Fleet, RequestResult, TenantCounters, TenantPool

__all__ = [
    "DEFAULT_BUDGET",
    "Fleet",
    "MachineImage",
    "RequestResult",
    "SERVE_APPS",
    "ServeApp",
    "ServeInstance",
    "ServeReport",
    "TenantCounters",
    "TenantPool",
    "build_app_image",
    "percentile",
    "resume_overhead_cycles",
    "run_load",
    "run_to_request",
    "starved_gate",
    "warm_image",
]
