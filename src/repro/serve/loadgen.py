"""Load generation and measurement for the serving tier.

``run_load`` is the single entry point behind the ``repro serve`` CLI
subcommand and the serve benchmarks: build one verified image, stand
up a multi-tenant fleet, push a deterministic request stream through
it round-robin over the tenants, and report throughput, p50/p95/p99
latency on both clocks (host wall time and simulated cycles), and the
setup-cost comparison that justifies the tier's existence —

* **cold path** per request: compile + ConfVerify + load
  (``cold_wall_s``) and the app's init work from spawn to its first
  request wait (``warmup_cycles``);
* **fork path** per request: an in-place image reset
  (``reset_wall_s``) and the deterministic resume replay back to the
  request wait (``resume_cycles``).

Round-robin tenant assignment plus ``batch=1`` per-request resets make
the total simulated cycles/instructions independent of host timing, so
serve records stored through ``bench --store`` diff cleanly against
the committed seed trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import ServeError
from ..obs import bench_store
from ..runtime.trusted import TrustedRuntime
from .apps import SERVE_APPS, ServeApp, build_app_image
from .image import (
    DEFAULT_BUDGET,
    MachineImage,
    ServeInstance,
    resume_overhead_cycles,
)
from .scheduler import DEFAULT_QUEUE_DEPTH, Fleet, RequestResult

#: Resets sampled when measuring the per-request fork-path setup cost.
_RESET_SAMPLES = 32


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    if not values:
        raise ServeError("percentile of empty list")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
    return float(ordered[int(rank) - 1])


def latency_summary(values) -> dict:
    return {
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "mean": float(sum(values) / len(values)),
        "max": float(max(values)),
    }


@dataclass
class ServeReport:
    """Everything one fleet run measured."""

    app: str
    config: str
    engine: str
    seed: int | None
    tenants: list[str]
    pool_size: int
    batch: int
    budget: int
    requests: int
    ok: int  # completed without fault
    valid: int  # responses that pass the app's check
    faults: int
    evictions: int
    wall_s: float  # whole-fleet serving wall time
    throughput_rps: float
    latency_wall_ms: dict
    latency_cycles: dict
    total_cycles: int
    total_instructions: int
    total_checks: int
    setup: dict
    per_tenant: dict

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "config": self.config,
            "engine": self.engine,
            "seed": self.seed,
            "tenants": self.tenants,
            "pool_size": self.pool_size,
            "batch": self.batch,
            "budget": self.budget,
            "requests": self.requests,
            "ok": self.ok,
            "valid": self.valid,
            "faults": self.faults,
            "evictions": self.evictions,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_wall_ms": self.latency_wall_ms,
            "latency_cycles": self.latency_cycles,
            "total_cycles": self.total_cycles,
            "total_instructions": self.total_instructions,
            "total_checks": self.total_checks,
            "setup": self.setup,
            "per_tenant": self.per_tenant,
        }

    def bench_entry(self) -> dict:
        """A bench_store benchmark entry (deterministic fields only —
        wall time rides along ungated)."""
        return bench_store.make_benchmark(
            name=f"serve/{self.app}",
            config=self.config,
            cycles=self.total_cycles,
            instructions=self.total_instructions,
            checks={"bnd_cfi": self.total_checks},
            wall_time_s=self.wall_s,
        )


def generate_requests(app: ServeApp, runtime: TrustedRuntime,
                      tenants, n_requests: int):
    """The deterministic request stream: request i goes to tenant
    ``i % len(tenants)`` with payload ``app.encode_request(rt, i)``."""
    tenants = list(tenants)
    return [
        (tenants[i % len(tenants)], app.encode_request(runtime, i))
        for i in range(n_requests)
    ]


def measure_setup_costs(image: MachineImage, timings: dict,
                        app: ServeApp) -> dict:
    """The cold-vs-fork comparison on both clocks.

    Wall: one compile+verify+load (``cold_wall_s``) against the mean
    in-place reset.  Simulated cycles: the app's init work a cold
    instance runs before serving (``warmup_cycles``) against the
    resume replay a restored fork pays (``resume_cycles``).
    """
    t0 = time.perf_counter()
    instance = ServeInstance(
        image.fork(), request_fd=app.request_fd,
        response_fd=app.response_fd,
    )
    fork_wall_s = time.perf_counter() - t0
    resume_cycles = resume_overhead_cycles(instance)
    # Warm the request path once so reset timing reflects steady state
    # (encode against the instance's runtime — session keys must match).
    instance.handle_request(app.encode_request(instance.runtime, 0))
    t0 = time.perf_counter()
    for _ in range(_RESET_SAMPLES):
        instance.reset()
    reset_wall_s = (time.perf_counter() - t0) / _RESET_SAMPLES
    cold_wall_s = timings["build_wall_s"] + timings["load_wall_s"]
    cold_cycles = image.warmup_cycles + resume_cycles
    return {
        "cold_build_wall_s": timings["build_wall_s"],
        "cold_load_wall_s": timings["load_wall_s"],
        "cold_wall_s": cold_wall_s,
        "warmup_cycles": image.warmup_cycles,
        "warmup_instructions": image.warmup_instructions,
        "warmup_wall_s": image.warmup_wall_s,
        "fork_wall_s": fork_wall_s,
        "reset_wall_s": reset_wall_s,
        "resume_cycles": resume_cycles,
        "wall_speedup": (
            cold_wall_s / reset_wall_s if reset_wall_s > 0 else float("inf")
        ),
        "cycle_speedup": (
            cold_cycles / resume_cycles if resume_cycles > 0
            else float("inf")
        ),
    }


def run_load(
    app_name: str,
    config,
    *,
    tenants: int = 2,
    pool_size: int = 2,
    requests: int = 100,
    batch: int = 1,
    budget: int = DEFAULT_BUDGET,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    engine: str = "predecoded",
    seed: int | None = None,
    verify: bool = True,
) -> ServeReport:
    """Build an image for ``app_name`` under ``config`` and drive
    ``requests`` requests through a ``tenants``-tenant fleet."""
    app = SERVE_APPS.get(app_name)
    if app is None:
        raise ServeError(
            f"unknown app {app_name!r}; pick from {sorted(SERVE_APPS)}"
        )
    if requests < 1:
        raise ServeError("need at least one request")

    image, timings = build_app_image(
        app, config, seed=seed, engine=engine, verify=verify
    )
    setup = measure_setup_costs(image, timings, app)

    fleet = Fleet(
        image, tenants, pool_size=pool_size, batch=batch, budget=budget,
        queue_depth=queue_depth, request_fd=app.request_fd,
        response_fd=app.response_fd,
    )
    # Encode against a runtime restored from the image so session keys
    # (and any setup state) match what the forks hold.
    encoder = TrustedRuntime()
    encoder.restore_state(image.runtime_state)
    stream = generate_requests(app, encoder, fleet.tenants, requests)

    t0 = time.perf_counter()
    results = fleet.serve(stream)
    wall_s = time.perf_counter() - t0

    valid = sum(
        1
        for (tenant, payload), result in zip(stream, results)
        if result.ok and app.check_response(
            encoder, payload, result.response
        )
    )
    return build_report(
        app_name=app_name,
        config_name=config.name,
        engine=engine,
        seed=seed,
        fleet=fleet,
        results=results,
        valid=valid,
        wall_s=wall_s,
        setup=setup,
        pool_size=pool_size,
        batch=batch,
        budget=budget,
    )


def build_report(*, app_name, config_name, engine, seed, fleet, results,
                 valid, wall_s, setup, pool_size, batch,
                 budget) -> ServeReport:
    ok = sum(1 for r in results if r.ok)
    faults = sum(1 for r in results if r.fault is not None)
    evictions = sum(1 for r in results if r.evicted)
    wall_ms = [r.wall_s * 1e3 for r in results]
    cycles = [r.cycles for r in results]
    return ServeReport(
        app=app_name,
        config=config_name,
        engine=engine,
        seed=seed,
        tenants=fleet.tenants,
        pool_size=pool_size,
        batch=batch,
        budget=budget,
        requests=len(results),
        ok=ok,
        valid=valid,
        faults=faults,
        evictions=evictions,
        wall_s=wall_s,
        throughput_rps=len(results) / wall_s if wall_s > 0 else 0.0,
        latency_wall_ms=latency_summary(wall_ms),
        latency_cycles=latency_summary(cycles),
        total_cycles=sum(cycles),
        total_instructions=sum(r.instructions for r in results),
        total_checks=sum(r.checks for r in results),
        setup=setup,
        per_tenant=fleet.counters(),
    )
