"""64-bit two's-complement arithmetic shared by the whole toolchain.

The constant folder, the IR interpreter used in tests, and the machine
simulator must agree exactly on arithmetic semantics, so they all call
into this module.  Values are Python ints normalized to ``[0, 2**64)``;
comparisons, division, and arithmetic shifts use the signed view.
Division semantics are x86's (truncation toward zero).
"""

from __future__ import annotations

from .errors import FAULT_DIV, MachineFault

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def wrap(value: int) -> int:
    """Normalize to unsigned 64-bit."""
    return value & MASK64


def signed(value: int) -> int:
    """Interpret an unsigned 64-bit value as signed."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN_BIT else value


def eval_bin(op: str, a: int, b: int) -> int:
    """Evaluate a 64-bit binary IR operation; result is unsigned-64."""
    a = wrap(a)
    b = wrap(b)
    if op == "add":
        return wrap(a + b)
    if op == "sub":
        return wrap(a - b)
    if op == "mul":
        return wrap(signed(a) * signed(b))
    if op == "div":
        sb = signed(b)
        if sb == 0:
            raise MachineFault(FAULT_DIV, "division by zero")
        sa = signed(a)
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return wrap(quotient)
    if op == "mod":
        sb = signed(b)
        if sb == 0:
            raise MachineFault(FAULT_DIV, "modulo by zero")
        sa = signed(a)
        remainder = abs(sa) % abs(sb)
        if sa < 0:
            remainder = -remainder
        return wrap(remainder)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return wrap(a << (b & 63))
    if op == "shr":
        # Arithmetic shift right (MiniC ints are signed).
        return wrap(signed(a) >> (b & 63))
    if op == "eq":
        return 1 if a == b else 0
    if op == "ne":
        return 1 if a != b else 0
    if op == "lt":
        return 1 if signed(a) < signed(b) else 0
    if op == "le":
        return 1 if signed(a) <= signed(b) else 0
    if op == "gt":
        return 1 if signed(a) > signed(b) else 0
    if op == "ge":
        return 1 if signed(a) >= signed(b) else 0
    raise ValueError(f"unknown binary op {op!r}")


def eval_un(op: str, a: int) -> int:
    a = wrap(a)
    if op == "neg":
        return wrap(-a)
    if op == "not":
        return wrap(~a)
    raise ValueError(f"unknown unary op {op!r}")
