"""ConfVerify: the static binary verifier (Section 5.2, Appendix A).

ConfVerify removes ConfLLVM from the TCB: given only a linked binary
and the magic prefixes, it re-establishes that the instrumentation is
sufficient for confidentiality.  It performs, per the paper:

1. **Disassembly / CFG recovery** anchored on the MCall magic words
   (procedure entries), rejecting direct jumps that leave their
   procedure;
2. a per-procedure **dataflow analysis** re-inferring the taint of
   every register at every instruction, seeded from the entry magic's
   taint bits (unused argument registers and caller-saves private,
   callee-saves public);
3. the **checks**: memory-operand taints must be evidenced by an MPX
   check in the same basic block or by an fs/gs prefix; every store's
   source taint must be ⊑ the operand's region; direct calls' register
   taints must match the callee's magic bits; indirect calls and
   returns must use the CheckMagic pattern with matching bits; ``rsp``
   may only change by constants and (for frame extension) must be
   followed by ``chkstk``; no indirect jumps (other than the read-only
   externals-table stubs), no segment-register writes, no stray
   ``ret``; and for the segmentation scheme, every register-anchored
   operand must be fs/gs-prefixed and 32-bit.

It also re-checks the magic-uniqueness property: no non-magic word's
encoding carries either 59-bit prefix — and, because code is readable
as data, that every magic *word* is itself legitimate: a call-kind word
must carry the MCall prefix, a ret-kind word must carry the MRet
prefix, and ret-kind words outside the linker's start/thunk preamble
may appear only at return sites (immediately after a call).  Without
the placement rule an attacker-controlled compiler could plant a spare
MRet word mid-procedure and divert a corrupted return address to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arith import MASK64
from ..backend import isa, regs
from ..errors import VerifyError
from ..link.layout import MPX_STACK_OFFSET
from ..link.objfile import Binary
from ..obs import events

L, H = 0, 1
ELIDE_LIMIT = 1 << 20

_TRACKED_REGS = tuple(range(regs.NUM_GPRS))


@dataclass
class _Proc:
    name: str
    magic_addr: int
    entry: int
    end: int  # exclusive
    bits: int


class BinaryVerifier:
    def __init__(self, binary: Binary):
        self.binary = binary
        self.config = binary.config
        if not self.config.cfi or self.config.shadow_stack:
            raise VerifyError(
                "config-not-verifiable",
                "ConfVerify requires the magic-sequence CFI scheme",
            )
        if self.config.scheme is None:
            raise VerifyError(
                "config-not-verifiable",
                "ConfVerify requires a bounds scheme (mpx or seg)",
            )
        self.code = binary.code
        self.mcall_word_base = binary.mcall_prefix << 5
        self.mret_word_base = binary.mret_prefix << 5
        self._stub_addrs = {
            addr
            for name, addr in binary.label_addrs.items()
            if name.startswith("stub.")
        }
        self._externals_range = (
            binary.externals_table_addr,
            binary.externals_table_addr + 8 * max(len(binary.imports), 1),
        )

    # ------------------------------------------------------------------

    def verify(self) -> None:
        with events.span("verify.uniqueness", cat="verify"):
            self._check_magic_uniqueness()
        with events.span("verify.cfg", cat="verify"):
            procs = self._find_procedures()
            self._check_stubs()
        events.counter("verifier.procedures").inc(len(procs))
        with events.span("verify.dataflow", cat="verify"):
            for proc in procs:
                self._verify_procedure(proc)

    # ------------------------------------------------------------------
    # Stage 1: structure

    def _check_magic_uniqueness(self) -> None:
        for word in self.code:
            if isinstance(word, isa.MagicWord):
                continue
            enc = word.encoding()
            prefix = enc >> 5
            if prefix in (self.binary.mcall_prefix, self.binary.mret_prefix):
                raise VerifyError(
                    "magic-not-unique",
                    f"non-magic word encodes a magic prefix: {word!r}",
                )
        self._check_magic_placement()

    def _check_magic_placement(self) -> None:
        """Every magic word must be legitimate *as a word*.

        A call-kind word must carry the MCall prefix and a ret-kind
        word the MRet prefix (a ret-kind word carrying the MCall prefix
        would be a forged indirect-call target that the uniqueness scan
        above deliberately skips).  Ret-kind words outside the linker
        preamble (the start/thread-exit/T-return thunks that precede
        the first procedure) may only appear at return sites, i.e.
        immediately after a call — a spare MRet word anywhere else
        would let a corrupted return address land mid-procedure.
        """
        preamble_end = len(self.code)
        for addr, word in enumerate(self.code):
            if isinstance(word, isa.MagicWord) and word.kind == "call":
                preamble_end = addr
                break
        for addr, word in enumerate(self.code):
            if not isinstance(word, isa.MagicWord):
                continue
            expected_prefix = (
                self.binary.mcall_prefix
                if word.kind == "call"
                else self.binary.mret_prefix
            )
            if (word.value >> 5) != expected_prefix:
                raise VerifyError(
                    "bad-magic-word",
                    f"{word.kind} magic with wrong prefix @{addr}",
                )
            if word.kind == "ret" and addr >= preamble_end:
                prev = self.code[addr - 1] if addr > 0 else None
                if not isinstance(prev, (isa.CallD, isa.CallI)):
                    raise VerifyError(
                        "stray-ret-magic",
                        f"ret magic @{addr} is not at a return site",
                    )

    def _find_procedures(self) -> list[_Proc]:
        entries: list[tuple[int, int]] = []  # (magic addr, bits)
        for addr, word in enumerate(self.code):
            if isinstance(word, isa.MagicWord) and word.kind == "call":
                if (word.value >> 5) != self.binary.mcall_prefix:
                    raise VerifyError(
                        "bad-magic-word", f"call magic with wrong prefix @{addr}"
                    )
                entries.append((addr, word.value & 0x1F))
        if not entries:
            raise VerifyError("no-procedures", "no MCall magic words found")
        stub_start = min(self._stub_addrs) if self._stub_addrs else len(self.code)
        procs = []
        addr_to_name = {
            maddr: name for name, maddr in self.binary.func_magic_addrs.items()
        }
        for index, (maddr, bits) in enumerate(entries):
            end = (
                entries[index + 1][0]
                if index + 1 < len(entries)
                else stub_start
            )
            name = addr_to_name.get(maddr, f"proc@{maddr}")
            procs.append(_Proc(name, maddr, maddr + 1, end, bits))
        return procs

    def _check_stubs(self) -> None:
        lo, hi = self._externals_range
        for addr in self._stub_addrs:
            insn = self.code[addr]
            if not isinstance(insn, isa.JmpInd):
                raise VerifyError("bad-stub", f"stub @{addr} is {insn!r}")
            mem = insn.mem
            ok = (
                mem.abs is not None
                and mem.base is None
                and mem.index is None
                and lo <= mem.abs + mem.disp < hi
            )
            if not ok:
                raise VerifyError(
                    "bad-stub", f"stub @{addr} jumps outside externals table"
                )

    # ------------------------------------------------------------------
    # Stage 2+3: per-procedure dataflow and checks

    def _verify_procedure(self, proc: _Proc) -> None:
        blocks = self._build_blocks(proc)
        entry_state = self._entry_state(proc.bits)
        in_states: dict[int, list[int]] = {proc.entry: entry_state}
        worklist = [proc.entry]
        seen_once: set[int] = set()
        iterations = 0
        edges = 0
        while worklist:
            leader = worklist.pop()
            state = in_states[leader]
            out_edges = self._flow_block(
                proc, blocks, leader, list(state)
            )
            iterations += 1
            edges += len(out_edges)
            seen_once.add(leader)
            for target, out_state in out_edges:
                if target not in blocks:
                    raise VerifyError(
                        "jump-outside-procedure",
                        f"{proc.name}: edge to {target} leaves the procedure",
                    )
                old = in_states.get(target)
                if old is None:
                    in_states[target] = list(out_state)
                    worklist.append(target)
                else:
                    merged = [max(a, b) for a, b in zip(old, out_state)]
                    if merged != old:
                        in_states[target] = merged
                        worklist.append(target)
        events.counter("verifier.blocks").inc(len(blocks))
        events.counter("verifier.cfg_edges").inc(edges)
        events.counter("verifier.dataflow_iterations").inc(iterations)

    def _entry_state(self, bits: int) -> list[int]:
        state = [H] * regs.NUM_GPRS  # dead registers conservatively private
        for i, reg in enumerate(regs.ARG_REGS):
            state[reg] = (bits >> i) & 1
        for reg in regs.CALLEE_SAVE:
            state[reg] = L
        state[regs.RSP] = L
        return state

    def _build_blocks(self, proc: _Proc) -> dict[int, int]:
        """Return {leader addr: end addr} for the procedure's blocks."""
        leaders = {proc.entry}
        addr = proc.entry
        while addr < proc.end:
            insn = self.code[addr]
            if isinstance(insn, (isa.Jmp, isa.Br)):
                leaders.add(insn.addr)
                leaders.add(addr + 1)
            addr += 1
        ordered = sorted(x for x in leaders if proc.entry <= x < proc.end)
        blocks = {}
        for i, leader in enumerate(ordered):
            end = ordered[i + 1] if i + 1 < len(ordered) else proc.end
            blocks[leader] = end
        return blocks

    # -- the per-block transfer function, enforcing all checks ----------

    def _flow_block(self, proc, blocks, leader, state):
        """Walk one block; returns [(successor leader, out state)].

        ``checked`` tracks MPX checks seen in this block, invalidated on
        register redefinition and calls — mirroring how the paper's
        verifier "looks for MPX checks ... in the same basic block".
        """
        checked: set = set()
        edges: list[tuple[int, list[int]]] = []
        addr = leader
        end = blocks[leader]
        code = self.code

        def define(reg: int, taint: int) -> None:
            state[reg] = taint
            stale = [k for k in checked if reg in (k[1], k[2] if len(k) > 4 else None)]
            for k in stale:
                checked.discard(k)

        def operand_taint(op) -> int:
            if isinstance(op, isa.Imm):
                return L
            return state[op]

        while addr < end:
            insn = code[addr]
            if isinstance(insn, isa.MagicWord):
                if insn.kind == "call":  # pragma: no cover - proc bounds
                    raise VerifyError("magic-in-body", proc.name)
                addr += 1
                continue
            if isinstance(insn, (isa.MovRI, isa.MovFuncAddr)):
                define(insn.dst, L)
            elif isinstance(insn, isa.MovRR):
                if insn.dst in (regs.FS, regs.GS) or insn.src in (regs.FS, regs.GS):
                    raise VerifyError(
                        "segment-register-write", f"{proc.name}@{addr}"
                    )
                if insn.dst == regs.RSP:
                    raise VerifyError("rsp-overwrite", f"{proc.name}@{addr}")
                define(insn.dst, state[insn.src])
            elif isinstance(insn, isa.Alu):
                self._check_rsp_arith(proc, addr, insn)
                taint = max(operand_taint(insn.a), operand_taint(insn.b))
                if insn.op in ("neg", "not"):
                    taint = operand_taint(insn.a)
                define(insn.dst, taint)
            elif isinstance(insn, isa.SetCC):
                define(
                    insn.dst,
                    max(operand_taint(insn.a), operand_taint(insn.b)),
                )
            elif isinstance(insn, isa.Lea):
                self._check_seg_operand(proc, addr, insn.mem, lea=True)
                define(insn.dst, L)
            elif isinstance(insn, isa.Load):
                region = self._operand_region(proc, addr, insn.mem, checked)
                define(insn.dst, H if region == "priv" else L)
            elif isinstance(insn, isa.Store):
                region = self._operand_region(proc, addr, insn.mem, checked)
                src_taint = operand_taint(insn.src)
                if src_taint == H and region == "pub":
                    raise VerifyError(
                        "store-taint-mismatch",
                        f"{proc.name}@{addr}: private value stored to "
                        f"public memory: {insn!r}",
                    )
            elif isinstance(insn, isa.BndChk):
                if insn.mem is not None:
                    key = (
                        "mem",
                        insn.mem.base,
                        insn.mem.index,
                        insn.mem.scale,
                        insn.mem.disp,
                        insn.bnd,
                    )
                else:
                    key = ("reg", insn.reg, insn.bnd)
                checked.add(key)
            elif isinstance(insn, isa.Push):
                pass
            elif isinstance(insn, isa.Pop):
                # Values popped from the public stack are public, except
                # the CFI return sequence handles its own Pop below.
                nxt = code[addr + 1] if addr + 1 < end else None
                if isinstance(nxt, isa.CheckMagic) and nxt.kind == "ret":
                    self._verify_return(proc, addr, end, state)
                    return edges  # return terminates the block
                define(insn.dst, L)
            elif isinstance(insn, isa.Jmp):
                edges.append((insn.addr, state))
                return edges
            elif isinstance(insn, isa.Br):
                edges.append((insn.addr, list(state)))
                edges.append((addr + 1, state))
                return edges
            elif isinstance(insn, isa.CallD):
                addr = self._verify_direct_call(proc, addr, state)
                checked.clear()
                continue
            elif isinstance(insn, isa.CheckMagic):
                if insn.kind != "call":
                    raise VerifyError(
                        "stray-checkmagic", f"{proc.name}@{addr}"
                    )
                addr = self._verify_indirect_call(proc, addr, state)
                checked.clear()
                continue
            elif isinstance(insn, isa.CallI):
                raise VerifyError(
                    "unchecked-indirect-call", f"{proc.name}@{addr}"
                )
            elif isinstance(insn, isa.RetPlain):
                raise VerifyError("plain-ret", f"{proc.name}@{addr}")
            elif isinstance(insn, (isa.JmpInd, isa.JmpReg, isa.JmpTable)):
                raise VerifyError("indirect-jump", f"{proc.name}@{addr}")
            elif isinstance(insn, isa.ChkStk):
                pass
            elif isinstance(insn, isa.TlsBase):
                define(insn.dst, L)
            elif isinstance(insn, isa.Fail):
                return edges  # dead end
            elif isinstance(insn, isa.Halt):
                raise VerifyError("halt-in-procedure", f"{proc.name}@{addr}")
            else:  # pragma: no cover
                raise VerifyError("unknown-instruction", repr(insn))
            addr += 1
        if addr >= proc.end:
            raise VerifyError(
                "fallthrough-out-of-procedure", f"{proc.name}@{addr}"
            )
        edges.append((addr, state))
        return edges

    # -- helpers ----------------------------------------------------------

    def _check_rsp_arith(self, proc, addr, insn: isa.Alu) -> None:
        if insn.dst != regs.RSP:
            return
        if insn.op not in ("add", "sub") or not isinstance(insn.b, isa.Imm):
            raise VerifyError(
                "rsp-non-constant-arith", f"{proc.name}@{addr}: {insn!r}"
            )
        if insn.a != regs.RSP:
            raise VerifyError("rsp-overwrite", f"{proc.name}@{addr}")
        if insn.op == "sub" and self.config.chkstk:
            nxt = self.code[addr + 1] if addr + 1 < len(self.code) else None
            if not isinstance(nxt, isa.ChkStk):
                raise VerifyError(
                    "missing-chkstk",
                    f"{proc.name}@{addr}: frame extension without chkstk",
                )

    def _check_seg_operand(self, proc, addr, mem: isa.Mem, lea=False) -> None:
        if self.config.scheme != "seg":
            return
        if mem.abs is not None or mem.global_name is not None:
            return
        if mem.seg is None or not mem.use32:
            raise VerifyError(
                "unprefixed-operand",
                f"{proc.name}@{addr}: operand {mem!r} lacks fs/gs + 32-bit "
                "addressing",
            )

    def _operand_region(self, proc, addr, mem: isa.Mem, checked) -> str:
        layout = self.binary.layout
        if mem.abs is not None:
            if mem.index is not None:
                raise VerifyError(
                    "indexed-static-operand",
                    f"{proc.name}@{addr}: absolute operand with an index "
                    "register could escape its region",
                )
            target = mem.abs + mem.disp
            if layout.private is not None and layout.private.contains(target):
                return "priv"
            if layout.public.contains(target):
                return "pub"
            raise VerifyError(
                "static-operand-outside-regions", f"{proc.name}@{addr}"
            )
        if mem.seg == isa.SEG_GS:
            if not mem.use32:
                raise VerifyError("unprefixed-operand", f"{proc.name}@{addr}")
            return "priv"
        if mem.seg == isa.SEG_FS:
            if not mem.use32:
                raise VerifyError("unprefixed-operand", f"{proc.name}@{addr}")
            return "pub"
        if self.config.scheme == "seg":
            raise VerifyError(
                "unprefixed-operand", f"{proc.name}@{addr}: {mem!r}"
            )
        # MPX scheme: rsp-anchored operands are covered by chkstk.
        if mem.base == regs.RSP:
            return (
                "priv"
                if self.config.split_stacks and mem.disp >= MPX_STACK_OFFSET
                else "pub"
            )
        for bnd, region in ((0, "pub"), (1, "priv")):
            if (
                mem.index is None
                and abs(mem.disp) < ELIDE_LIMIT
                and ("reg", mem.base, bnd) in checked
            ):
                return region
            key = ("mem", mem.base, mem.index, mem.scale, mem.disp, bnd)
            if key in checked:
                return region
        raise VerifyError(
            "missing-bounds-check",
            f"{proc.name}@{addr}: unchecked operand {mem!r}",
        )

    def _callee_bits_at(self, target_addr: int, proc, addr) -> int:
        """Taint bits of the procedure or stub a direct call targets."""
        if target_addr in self._stub_addrs:
            name = next(
                n[5:]
                for n, a in self.binary.label_addrs.items()
                if a == target_addr and n.startswith("stub.")
            )
            for i, ext in enumerate(self.binary.imports):
                if ext.name == name:
                    return isa.mcall_bits(
                        [int(t) for t in ext.arg_taints],
                        int(ext.ret_taint),
                        len(ext.arg_taints),
                    )
            raise VerifyError("unknown-import", name)  # pragma: no cover
        magic = self.code[target_addr - 1] if target_addr > 0 else None
        if not (isinstance(magic, isa.MagicWord) and magic.kind == "call"):
            raise VerifyError(
                "call-to-non-procedure",
                f"{proc.name}@{addr} -> {target_addr}",
            )
        return magic.value & 0x1F

    def _check_call_bits(self, proc, addr, state, bits: int) -> None:
        for i, reg in enumerate(regs.ARG_REGS):
            expected = (bits >> i) & 1
            if state[reg] > expected:
                raise VerifyError(
                    "call-taint-mismatch",
                    f"{proc.name}@{addr}: arg reg {regs.name(reg)} is "
                    f"private but callee expects public",
                )

    def _after_call(self, proc, addr, state, ret_bit: int) -> int:
        """Verify the return-site magic word and produce the post-call
        state; returns the address execution continues at."""
        magic = self.code[addr] if addr < len(self.code) else None
        if not (isinstance(magic, isa.MagicWord) and magic.kind == "ret"):
            raise VerifyError(
                "missing-return-site-magic", f"{proc.name}@{addr}"
            )
        if (magic.value >> 5) != self.binary.mret_prefix:
            raise VerifyError("bad-magic-word", f"{proc.name}@{addr}")
        if (magic.value & 0x1F) != ret_bit:
            raise VerifyError(
                "return-site-taint-mismatch",
                f"{proc.name}@{addr}: site expects {magic.value & 0x1F}, "
                f"callee returns {ret_bit}",
            )
        state[regs.RAX] = ret_bit
        for reg in (regs.RCX, regs.RDX, regs.R8, regs.R9, regs.R10, regs.R11):
            state[reg] = H  # caller-saves conservatively private
        for reg in regs.CALLEE_SAVE:
            state[reg] = L
        return addr + 1

    def _verify_direct_call(self, proc, addr, state) -> int:
        insn: isa.CallD = self.code[addr]
        bits = self._callee_bits_at(insn.addr, proc, addr)
        self._check_call_bits(proc, addr, state, bits)
        return self._after_call(proc, addr + 1, state, (bits >> 4) & 1)

    def _verify_indirect_call(self, proc, addr, state) -> int:
        check: isa.CheckMagic = self.code[addr]
        expected = ~check.inv_value & MASK64
        if (expected >> 5) != self.binary.mcall_prefix:
            raise VerifyError(
                "bad-icall-check",
                f"{proc.name}@{addr}: check does not target MCall",
            )
        bits = expected & 0x1F
        if state[check.reg] != L:
            raise VerifyError(
                "private-function-pointer", f"{proc.name}@{addr}"
            )
        nxt = self.code[addr + 1] if addr + 1 < len(self.code) else None
        if not (isinstance(nxt, isa.CallI) and nxt.reg == check.reg):
            raise VerifyError(
                "icall-check-pattern",
                f"{proc.name}@{addr}: CheckMagic not followed by CallI on "
                "the same register",
            )
        self._check_call_bits(proc, addr, state, bits)
        return self._after_call(proc, addr + 2, state, (bits >> 4) & 1)

    def _verify_return(self, proc, addr, end, state) -> None:
        pop: isa.Pop = self.code[addr]
        check: isa.CheckMagic = self.code[addr + 1]
        if check.reg != pop.dst:
            raise VerifyError("ret-check-pattern", f"{proc.name}@{addr}")
        expected = ~check.inv_value & MASK64
        if (expected >> 5) != self.binary.mret_prefix:
            raise VerifyError("ret-check-pattern", f"{proc.name}@{addr}")
        ret_bit = expected & 0x1F
        # RAX must be no more tainted than the declared return taint.
        if state[regs.RAX] > (ret_bit & 1):
            raise VerifyError(
                "return-taint-mismatch",
                f"{proc.name}@{addr}: private rax returned as public",
            )
        # The procedure's own entry bits must agree.
        if (ret_bit & 1) != (proc.bits >> 4) & 1:
            raise VerifyError(
                "return-taint-mismatch",
                f"{proc.name}@{addr}: ret bit disagrees with entry magic",
            )
        nxt = self.code[addr + 2] if addr + 2 < len(self.code) else None
        if not (
            isinstance(nxt, isa.JmpReg)
            and nxt.reg == pop.dst
            and nxt.skip == 1
        ):
            raise VerifyError("ret-check-pattern", f"{proc.name}@{addr}")


def verify_binary(binary: Binary) -> None:
    """Run ConfVerify on a linked binary; raises VerifyError on reject."""
    with events.span("compile.verify", cat="verify", config=binary.config.name):
        BinaryVerifier(binary).verify()


def expected_check_sites(binary: Binary) -> dict[int, str]:
    """Re-derive the check-site map from the instruction stream alone.

    This is the ground truth the linker's recorded ``check_sites``
    metadata must agree with; profilers classify executed instructions
    with the same ``isa.check_kind`` predicate, so agreement here means
    the symbol-side metadata and the dynamic attribution can never
    drift apart.
    """
    return {
        addr: kind
        for addr, insn in enumerate(binary.code)
        if (kind := isa.check_kind(insn)) is not None
    }


def verify_check_sites(binary: Binary) -> None:
    """Cross-check the recorded check-site metadata against the code.

    Kept outside the :meth:`BinaryVerifier.verify` gauntlet on purpose:
    the mutation-kill corpus rewrites instructions in place, and a
    stale-metadata rejection there would mask the *semantic* reason a
    mutant must be killed.  Overhead reports call this before trusting
    ``binary.check_sites``.
    """
    expected = expected_check_sites(binary)
    recorded = binary.check_sites
    if recorded == expected:
        return
    missing = sorted(set(expected) - set(recorded))
    stale = sorted(
        addr for addr, kind in recorded.items()
        if expected.get(addr) != kind
    )
    raise VerifyError(
        "check-sites-stale",
        f"{len(missing)} unrecorded and {len(stale)} stale check sites "
        f"(first: {(missing + stale)[:4]})",
    )
