"""ConfVerify: the static binary verifier."""

from .verify import (
    BinaryVerifier,
    expected_check_sites,
    verify_binary,
    verify_check_sites,
)

__all__ = [
    "verify_binary",
    "BinaryVerifier",
    "expected_check_sites",
    "verify_check_sites",
]
