"""ConfVerify: the static binary verifier."""

from .verify import BinaryVerifier, verify_binary

__all__ = ["verify_binary", "BinaryVerifier"]
