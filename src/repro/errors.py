"""Exception hierarchy for the ConfLLVM reproduction.

Every stage of the toolchain raises a subclass of :class:`ReproError` so
callers can catch "any toolchain failure" uniformly, while tests can pin
down the exact failing stage.  Runtime security violations detected by
the simulated machine raise :class:`MachineFault`, which is *not* a
toolchain error: a fault at runtime is the scheme working as intended
(an attack was stopped), so it lives in its own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceLocation:
    """A (line, column) position in a MiniC source file."""

    __slots__ = ("line", "col", "filename")

    def __init__(self, line: int, col: int, filename: str = "<input>"):
        self.line = line
        self.col = col
        self.filename = filename

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.col, self.filename) == (
            other.line,
            other.col,
            other.filename,
        )


class SourceError(ReproError):
    """An error attributable to a location in MiniC source code."""

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc
        self.message = message
        prefix = f"{loc}: " if loc is not None else ""
        super().__init__(prefix + message)


class LexError(SourceError):
    """Invalid token in MiniC source."""


class ParseError(SourceError):
    """Syntactically invalid MiniC source."""


class SemaError(SourceError):
    """Semantic (name/type) error in MiniC source."""


class TaintError(SourceError):
    """Taint qualifier inference failed: a private-to-public flow exists.

    This is the compile-time error ConfLLVM reports when, e.g., a
    private buffer is passed to a function expecting a public argument
    (the ``send(log_file, passwd, SIZE)`` bug of Figure 1).
    """


class ImplicitFlowError(SourceError):
    """Strict mode rejected a branch on private data (implicit flow)."""


class IRError(ReproError):
    """The IR verifier found malformed IR (a compiler bug)."""


class CodegenError(ReproError):
    """The backend could not lower a function."""


class LinkError(ReproError):
    """Linking failed (unresolved symbol, magic selection failure...)."""


class LoadError(ReproError):
    """The loader could not map the binary into a machine."""


class VerifyError(ReproError):
    """ConfVerify rejected a binary.

    Attributes
    ----------
    reason:
        A short machine-readable tag (e.g. ``"store-taint-mismatch"``)
        used by the fault-injection tests to assert *why* a tampered
        binary was rejected.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


class ServeError(ReproError):
    """The serving tier was misused (non-server program, fork of an
    unsealed machine, bad fleet configuration...)."""


class MachineFault(Exception):
    """A runtime fault in the simulated machine.

    Faults are how the inserted instrumentation stops attacks: an MPX
    bound violation, a guard-page access under the segmentation scheme,
    a failed CFI magic-sequence check, a ``_chkstk`` stack-escape, or a
    trusted-wrapper argument range check.

    Attributes
    ----------
    kind:
        One of the ``FAULT_*`` constants below.
    """

    def __init__(self, kind: str, detail: str = "", addr: int | None = None):
        self.kind = kind
        self.detail = detail
        self.addr = addr
        where = f" at {addr:#x}" if addr is not None else ""
        super().__init__(f"{kind}{where}: {detail}" if detail else f"{kind}{where}")


FAULT_UNMAPPED = "unmapped-access"
FAULT_BOUNDS = "mpx-bound-violation"
FAULT_CFI = "cfi-check-failed"
FAULT_CHKSTK = "stack-escape"
FAULT_WRAPPER = "trusted-wrapper-check-failed"
FAULT_PERM = "permission-violation"
FAULT_EXEC = "bad-execution-target"
FAULT_DIV = "divide-error"
FAULT_HALT = "halt"
