"""Build configurations matching the paper's evaluation setups.

Section 7 measures these configurations; each is a preset here:

========== ==================================================================
Base        vanilla compiler, O2, native allocator, single memory
BaseOA      Base + ConfLLVM's custom region allocator
Our1Mem     ConfLLVM pipeline, no instrumentation, no T/U memory separation
OurBare     ConfLLVM pipeline, no runtime checks; unsupported opts disabled,
            T/U memories separated (stack switch on T calls), split stacks
OurCFI      OurBare + taint-aware CFI magic sequences
OurMPX      full ConfLLVM, bounds via MPX bound registers
OurMPX-Sep  OurMPX without the private/public stack separation
OurSeg      full ConfLLVM, bounds via fs/gs segmentation
========== ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Check-optimization levels, weakest to strongest (see BuildConfig.checkopt).
CHECKOPT_LEVELS = ("off", "safe", "aggressive")


@dataclass(frozen=True)
class BuildConfig:
    name: str
    # Compiler pipeline: "vanilla" runs all optimizations; "confllvm"
    # disables the ones that do not preserve taint metadata.
    pipeline: str = "confllvm"
    # Bounds-check scheme: None, "mpx", or "seg".
    scheme: str | None = None
    # Taint-aware CFI (magic sequences at entries/return sites).
    cfi: bool = False
    # Separate T's memory from U's (and switch stacks on T calls).
    separate_tu: bool = True
    # Separate public and private stacks (lock-step, at OFFSET).
    split_stacks: bool = True
    # Use the custom region allocator instead of the "native" one.
    custom_allocator: bool = True
    # Inline _chkstk enforcement (rsp cannot escape its stack).
    chkstk: bool = True
    # MPX optimization toggles (for the ablation benchmarks).
    coalesce_checks: bool = True
    elide_small_disp: bool = True
    # Check-optimization level (the certified pipeline's dial):
    #   "off"        — conservatively preserve every inserted check
    #                  (no coalescing, no small-displacement elision);
    #   "safe"       — the paper's codegen-time MPX optimizations
    #                  (the default; bit-identical to historical output);
    #   "aggressive" — "safe" plus the post-codegen witnessed check
    #                  optimizer (repro.opt.checkopt) on the ISA stream.
    checkopt: str = "safe"
    # Ablation: classic shadow-stack CFI instead of magic sequences.
    shadow_stack: bool = False
    # Strict mode (reject implicit flows); the paper runs strict.
    strict: bool = True
    # All-private scenario (§5.1): every unannotated top-level position
    # defaults to private, and branching on private data is allowed
    # (there are no public sinks, so implicit flows are impossible).
    all_private: bool = False

    def __post_init__(self):
        if self.checkopt not in CHECKOPT_LEVELS:
            raise ValueError(
                f"unknown checkopt level {self.checkopt!r} "
                f"(choose from {', '.join(CHECKOPT_LEVELS)})"
            )

    @property
    def instrumented(self) -> bool:
        return self.scheme is not None or self.cfi

    @property
    def is_confllvm(self) -> bool:
        return self.pipeline == "confllvm"

    def variant(self, **changes) -> "BuildConfig":
        return replace(self, **changes)


BASE = BuildConfig(
    name="Base",
    pipeline="vanilla",
    scheme=None,
    cfi=False,
    separate_tu=False,
    split_stacks=False,
    custom_allocator=False,
    chkstk=False,
)

BASE_OA = BASE.variant(name="BaseOA", custom_allocator=True)

OUR_1MEM = BuildConfig(
    name="Our1Mem",
    pipeline="confllvm",
    scheme=None,
    cfi=False,
    separate_tu=False,
    split_stacks=False,
    chkstk=False,
)

OUR_BARE = BuildConfig(
    name="OurBare",
    pipeline="confllvm",
    scheme=None,
    cfi=False,
    separate_tu=True,
    split_stacks=True,
    chkstk=False,
)

OUR_CFI = OUR_BARE.variant(name="OurCFI", cfi=True, chkstk=True)

OUR_MPX = OUR_CFI.variant(name="OurMPX", scheme="mpx")

OUR_MPX_SEP = OUR_MPX.variant(name="OurMPX-Sep", split_stacks=False)

OUR_SEG = OUR_CFI.variant(name="OurSeg", scheme="seg")

ALL_CONFIGS = {
    c.name: c
    for c in (
        BASE,
        BASE_OA,
        OUR_1MEM,
        OUR_BARE,
        OUR_CFI,
        OUR_MPX,
        OUR_MPX_SEP,
        OUR_SEG,
    )
}

SPEC_CONFIGS = (BASE, BASE_OA, OUR_BARE, OUR_CFI, OUR_MPX, OUR_SEG)
NGINX_CONFIGS = (BASE, OUR_1MEM, OUR_BARE, OUR_CFI, OUR_MPX_SEP, OUR_MPX)
