"""The trusted runtime T: allocators, channels, wrappers."""

from .alloc import NativeAllocator, RegionAllocator
from .trusted import T_PROTOTYPES, Channel, TrustedRuntime

__all__ = [
    "TrustedRuntime",
    "Channel",
    "T_PROTOTYPES",
    "RegionAllocator",
    "NativeAllocator",
]
