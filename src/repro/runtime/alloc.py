"""Heap allocators for U's regions.

``RegionAllocator`` is the dlmalloc-analogue the paper modified: a
first-fit free list with splitting and coalescing that keeps every
allocation inside its region (public or private), compactly.

``NativeAllocator`` models the system allocator used by the ``Base``
configuration: same interface, but allocations are deliberately striped
across the heap the way a general-purpose malloc's size-class arenas
scatter small objects.  The worse locality (visible through the L1
model) is what makes BaseOA *negative* overhead on allocation-heavy
workloads like milc in Figure 5 — the custom allocator genuinely helps.
"""

from __future__ import annotations

from ..errors import MachineFault

HEADER = 16
ALIGN = 16


class AllocError(MachineFault):
    def __init__(self, detail: str):
        super().__init__("allocator-error", detail)


class RegionAllocator:
    """First-fit free list with coalescing, confined to [lo, hi)."""

    #: cycles charged per malloc/free by the T wrapper
    op_cost = 18

    def __init__(self, lo: int, hi: int):
        self._lo = lo
        self._hi = hi
        # Free list of (addr, size), address-ordered.
        self._free: list[tuple[int, int]] = [(lo, hi - lo)]
        self._sizes: dict[int, int] = {}  # user addr -> block size

    def contains(self, addr: int) -> bool:
        return self._lo <= addr < self._hi

    def malloc(self, size: int) -> int:
        need = (max(size, 1) + HEADER + ALIGN - 1) // ALIGN * ALIGN
        for i, (addr, block) in enumerate(self._free):
            if block >= need:
                if block - need >= ALIGN:
                    self._free[i] = (addr + need, block - need)
                else:
                    need = block
                    self._free.pop(i)
                user = addr + HEADER
                self._sizes[user] = need
                return user
        raise AllocError(f"out of memory (requested {size})")

    def free(self, user: int) -> None:
        size = self._sizes.pop(user, None)
        if size is None:
            raise AllocError(f"invalid free at {user:#x}")
        self._insert(user - HEADER, size)

    def user_size(self, user: int) -> int | None:
        size = self._sizes.get(user)
        return None if size is None else size - HEADER

    def snapshot_state(self) -> tuple:
        return ("region", self._lo, self._hi, tuple(self._free),
                dict(self._sizes))

    def restore_state(self, state: tuple) -> None:
        tag, lo, hi, free, sizes = state
        if tag != "region" or (lo, hi) != (self._lo, self._hi):
            raise ValueError("allocator snapshot mismatch")
        self._free[:] = free
        self._sizes.clear()
        self._sizes.update(sizes)

    def _insert(self, addr: int, size: int) -> None:
        # Address-ordered insert with coalescing.
        lo_idx = 0
        while lo_idx < len(self._free) and self._free[lo_idx][0] < addr:
            lo_idx += 1
        self._free.insert(lo_idx, (addr, size))
        # Coalesce with the next block.
        if lo_idx + 1 < len(self._free):
            naddr, nsize = self._free[lo_idx + 1]
            if addr + size == naddr:
                self._free[lo_idx] = (addr, size + nsize)
                self._free.pop(lo_idx + 1)
        # Coalesce with the previous block.
        if lo_idx > 0:
            paddr, psize = self._free[lo_idx - 1]
            if paddr + psize == addr:
                addr, size = self._free[lo_idx]
                self._free[lo_idx - 1] = (paddr, psize + size)
                self._free.pop(lo_idx)


class NativeAllocator:
    """A system-malloc stand-in: correctness-equivalent, but stripes
    allocations over many arenas so consecutive allocations do not sit
    on neighbouring cache lines, and each operation is a bit dearer."""

    op_cost = 26
    N_ARENAS = 32

    def __init__(self, lo: int, hi: int):
        self._lo = lo
        self._hi = hi
        stripe = (hi - lo) // self.N_ARENAS
        stripe = stripe // ALIGN * ALIGN
        self._arenas = [
            RegionAllocator(lo + i * stripe, lo + (i + 1) * stripe)
            for i in range(self.N_ARENAS)
        ]
        self._cursor = 0
        self._owner: dict[int, RegionAllocator] = {}

    def contains(self, addr: int) -> bool:
        return self._lo <= addr < self._hi

    def malloc(self, size: int) -> int:
        for attempt in range(self.N_ARENAS):
            arena = self._arenas[(self._cursor + attempt) % self.N_ARENAS]
            try:
                user = arena.malloc(size)
            except AllocError:
                continue
            self._cursor = (self._cursor + attempt + 1) % self.N_ARENAS
            self._owner[user] = arena
            return user
        raise AllocError(f"out of memory (requested {size})")

    def free(self, user: int) -> None:
        arena = self._owner.pop(user, None)
        if arena is None:
            raise AllocError(f"invalid free at {user:#x}")
        arena.free(user)

    def user_size(self, user: int) -> int | None:
        arena = self._owner.get(user)
        return None if arena is None else arena.user_size(user)

    def snapshot_state(self) -> tuple:
        index = {id(a): i for i, a in enumerate(self._arenas)}
        return (
            "native",
            self._lo,
            self._hi,
            tuple(a.snapshot_state() for a in self._arenas),
            self._cursor,
            {user: index[id(arena)] for user, arena in self._owner.items()},
        )

    def restore_state(self, state: tuple) -> None:
        tag, lo, hi, arenas, cursor, owner = state
        if tag != "native" or (lo, hi) != (self._lo, self._hi):
            raise ValueError("allocator snapshot mismatch")
        for arena, saved in zip(self._arenas, arenas):
            arena.restore_state(saved)
        self._cursor = cursor
        self._owner.clear()
        for user, arena_index in owner.items():
            self._owner[user] = self._arenas[arena_index]


def restore_allocator(alloc, state):
    """Restore ``alloc`` from ``state``, constructing a fresh allocator
    of the right class when ``alloc`` is None (machine forks) or its
    region does not match the snapshot."""
    if state is None:
        return None
    tag, lo, hi = state[0], state[1], state[2]
    cls = RegionAllocator if tag == "region" else NativeAllocator
    if alloc is None or not isinstance(alloc, cls) or (
        alloc._lo, alloc._hi
    ) != (lo, hi):
        alloc = cls(lo, hi)
    alloc.restore_state(state)
    return alloc
