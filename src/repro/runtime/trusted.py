"""The trusted library T: wrappers + implementations.

T is the paper's trusted component: I/O, cryptographic primitives,
sources of secrets, allocators, and declassifiers.  It is "compiled
with a vanilla compiler" — here, implemented natively in Python — and
reached through per-function **wrappers** that perform the steps of
Section 6:

(a) range-check pointer arguments against U's public/private regions
    (e.g. ``read_passwd`` checks ``[pass, pass+size-1]`` lies in U's
    private region);
(b/c/d) switch stacks and ``gs`` to T's own memory (modelled as a
    fixed cycle cost);
(e) run the underlying function, then return to U following the CFI
    return protocol (verifying the MRet magic at the return site).

The canonical `extern trusted` prototypes U code must declare are in
:data:`T_PROTOTYPES`.
"""

from __future__ import annotations

import hashlib
import random

from ..arith import MASK64
from ..backend import regs
from ..errors import FAULT_CFI, FAULT_WRAPPER, MachineFault
from ..link.layout import CODE_BASE
from ..machine import costs
from ..obs import events
from .alloc import NativeAllocator, RegionAllocator, restore_allocator

T_PROTOTYPES = """
extern trusted int recv(int fd, char *buf, int n);
extern trusted int send(int fd, char *buf, int n);
extern trusted int read_file(char *name, char *buf, int n);
extern trusted int read_file_secret(char *name, private char *buf, int n);
extern trusted int write_file(char *name, char *buf, int n);
extern trusted int file_size(char *name);
extern trusted void log_write(char *buf, int n);
extern trusted void print_str(char *s);
extern trusted void print_int(int x);
extern trusted void decrypt(char *src, private char *dst, int n);
extern trusted void encrypt(private char *src, char *dst, int n);
extern trusted void encrypt_log(private char *src, char *dst, int n);
extern trusted void read_passwd(char *uname, private char *pass, int n);
extern trusted int cmp_secret(private char *a, private char *b, int n);
extern trusted char *malloc_pub(int n);
extern trusted private char *malloc_priv(int n);
extern trusted void free_pub(char *p);
extern trusted void free_priv(private char *p);
extern trusted int hash64(private char *buf, int n);
extern trusted int declassify_int(private int x);
extern trusted int thread_create(int fn, int arg);
extern trusted int thread_join(int tid);
extern trusted int clock_cycles();
extern trusted int rand_int(int bound);
extern trusted int ssl_recv(int fd, private char *buf, int n);
extern trusted int ssl_send(int fd, private char *buf, int n);
extern trusted int serve_file(private char *name, private char *buf, int n);
extern trusted void u_qsort(int *arr, int n, int (*cmp)(int, int));
extern trusted int u_fold(int *arr, int n, int (*f)(int, int), int seed);
"""

# Fixed cost of an I/O-class T call (syscall + kernel path); dominates
# tiny requests, which is why Figure 6's overhead is *low* at 0 KB.
_IO_BASE_COST = 420
_BYTES_PER_CYCLE = 8


class PauseForRequest(Exception):
    """Control-flow signal used by the serving tier: a ``recv`` found
    fewer bytes than requested while a ``recv_gate`` was armed.

    Raised *before* the call charges cycles or consumes input, while
    the thread's pc still points at the T stub's ``JmpInd`` — resuming
    the machine deterministically replays the indirect jump, the
    wrapper entry, and the recv, so a parked machine can be restored
    and re-driven one request at a time.  Not a ``MachineFault``: it
    never counts as a fault and carries no accounting.
    """

    def __init__(self, fd: int, wanted: int, available: int):
        super().__init__(
            f"recv on fd {fd} wants {wanted} bytes, {available} available"
        )
        self.fd = fd
        self.wanted = wanted
        self.available = available


class Channel:
    """A bidirectional byte channel (the simulated socket)."""

    def __init__(self) -> None:
        self.inbox = bytearray()
        self.outbox = bytearray()

    def feed(self, data: bytes) -> None:
        self.inbox += data

    def take(self, n: int) -> bytes:
        data = bytes(self.inbox[:n])
        del self.inbox[:n]
        return data

    def drain_out(self) -> bytes:
        data = bytes(self.outbox)
        self.outbox.clear()
        return data


def _keystream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.blake2b(
            key + counter.to_bytes(8, "little"), digest_size=32
        ).digest()
        counter += 1
    return bytes(out[:length])


class TContext:
    """Per-call context handed to T implementations."""

    def __init__(self, runtime, machine, thread, sig):
        self.runtime = runtime
        self.machine = machine
        self.thread = thread
        self.sig = sig

    # -- arguments -------------------------------------------------------

    def arg(self, index: int) -> int:
        return self.thread.regs[regs.ARG_REGS[index]]

    # -- checks (the wrapper's step (a)) ----------------------------------

    def check_range(self, ptr: int, size: int, private: bool) -> None:
        if size <= 0:
            return
        layout = self.machine.layout
        if layout.private is None:
            region = layout.public  # unprotected configuration
        elif private and not self.machine.config.split_stacks:
            # Measurement-only configurations without the stack split
            # (OurMPX-Sep) keep private *stack* data on the public
            # stack; wrappers accept either U region there.
            if layout.public.contains(ptr, size) or layout.private.contains(
                ptr, size
            ):
                events.counter(
                    "runtime.range_checks", fn=self.sig.name, outcome="ok"
                ).inc()
                return
            region = layout.private
        else:
            region = layout.private if private else layout.public
        if not region.contains(ptr, size):
            events.counter(
                "runtime.range_checks", fn=self.sig.name, outcome="fault"
            ).inc()
            kind = "private" if private else "public"
            raise MachineFault(
                FAULT_WRAPPER,
                f"{self.sig.name}: argument [{ptr:#x},+{size}) not in U's "
                f"{kind} region",
                addr=ptr,
            )
        events.counter(
            "runtime.range_checks", fn=self.sig.name, outcome="ok"
        ).inc()

    # -- memory ----------------------------------------------------------

    def read(self, ptr: int, size: int, private: bool) -> bytes:
        self.check_range(ptr, size, private)
        self.charge(size // _BYTES_PER_CYCLE)
        return self.machine.mem.read_bytes(ptr, size)

    def write(self, ptr: int, data: bytes, private: bool) -> None:
        self.check_range(ptr, len(data), private)
        self.charge(len(data) // _BYTES_PER_CYCLE)
        self.machine.mem.write_bytes(ptr, data)

    def cstring(self, ptr: int, private: bool = False, limit: int = 4096) -> bytes:
        out = bytearray()
        cursor = ptr
        while len(out) < limit:
            self.check_range(cursor, 1, private)
            byte = self.machine.mem.read_int(cursor, 1)
            if byte == 0:
                break
            out.append(byte)
            cursor += 1
        self.charge(len(out) // _BYTES_PER_CYCLE)
        return bytes(out)

    def charge(self, cycles: int) -> None:
        self.machine.charge(self.thread, cycles)

    # -- callbacks into U (§8) --------------------------------------------

    def call_u(self, fn_ptr: int, args: list[int],
               expected_bits: int | None = None) -> int:
        """Synchronously invoke a U function from T.

        Follows the paper's callback design: T checks the target's
        entry magic (and taint bits) like an indirect call would, plants
        the fixed return thunk ``__tret0`` as the return address, and
        runs U until its CFI return lands there.
        """
        machine = self.machine
        thread = self.thread
        config = machine.config
        cfi = config.cfi and not config.shadow_stack
        if not (CODE_BASE <= fn_ptr < CODE_BASE + len(machine.code)):
            raise MachineFault(
                FAULT_WRAPPER, f"{self.sig.name}: callback outside code"
            )
        if cfi and expected_bits is not None:
            word = machine.read_code_word(fn_ptr)
            expected = ((machine.binary.mcall_prefix << 5) | expected_bits)
            if word != expected & MASK64:
                raise MachineFault(
                    FAULT_CFI,
                    f"{self.sig.name}: callback target lacks the expected "
                    "entry magic",
                    addr=fn_ptr,
                )
        thunk = machine.binary.label_addrs["__tret0"]
        saved_pc = thread.pc
        saved_regs = list(thread.regs)
        for i, value in enumerate(args[:4]):
            thread.regs[regs.ARG_REGS[i]] = value & MASK64
        retaddr = CODE_BASE + thunk - (1 if cfi else 0)
        rsp = (thread.regs[regs.RSP] - 8) & MASK64
        thread.regs[regs.RSP] = rsp
        machine.mem.write_int(rsp, 8, retaddr)
        thread.pc = fn_ptr - CODE_BASE
        self.charge(costs.T_SWITCH_COST if config.separate_tu
                    else costs.T_PLAIN_CALL_COST)
        steps = 0
        while thread.pc != thunk:
            machine._step(thread)
            steps += 1
            if steps > 50_000_000:  # pragma: no cover - runaway guard
                raise MachineFault(FAULT_WRAPPER, "callback did not return")
        result = thread.regs[regs.RAX]
        thread.regs = saved_regs
        thread.pc = saved_pc
        return result


class RuntimeState:
    """Frozen image of a TrustedRuntime's program-visible state."""

    __slots__ = (
        "channels", "files", "passwords", "session_key", "log_key",
        "stdout", "log", "rng_state", "pub_alloc", "priv_alloc",
        "priv_alias",
    )

    def __init__(self, *, channels, files, passwords, session_key,
                 log_key, stdout, log, rng_state, pub_alloc, priv_alloc,
                 priv_alias):
        self.channels = channels
        self.files = files
        self.passwords = passwords
        self.session_key = session_key
        self.log_key = log_key
        self.stdout = stdout
        self.log = log
        self.rng_state = rng_state
        self.pub_alloc = pub_alloc
        self.priv_alloc = priv_alloc
        self.priv_alias = priv_alias


class TrustedRuntime:
    """State shared by all T functions of one process."""

    def __init__(self, seed: int = 7):
        self.channels: dict[int, Channel] = {}
        self.files: dict[bytes, bytes] = {}
        self.passwords: dict[bytes, bytes] = {}
        self.session_key = b"session-key-0001"
        self.log_key = b"log-key-00000001"
        self.stdout: list[str] = []
        self.log = bytearray()
        self.rng = random.Random(seed)
        # Attached by the loader:
        self.machine = None
        self.pub_alloc: RegionAllocator | NativeAllocator | None = None
        self.priv_alloc: RegionAllocator | NativeAllocator | None = None
        # Serving-tier hook: when set, ``recv`` calls
        # ``recv_gate(runtime, fd, n)`` first and raise
        # ``PauseForRequest`` when it returns True (host configuration,
        # not program state — snapshot/restore leave it alone).
        self.recv_gate = None

    # -- host-side conveniences (test harnesses use these) ----------------

    def channel(self, fd: int) -> Channel:
        return self.channels.setdefault(fd, Channel())

    def add_file(self, name: str | bytes, data: bytes) -> None:
        key = name.encode() if isinstance(name, str) else name
        self.files[key] = data

    def set_password(self, uname: str | bytes, password: bytes) -> None:
        key = uname.encode() if isinstance(uname, str) else uname
        self.passwords[key] = password

    def encrypt_with(self, key: bytes, data: bytes) -> bytes:
        return bytes(a ^ b for a, b in zip(data, _keystream(key, len(data))))

    # -- snapshot / restore ----------------------------------------------

    def snapshot_state(self) -> "RuntimeState":
        """Freeze all T-side program state (channels, files, secrets,
        log, RNG, allocators).  ``machine`` and ``recv_gate`` are host
        wiring, not program state, and are excluded."""
        priv_alias = self.priv_alloc is self.pub_alloc
        return RuntimeState(
            channels={
                fd: (bytes(ch.inbox), bytes(ch.outbox))
                for fd, ch in self.channels.items()
            },
            files=dict(self.files),
            passwords=dict(self.passwords),
            session_key=self.session_key,
            log_key=self.log_key,
            stdout=tuple(self.stdout),
            log=bytes(self.log),
            rng_state=self.rng.getstate(),
            pub_alloc=(
                None if self.pub_alloc is None
                else self.pub_alloc.snapshot_state()
            ),
            priv_alloc=(
                None if priv_alias or self.priv_alloc is None
                else self.priv_alloc.snapshot_state()
            ),
            priv_alias=priv_alias,
        )

    def restore_state(self, state: "RuntimeState") -> None:
        """Rewind to ``state`` in place.  Channel objects are kept (and
        mutated) where possible so host references stay valid."""
        for fd in list(self.channels):
            if fd not in state.channels:
                del self.channels[fd]
        for fd, (inbox, outbox) in state.channels.items():
            ch = self.channels.setdefault(fd, Channel())
            ch.inbox[:] = inbox
            ch.outbox[:] = outbox
        self.files.clear()
        self.files.update(state.files)
        self.passwords.clear()
        self.passwords.update(state.passwords)
        self.session_key = state.session_key
        self.log_key = state.log_key
        self.stdout[:] = state.stdout
        self.log[:] = state.log
        self.rng.setstate(state.rng_state)
        self.pub_alloc = restore_allocator(self.pub_alloc, state.pub_alloc)
        if state.priv_alias:
            self.priv_alloc = self.pub_alloc
        else:
            self.priv_alloc = restore_allocator(
                self.priv_alloc, state.priv_alloc
            )

    # -- wrapper construction ---------------------------------------------

    def natives_for(self, binary) -> list:
        wrappers = []
        for sig in binary.imports:
            impl = _IMPLS.get(sig.name)
            if impl is None:
                raise MachineFault(
                    FAULT_WRAPPER, f"no trusted implementation for {sig.name!r}"
                )
            wrappers.append(self._make_wrapper(sig, impl, binary))
        return wrappers

    def _make_wrapper(self, sig, impl, binary):
        config = binary.config
        switch_cost = (
            costs.T_SWITCH_COST if config.separate_tu else costs.T_PLAIN_CALL_COST
        )
        cfi = config.cfi and not config.shadow_stack
        mret_prefix = binary.mret_prefix
        ret_bit = int(sig.ret_taint)
        expected_word = ((mret_prefix << 5) | ret_bit) & MASK64

        def wrapper(machine, thread, _sig=sig, _impl=impl):
            registry = events.active()
            entry_cycles = (
                machine.core_cycles[thread.core] if registry is not None else 0
            )
            machine.charge(thread, switch_cost)
            ctx = TContext(self, machine, thread, _sig)
            result = _impl(ctx)
            if result is _RETRY:
                # Spin: leave pc at the stub's JmpInd so the call re-runs.
                return
            if registry is not None:
                registry.counter("runtime.t_calls", fn=_sig.name).inc()
                registry.add_span(
                    f"T.{_sig.name}",
                    ts=entry_cycles,
                    dur=machine.core_cycles[thread.core] - entry_cycles,
                    clock=events.CYCLES,
                    cat="runtime",
                    tid=thread.tid,
                )
            thread.regs[regs.RAX] = (result or 0) & MASK64
            # CFI-conformant return (wrapper step (e)).
            rsp = thread.regs[regs.RSP]
            retaddr = machine.mem.read_int(rsp, 8)
            thread.regs[regs.RSP] = (rsp + 8) & MASK64
            if cfi:
                word = machine.read_code_word(retaddr)
                if word != expected_word:
                    raise MachineFault(
                        FAULT_CFI,
                        f"T return: bad magic at return site of {_sig.name}",
                        addr=retaddr,
                    )
                thread.pc = retaddr - CODE_BASE + 1
            else:
                if not (CODE_BASE <= retaddr < CODE_BASE + len(machine.code)):
                    raise MachineFault(
                        FAULT_CFI, "T return outside code", addr=retaddr
                    )
                thread.pc = retaddr - CODE_BASE

        return wrapper


_RETRY = object()


# ---------------------------------------------------------------------------
# T function implementations


def _t_recv(ctx: TContext) -> int:
    fd, buf, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    gate = ctx.runtime.recv_gate
    if gate is not None and gate(ctx.runtime, fd, n):
        raise PauseForRequest(
            fd, n, len(ctx.runtime.channel(fd).inbox)
        )
    ctx.charge(_IO_BASE_COST)
    data = ctx.runtime.channel(fd).take(n)
    ctx.write(buf, data, private=False)
    return len(data)


def _t_send(ctx: TContext) -> int:
    fd, buf, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    ctx.charge(_IO_BASE_COST)
    data = ctx.read(buf, n, private=False)
    ctx.runtime.channel(fd).outbox += data
    return n


def _t_read_file(ctx: TContext, private: bool = False) -> int:
    name, buf, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    ctx.charge(_IO_BASE_COST)
    fname = ctx.cstring(name, private=False)
    data = ctx.runtime.files.get(fname)
    if data is None:
        return -1
    count = min(n, len(data))
    ctx.write(buf, data[:count], private=private)
    return count


def _t_read_file_secret(ctx: TContext) -> int:
    return _t_read_file(ctx, private=True)


def _t_write_file(ctx: TContext) -> int:
    name, buf, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    ctx.charge(_IO_BASE_COST)
    fname = ctx.cstring(name, private=False)
    ctx.runtime.files[fname] = ctx.read(buf, n, private=False)
    return n


def _t_file_size(ctx: TContext) -> int:
    fname = ctx.cstring(ctx.arg(0), private=False)
    data = ctx.runtime.files.get(fname)
    return -1 if data is None else len(data)


def _t_log_write(ctx: TContext) -> int:
    buf, n = ctx.arg(0), ctx.arg(1)
    ctx.runtime.log += ctx.read(buf, n, private=False)
    return 0


def _t_print_str(ctx: TContext) -> int:
    text = ctx.cstring(ctx.arg(0), private=False)
    ctx.runtime.stdout.append(text.decode("latin1"))
    return 0


def _t_print_int(ctx: TContext) -> int:
    from ..arith import signed

    ctx.runtime.stdout.append(str(signed(ctx.arg(0))))
    return 0


def _t_decrypt(ctx: TContext) -> int:
    src, dst, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    data = ctx.read(src, n, private=False)
    plain = ctx.runtime.encrypt_with(ctx.runtime.session_key, data)
    ctx.write(dst, plain, private=True)
    return 0


def _t_encrypt(ctx: TContext) -> int:
    src, dst, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    data = ctx.read(src, n, private=True)
    ctx.write(dst, ctx.runtime.encrypt_with(ctx.runtime.session_key, data),
              private=False)
    return 0


def _t_encrypt_log(ctx: TContext) -> int:
    src, dst, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    data = ctx.read(src, n, private=True)
    ctx.write(dst, ctx.runtime.encrypt_with(ctx.runtime.log_key, data),
              private=False)
    return 0


def _t_read_passwd(ctx: TContext) -> int:
    uname, dst, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    user = ctx.cstring(uname, private=False)
    password = ctx.runtime.passwords.get(user, b"")
    padded = password[:n].ljust(n, b"\x00")
    ctx.write(dst, padded, private=True)
    return len(password)


def _t_cmp_secret(ctx: TContext) -> int:
    a, b, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    da = ctx.read(a, n, private=True)
    db = ctx.read(b, n, private=True)
    # Declassifies one bit: equality.  Guarded-access point of §8.
    return 0 if da == db else 1


def _t_malloc_pub(ctx: TContext) -> int:
    ctx.charge(ctx.runtime.pub_alloc.op_cost)
    return ctx.runtime.pub_alloc.malloc(ctx.arg(0))


def _t_malloc_priv(ctx: TContext) -> int:
    alloc = ctx.runtime.priv_alloc or ctx.runtime.pub_alloc
    ctx.charge(alloc.op_cost)
    return alloc.malloc(ctx.arg(0))


def _t_free_pub(ctx: TContext) -> int:
    ctx.charge(ctx.runtime.pub_alloc.op_cost)
    ctx.runtime.pub_alloc.free(ctx.arg(0))
    return 0


def _t_free_priv(ctx: TContext) -> int:
    alloc = ctx.runtime.priv_alloc or ctx.runtime.pub_alloc
    ctx.charge(alloc.op_cost)
    alloc.free(ctx.arg(0))
    return 0


def _t_hash64(ctx: TContext) -> int:
    buf, n = ctx.arg(0), ctx.arg(1)
    data = ctx.read(buf, n, private=True)
    ctx.charge(n // 4)  # hashing is slower than copying
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _t_declassify_int(ctx: TContext) -> int:
    return ctx.arg(0)


def _t_thread_create(ctx: TContext) -> int:
    fn_ptr, arg = ctx.arg(0), ctx.arg(1)
    machine = ctx.machine
    if not (CODE_BASE <= fn_ptr < CODE_BASE + len(machine.code)):
        raise MachineFault(FAULT_WRAPPER, "thread entry outside code")
    thread = machine.spawn(fn_ptr - CODE_BASE)
    thread.regs[regs.RCX] = arg
    # The new thread becomes runnable at the moment of the spawn.
    thread.ready_time = machine.core_cycles[ctx.thread.core]
    # Plant the thread-exit thunk as the return address (pointing at
    # its MRet magic word so the CFI return check succeeds).  The thunk
    # must carry the entry function's return-taint bit, which under CFI
    # can be read off the entry magic word.
    cfi = ctx.machine.config.cfi and not ctx.machine.config.shadow_stack
    ret_bit = 0
    if cfi:
        entry_word = machine.read_code_word(fn_ptr)
        ret_bit = (entry_word >> 4) & 1
    exit_label = machine.binary.label_addrs[f"__texit{ret_bit}"]
    retaddr = CODE_BASE + exit_label - (1 if cfi else 0)
    rsp = (thread.regs[regs.RSP] - 8) & MASK64
    thread.regs[regs.RSP] = rsp
    machine.mem.write_int(rsp, 8, retaddr)
    ctx.charge(400)  # thread creation is expensive
    return thread.tid


def _t_thread_join(ctx: TContext):
    tid = ctx.arg(0)
    machine = ctx.machine
    for thread in machine.threads:
        if thread.tid == tid and thread.alive:
            # Block: the scheduler parks this thread (no cycles) until
            # the target dies, then the stub's JmpInd re-dispatches and
            # this wrapper returns 0.
            ctx.thread.waiting_on = tid
            return _RETRY
    return 0


def _t_ssl_recv(ctx: TContext) -> int:
    """SSL_recv of §7.2: decrypt the incoming payload with the session
    key and hand it to U in a *private* buffer."""
    fd, buf, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    ctx.charge(_IO_BASE_COST)
    wire = ctx.runtime.channel(fd).take(n)
    plain = ctx.runtime.encrypt_with(ctx.runtime.session_key, wire)
    ctx.charge(len(plain) // 4)  # crypto
    ctx.write(buf, plain, private=True)
    return len(plain)


def _t_ssl_send(ctx: TContext) -> int:
    fd, buf, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    ctx.charge(_IO_BASE_COST)
    plain = ctx.read(buf, n, private=True)
    ctx.charge(n // 4)  # crypto
    ctx.runtime.channel(fd).outbox += ctx.runtime.encrypt_with(
        ctx.runtime.session_key, plain
    )
    return n


def _t_serve_file(ctx: TContext) -> int:
    """Read a file whose *name is private* (the request URI is private
    in the NGINX deployment) into a private buffer."""
    name, buf, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    ctx.charge(_IO_BASE_COST)
    fname = ctx.cstring(name, private=True)
    data = ctx.runtime.files.get(fname)
    if data is None:
        return -1
    count = min(n, len(data))
    ctx.write(buf, data[:count], private=True)
    return count


# Entry taint bits for a callback int(*)(int,int): two public args,
# two unused (conservatively private) arg registers, public return.
_CMP_CALLBACK_BITS = (1 << 2) | (1 << 3)


def _t_u_qsort(ctx: TContext) -> int:
    """qsort over a public int array with a U-supplied comparator —
    the §8 callback pattern."""
    arr, n, cmp_ptr = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    from ..arith import signed

    values = [
        ctx.machine.mem.read_int(a, 8)
        for a in range(arr, arr + 8 * n, 8)
    ]
    ctx.check_range(arr, 8 * max(n, 1), private=False)
    # Insertion sort so the comparator call count is deterministic.
    for i in range(1, n):
        j = i
        while j > 0:
            verdict = ctx.call_u(
                cmp_ptr, [values[j - 1], values[j]], _CMP_CALLBACK_BITS
            )
            if signed(verdict) <= 0:
                break
            values[j - 1], values[j] = values[j], values[j - 1]
            j -= 1
    for index, value in enumerate(values):
        ctx.machine.mem.write_int(arr + 8 * index, 8, value)
    ctx.charge(n * 4)
    return 0


def _t_u_fold(ctx: TContext) -> int:
    """Fold a U function over a public int array."""
    arr, n, fn_ptr, seed = ctx.arg(0), ctx.arg(1), ctx.arg(2), ctx.arg(3)
    ctx.check_range(arr, 8 * max(n, 1), private=False)
    acc = seed
    for offset in range(0, 8 * n, 8):
        value = ctx.machine.mem.read_int(arr + offset, 8)
        acc = ctx.call_u(fn_ptr, [acc, value], _CMP_CALLBACK_BITS)
    return acc


def _t_clock_cycles(ctx: TContext) -> int:
    return ctx.machine.wall_cycles


def _t_rand_int(ctx: TContext) -> int:
    bound = ctx.arg(0)
    if bound <= 0:
        return 0
    return ctx.runtime.rng.randrange(bound)


_IMPLS = {
    "recv": _t_recv,
    "send": _t_send,
    "read_file": _t_read_file,
    "read_file_secret": _t_read_file_secret,
    "write_file": _t_write_file,
    "file_size": _t_file_size,
    "log_write": _t_log_write,
    "print_str": _t_print_str,
    "print_int": _t_print_int,
    "decrypt": _t_decrypt,
    "encrypt": _t_encrypt,
    "encrypt_log": _t_encrypt_log,
    "read_passwd": _t_read_passwd,
    "cmp_secret": _t_cmp_secret,
    "malloc_pub": _t_malloc_pub,
    "malloc_priv": _t_malloc_priv,
    "free_pub": _t_free_pub,
    "free_priv": _t_free_priv,
    "hash64": _t_hash64,
    "declassify_int": _t_declassify_int,
    "thread_create": _t_thread_create,
    "thread_join": _t_thread_join,
    "clock_cycles": _t_clock_cycles,
    "rand_int": _t_rand_int,
    "ssl_recv": _t_ssl_recv,
    "ssl_send": _t_ssl_send,
    "serve_file": _t_serve_file,
    "u_qsort": _t_u_qsort,
    "u_fold": _t_u_fold,
}

TRUSTED_FUNCTION_NAMES = frozenset(_IMPLS)
