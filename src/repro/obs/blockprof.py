"""Basic-block profiling and per-site check-overhead attribution.

Where :mod:`repro.machine.profile` answers "which *function* are the
cycles in?", this module answers the two questions the paper's
evaluation actually turns on:

* **which basic block** do cycles, instructions, and L1 cache misses
  land on, and along which control-flow edges does execution travel
  (Fig. 7's observation that ~70% of Privado's time is one tight
  loop); and
* **which inserted check** costs what — every executed ``bnd`` / CFI /
  magic-word / stack-probe / shadow-stack site is charged its exact
  simulated cycle cost, rolled up per category into the Fig. 5-8-style
  overhead decomposition the ``report`` CLI subcommand renders.

Blocks are the intervals between consecutive labels in the linked
binary's ``label_addrs`` — every branch target carries a label, so
label-delimited intervals are exactly the leader-delimited basic
blocks of the final code.  The profiler attaches through
``Machine.add_step_hook`` (the supported observation API), which makes
attribution engine-independent: the predecoded and reference engines
report identical streams, pinned by a differential test.

Zero-cost when off: nothing here runs unless a profiler is attached,
and attaching one never changes emitted code or simulated cycles.

Usage::

    process = compile_and_load(src, OUR_MPX)
    prof = attach_block_profiler(process.machine)
    process.run()
    for row in prof.report(top=5):
        print(row.name, row.cycles, row.cache_misses)
    print(prof.check_summary())
    write_flamegraph(prof, "out.folded")
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..backend.isa import CHECK_CATEGORIES, check_kind

#: Deterministic sampling stride for counter tracks: one sample per
#: this many retired instructions.  Keyed on instruction counts (not
#: host time), so the sampled trajectory is identical across engines.
SAMPLE_STRIDE = 1024


@dataclass
class BlockRow:
    """One basic block's attribution totals."""

    name: str
    func: str
    start: int
    cycles: int
    instructions: int
    cache_misses: int
    cycle_share: float


@dataclass
class CheckSiteRow:
    """One executed check site's exact cost."""

    addr: int
    category: str
    block: str
    func: str
    count: int
    cycles: int


class BlockProfiler:
    """Attributes execution to basic blocks, edges, and check sites."""

    def __init__(self, machine):
        binary = machine.binary
        self._machine = machine
        # One anchor per address: every label is a block leader.  When
        # a function label and a block label share an address, keep the
        # lexicographically-first name (deterministic either way).
        anchors: dict[int, str] = {}
        for name, addr in sorted(binary.label_addrs.items()):
            anchors.setdefault(addr, name)
        starts = sorted(anchors)
        self._starts = starts
        self._names = [anchors[a] for a in starts]
        # Function anchors: labels without a dot, plus T-import stubs.
        fn_anchors: dict[int, str] = {}
        for name, addr in sorted(binary.label_addrs.items()):
            if "." not in name or name.startswith("stub."):
                fn_anchors.setdefault(addr, name)
        self._fn_starts = sorted(fn_anchors)
        self._fn_names = [fn_anchors[a] for a in self._fn_starts]

        self.cycles: dict[str, int] = {}
        self.instructions: dict[str, int] = {}
        self.cache_misses: dict[str, int] = {}
        self.block_start: dict[str, int] = {}
        self.edges: dict[tuple[str, str], int] = {}
        # pc -> [category, count, cycles]
        self.sites: dict[int, list] = {}
        self._last_block: dict[int, str] = {}
        self._steps = 0
        # Deterministic counter-track samples: (instruction index,
        # core-cycle timestamp, {track: cumulative value}).
        self.samples: list[tuple[int, int, dict]] = []

    # -- symbolization ---------------------------------------------------

    def symbolize(self, pc: int) -> str:
        index = bisect.bisect_right(self._starts, pc) - 1
        if index < 0:
            return "<prelude>"
        return self._names[index]

    def func_of(self, pc: int) -> str:
        index = bisect.bisect_right(self._fn_starts, pc) - 1
        if index < 0:
            return "<prelude>"
        return self._fn_names[index]

    # -- the step hook ---------------------------------------------------

    def on_step(self, thread, pc: int, insn, cycles: int) -> None:
        """Machine step-hook entry point (see ``Machine.add_step_hook``)."""
        name = self.symbolize(pc)
        self.cycles[name] = self.cycles.get(name, 0) + cycles
        self.instructions[name] = self.instructions.get(name, 0) + 1
        misses = self._machine.hook_cache_misses
        if misses:
            self.cache_misses[name] = self.cache_misses.get(name, 0) + misses
        if name not in self.block_start:
            index = bisect.bisect_right(self._starts, pc) - 1
            self.block_start[name] = self._starts[index] if index >= 0 else 0
        last = self._last_block.get(thread.tid)
        if last != name:
            if last is not None:
                edge = (last, name)
                self.edges[edge] = self.edges.get(edge, 0) + 1
            self._last_block[thread.tid] = name
        kind = check_kind(insn)
        if kind is not None:
            site = self.sites.get(pc)
            if site is None:
                site = self.sites[pc] = [kind, 0, 0]
            site[1] += 1
            site[2] += cycles
        self._steps += 1
        if self._steps % SAMPLE_STRIDE == 0:
            self._sample(thread)

    def _sample(self, thread) -> None:
        summary = self.check_summary()
        values = {
            f"blockprof.check_cycles.{cat}": summary[cat]["cycles"]
            for cat in CHECK_CATEGORIES
        }
        values["blockprof.cache_misses"] = sum(
            self.cache_misses.values()
        )
        ts = self._machine.core_cycles[thread.core]
        self.samples.append((self._steps, ts, values))

    # -- reports ---------------------------------------------------------

    def report(self, top: int | None = None) -> list[BlockRow]:
        """Per-block rows, cycles-descending with name tie-break."""
        total = sum(self.cycles.values()) or 1
        rows = [
            BlockRow(
                name=name,
                func=self.func_of(self.block_start[name]),
                start=self.block_start[name],
                cycles=cycles,
                instructions=self.instructions.get(name, 0),
                cache_misses=self.cache_misses.get(name, 0),
                cycle_share=cycles / total,
            )
            for name, cycles in self.cycles.items()
        ]
        rows.sort(key=lambda r: (-r.cycles, r.name))
        return rows[:top] if top else rows

    def edge_report(
        self, top: int | None = None
    ) -> list[tuple[str, str, int]]:
        """(src, dst, count) control-flow edges, count-descending."""
        rows = [(src, dst, n) for (src, dst), n in self.edges.items()]
        rows.sort(key=lambda r: (-r[2], r[0], r[1]))
        return rows[:top] if top else rows

    def check_sites(self) -> list[CheckSiteRow]:
        """Every executed check site with its exact cycle cost."""
        rows = [
            CheckSiteRow(
                addr=addr,
                category=cat,
                block=self.symbolize(addr),
                func=self.func_of(addr),
                count=count,
                cycles=cycles,
            )
            for addr, (cat, count, cycles) in self.sites.items()
        ]
        rows.sort(key=lambda r: (-r.cycles, r.addr))
        return rows

    def check_summary(self) -> dict[str, dict]:
        """Per-category totals; every category is present (zeros kept),
        so decompositions never silently drop an axis."""
        summary = {
            cat: {"count": 0, "cycles": 0} for cat in CHECK_CATEGORIES
        }
        for _addr, (cat, count, cycles) in sorted(self.sites.items()):
            summary[cat]["count"] += count
            summary[cat]["cycles"] += cycles
        return summary

    # -- exporters -------------------------------------------------------

    def flamegraph_lines(self) -> list[str]:
        """Collapsed-stack lines (``func;block cycles``) for flamegraph
        tooling.  The function-entry block collapses onto the function
        frame itself; lines are sorted for byte-stable output."""
        folded: dict[str, int] = {}
        for row in self.report():
            frame = (
                row.func
                if row.name == row.func
                else f"{row.func};{row.name}"
            )
            folded[frame] = folded.get(frame, 0) + row.cycles
        return [f"{frame} {value}" for frame, value in sorted(folded.items())]

    def publish(self, registry) -> None:
        """Fold the profile into an obs registry: roll-up counters plus
        Perfetto counter-track samples on the cycle clock."""
        summary = self.check_summary()
        for cat in CHECK_CATEGORIES:
            registry.counter("blockprof.check_cycles", kind=cat).inc(
                summary[cat]["cycles"]
            )
            registry.counter("blockprof.check_count", kind=cat).inc(
                summary[cat]["count"]
            )
        registry.counter("blockprof.blocks").inc(len(self.cycles))
        registry.counter("blockprof.edges").inc(len(self.edges))
        samples = list(self.samples)
        # Close the trajectory with the final totals so short runs
        # (under one stride) still draw a track.
        final = {
            f"blockprof.check_cycles.{cat}": summary[cat]["cycles"]
            for cat in CHECK_CATEGORIES
        }
        final["blockprof.cache_misses"] = sum(self.cache_misses.values())
        wall = max(self._machine.core_cycles) if self._machine.core_cycles else 0
        samples.append((self._steps, wall, final))
        for _steps, ts, values in samples:
            for track, value in sorted(values.items()):
                registry.add_counter_sample(track, ts, value)


def attach_block_profiler(machine) -> BlockProfiler:
    """Attach a fresh block profiler via the machine's step-hook API."""
    profiler = BlockProfiler(machine)
    machine.add_step_hook(profiler.on_step)
    return profiler


def detach_block_profiler(machine, profiler: BlockProfiler) -> None:
    """Stop a profiler attached with :func:`attach_block_profiler`."""
    machine.remove_step_hook(profiler.on_step)


def write_flamegraph(profiler: BlockProfiler, path: str) -> None:
    """Write the collapsed-stack profile to ``path`` (one frame per
    line, ``flamegraph.pl``/speedscope-compatible)."""
    with open(path, "w") as handle:
        for line in profiler.flamegraph_lines():
            handle.write(line + "\n")
