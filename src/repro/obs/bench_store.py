"""Schema-versioned benchmark trajectory files and regression diffing.

``bench --json --store FILE`` appends one *record* per run to a
``BENCH_*.json`` trajectory file; ``bench diff OLD NEW`` compares the
latest record of two trajectories (or single-record files) with
per-metric tolerance thresholds and exits nonzero on regression, so
speed claims are enforced by ``scripts/smoke.sh`` instead of asserted
in prose.

File format (``schema`` 1)::

    {"schema": 1, "kind": "bench-trajectory", "records": [record, ...]}

Each record::

    {"schema": 1, "name": "quickstart", "seed": 1,
     "engine": "predecoded", "cache": "off",
     "benchmarks": [
        {"name": "quickstart/Base", "config": "Base", "cycles": 12345,
         "instructions": 6789, "checks": {"bnd": 0, ...},
         "wall_time_s": 0.04},
        ...]}

Simulated ``cycles``/``instructions``/``checks`` are deterministic and
gated; ``wall_time_s`` is host timing, recorded for trend-watching and
only gated when an explicit tolerance is supplied.

This module is deliberately free of compiler imports (pure data), so
``repro.obs`` can re-export it without import cycles.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..errors import ReproError

SCHEMA_VERSION = 1
KIND = "bench-trajectory"

#: Default relative tolerances per gated metric.  ``None`` means the
#: metric is informational (reported, never gated).
DEFAULT_TOLERANCES = {
    "cycles": 0.02,
    "instructions": 0.02,
    "wall_time_s": None,
}


def make_record(
    name: str,
    seed: int | None,
    engine: str,
    cache: str,
    benchmarks: list[dict],
) -> dict:
    """Assemble one schema-versioned trajectory record."""
    return {
        "schema": SCHEMA_VERSION,
        "name": name,
        "seed": seed,
        "engine": engine,
        "cache": cache,
        "benchmarks": list(benchmarks),
    }


def make_benchmark(
    name: str,
    config: str,
    cycles: int,
    instructions: int,
    checks: dict,
    wall_time_s: float,
) -> dict:
    """One per-benchmark entry of a record."""
    return {
        "name": name,
        "config": config,
        "cycles": cycles,
        "instructions": instructions,
        "checks": dict(checks),
        "wall_time_s": round(wall_time_s, 6),
    }


def load_trajectory(path: str) -> dict:
    """Read a trajectory file; friendly :class:`ReproError` on corrupt
    or wrong-kind input (missing files surface as ``OSError``, which
    the CLI renders the same way)."""
    with open(path) as handle:
        text = handle.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(f"{path}: not valid JSON ({error})") from error
    if not isinstance(doc, dict) or doc.get("kind") != KIND:
        raise ReproError(
            f"{path}: not a bench trajectory file "
            f"(expected kind={KIND!r})"
        )
    if doc.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"{path}: unsupported trajectory schema {doc.get('schema')!r} "
            f"(this toolchain writes v{SCHEMA_VERSION})"
        )
    if not isinstance(doc.get("records"), list):
        raise ReproError(f"{path}: trajectory has no records list")
    return doc


def append_record(path: str, record: dict) -> int:
    """Append ``record`` to the trajectory at ``path`` (created on
    first use); returns the total record count."""
    if os.path.exists(path):
        doc = load_trajectory(path)
    else:
        doc = {"schema": SCHEMA_VERSION, "kind": KIND, "records": []}
    doc["records"].append(record)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(doc["records"])


def latest_record(path: str, name: str | None = None) -> dict:
    """The newest record in a trajectory (optionally filtered by suite
    name)."""
    doc = load_trajectory(path)
    records = doc["records"]
    if name is not None:
        records = [r for r in records if r.get("name") == name]
    if not records:
        raise ReproError(
            f"{path}: no matching records"
            + (f" for suite {name!r}" if name else "")
        )
    return records[-1]


# ---------------------------------------------------------------------------
# Diffing.


@dataclass
class DiffRow:
    """One compared metric of one benchmark."""

    benchmark: str
    metric: str
    old: float
    new: float
    tolerance: float | None
    regressed: bool

    @property
    def delta_pct(self) -> float:
        if not self.old:
            return 0.0 if not self.new else float("inf")
        return 100.0 * (self.new - self.old) / self.old


@dataclass
class DiffResult:
    rows: list[DiffRow] = field(default_factory=list)
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_records(
    old: dict, new: dict, tolerances: dict | None = None
) -> DiffResult:
    """Compare two records benchmark-by-benchmark.

    A metric *regresses* when ``new > old * (1 + tolerance)``;
    improvements never fail the gate.  Benchmarks present in only one
    record are reported but do not gate (a trajectory may grow).
    """
    tols = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tols.update(tolerances)
    old_by_name = {b["name"]: b for b in old.get("benchmarks", [])}
    new_by_name = {b["name"]: b for b in new.get("benchmarks", [])}
    result = DiffResult(
        only_old=sorted(set(old_by_name) - set(new_by_name)),
        only_new=sorted(set(new_by_name) - set(old_by_name)),
    )
    shared = sorted(set(old_by_name) & set(new_by_name))
    if not shared and (old_by_name or new_by_name):
        raise ReproError(
            "bench diff: the two records share no benchmark names "
            f"({old.get('name')!r} vs {new.get('name')!r})"
        )
    for name in shared:
        before, after = old_by_name[name], new_by_name[name]
        for metric in ("cycles", "instructions", "wall_time_s"):
            if metric not in before or metric not in after:
                continue
            tol = tols.get(metric)
            o, n = before[metric], after[metric]
            regressed = tol is not None and n > o * (1.0 + tol)
            result.rows.append(
                DiffRow(
                    benchmark=name,
                    metric=metric,
                    old=o,
                    new=n,
                    tolerance=tol,
                    regressed=regressed,
                )
            )
    return result


def render_diff(result: DiffResult) -> str:
    """Human-readable diff summary (regressions first)."""
    lines = []
    for row in sorted(
        result.rows, key=lambda r: (not r.regressed, r.benchmark, r.metric)
    ):
        if row.metric == "wall_time_s" and not row.regressed:
            continue  # host-timing noise: only show when gated+failing
        mark = "REGRESSION" if row.regressed else "ok"
        tol = (
            f" (tol {row.tolerance:.1%})" if row.tolerance is not None else ""
        )
        lines.append(
            f"{mark:>10}  {row.benchmark:<28} {row.metric:<12} "
            f"{row.old:>14,.6g} -> {row.new:>14,.6g}  "
            f"{row.delta_pct:+.2f}%{tol}"
        )
    for name in result.only_old:
        lines.append(f"{'dropped':>10}  {name}")
    for name in result.only_new:
        lines.append(f"{'new':>10}  {name}")
    n_reg = len(result.regressions)
    lines.append(
        f"bench diff: {n_reg} regression(s) across "
        f"{len({r.benchmark for r in result.rows})} shared benchmark(s)"
    )
    return "\n".join(lines)
