"""Chrome-trace/Perfetto export of recorded spans and counter tracks.

Spans live on two clocks, mapped to two trace "processes" so Perfetto
renders them on separate tracks without unit confusion:

* pid 1 — the toolchain, WALL clock, real microseconds;
* pid 2 — the simulated machine, CYCLES clock, one simulated cycle
  rendered as one microsecond.

Every span becomes a complete-duration event (``"ph": "X"``) carrying
``name``/``cat``/``ts``/``dur``/``pid``/``tid``; registry counter
samples (e.g. the block profiler's per-category check-cycle
trajectories) become counter events (``"ph": "C"``); process-name
metadata events (``"ph": "M"``) label the two tracks.  Events are
emitted in a fully deterministic order — metadata first, then
everything else sorted by ``(pid, tid, ts, ...)`` — so two identical
runs serialize byte-identically.  Open the output at
https://ui.perfetto.dev or chrome://tracing.
"""

from __future__ import annotations

import json

from .events import CounterSample, Registry, Span, WALL

PID_COMPILE = 1
PID_MACHINE = 2

_PROCESS_NAMES = {
    PID_COMPILE: "toolchain (wall-clock us)",
    PID_MACHINE: "machine (simulated cycles)",
}


def span_to_event(span: Span) -> dict:
    """Convert one span into a Chrome-trace complete event."""
    pid = PID_COMPILE if span.clock == WALL else PID_MACHINE
    args = dict(span.args)
    args["clock"] = span.clock
    if span.parent is not None:
        args["parent"] = span.parent
    return {
        "name": span.name,
        "cat": span.cat,
        "ph": "X",
        "ts": span.ts,
        "dur": span.dur,
        "pid": pid,
        "tid": span.tid,
        "args": args,
    }


def sample_to_event(sample: CounterSample) -> dict:
    """Convert one counter sample into a Chrome-trace counter event."""
    pid = PID_COMPILE if sample.clock == WALL else PID_MACHINE
    return {
        "name": sample.name,
        "cat": sample.cat,
        "ph": "C",
        "ts": sample.ts,
        "pid": pid,
        "tid": 0,
        "args": {"value": sample.value},
    }


def _event_key(event: dict) -> tuple:
    # Total, deterministic order: track first, then time; longer events
    # (parents) before shorter at the same timestamp; counters after
    # complete events at the same instant.
    return (
        event["pid"],
        event["tid"],
        event["ts"],
        0 if event["ph"] == "X" else 1,
        -event.get("dur", 0),
        event["name"],
    )


def to_chrome_trace(source: Registry | list[Span]) -> dict:
    """Build the Chrome-trace JSON object for a registry (or span list)."""
    if isinstance(source, Registry):
        spans = source.spans
        samples = source.counter_samples
    else:
        spans = list(source)
        samples = []
    events: list[dict] = [span_to_event(span) for span in spans]
    events.extend(sample_to_event(sample) for sample in samples)
    events.sort(key=_event_key)
    used_pids = {e["pid"] for e in events}
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": _PROCESS_NAMES[pid]},
        }
        for pid in sorted(used_pids or {PID_COMPILE})
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: Registry | list[Span], path: str) -> None:
    """Serialize :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(source), handle, indent=1)
