"""Chrome-trace/Perfetto export of recorded spans.

Spans live on two clocks, mapped to two trace "processes" so Perfetto
renders them on separate tracks without unit confusion:

* pid 1 — the toolchain, WALL clock, real microseconds;
* pid 2 — the simulated machine, CYCLES clock, one simulated cycle
  rendered as one microsecond.

Every span becomes a complete-duration event (``"ph": "X"``) carrying
``name``/``cat``/``ts``/``dur``/``pid``/``tid``; process-name metadata
events (``"ph": "M"``) label the two tracks.  Open the output at
https://ui.perfetto.dev or chrome://tracing.
"""

from __future__ import annotations

import json

from .events import Registry, Span, WALL

PID_COMPILE = 1
PID_MACHINE = 2

_PROCESS_NAMES = {
    PID_COMPILE: "toolchain (wall-clock us)",
    PID_MACHINE: "machine (simulated cycles)",
}


def span_to_event(span: Span) -> dict:
    """Convert one span into a Chrome-trace complete event."""
    pid = PID_COMPILE if span.clock == WALL else PID_MACHINE
    args = dict(span.args)
    args["clock"] = span.clock
    if span.parent is not None:
        args["parent"] = span.parent
    return {
        "name": span.name,
        "cat": span.cat,
        "ph": "X",
        "ts": span.ts,
        "dur": span.dur,
        "pid": pid,
        "tid": span.tid,
        "args": args,
    }


def to_chrome_trace(source: Registry | list[Span]) -> dict:
    """Build the Chrome-trace JSON object for a registry (or span list)."""
    spans = source.spans if isinstance(source, Registry) else list(source)
    events: list[dict] = []
    used_pids = {PID_COMPILE if s.clock == WALL else PID_MACHINE for s in spans}
    for pid in sorted(used_pids or {PID_COMPILE}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _PROCESS_NAMES[pid]},
            }
        )
    events.extend(span_to_event(span) for span in spans)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: Registry | list[Span], path: str) -> None:
    """Serialize :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(source), handle, indent=1)
