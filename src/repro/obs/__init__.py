"""``repro.obs`` — unified tracing, metrics, and profiling.

One measurement layer for the whole compile→verify→execute pipeline:

* :mod:`repro.obs.events` — the thread-safe :class:`Registry`, span
  context managers, activation (:func:`events.use` / ``activate``);
* :mod:`repro.obs.metrics` — labelled counters and histograms;
* :mod:`repro.obs.trace` — Chrome-trace/Perfetto JSON export (wall-time
  compiler spans + simulated-cycle machine spans + counter tracks);
* :mod:`repro.obs.export` — JSON and human-readable table renderers;
* :mod:`repro.obs.blockprof` — basic-block/edge profiling, per-site
  check-overhead attribution, flamegraph export;
* :mod:`repro.obs.bench_store` — ``BENCH_*.json`` benchmark
  trajectories and tolerance-gated regression diffs.

Observability is opt-in: while no registry is active every
instrumentation site is a null-object no-op, and activating one never
changes emitted code or simulated cycle counts.  See
docs/OBSERVABILITY.md for naming conventions and usage.
"""

from .blockprof import (
    BlockProfiler,
    attach_block_profiler,
    detach_block_profiler,
    write_flamegraph,
)
from .events import (
    CYCLES,
    WALL,
    CounterSample,
    Registry,
    Span,
    activate,
    active,
    counter,
    deactivate,
    histogram,
    span,
    use,
)
from .metrics import Counter, Histogram
from .trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "Registry",
    "Span",
    "CounterSample",
    "Counter",
    "Histogram",
    "WALL",
    "CYCLES",
    "active",
    "activate",
    "deactivate",
    "use",
    "span",
    "counter",
    "histogram",
    "to_chrome_trace",
    "write_chrome_trace",
    "BlockProfiler",
    "attach_block_profiler",
    "detach_block_profiler",
    "write_flamegraph",
]
