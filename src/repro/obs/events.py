"""Span/counter/histogram primitives and the in-process registry.

This is the core of ``repro.obs``: a thread-safe :class:`Registry` that
accumulates

* **spans** — named intervals on one of two clocks: host wall time
  (``WALL``, microseconds, for compiler/verifier stages) or simulated
  machine cycles (``CYCLES``, for execution-side events);
* **counters / histograms** — labelled aggregates (see
  :mod:`repro.obs.metrics`).

Observability is **opt-in and zero-cost when off**: every
instrumentation site in the toolchain goes through the module-level
helpers :func:`span`, :func:`counter` and :func:`histogram`, which
return inert null objects while no registry is active.  Activating a
registry never changes compilation output or simulated cycle counts —
only what gets *recorded*.

Typical use::

    from repro.obs import events, export

    registry = events.Registry()
    with events.use(registry):
        binary = compile_source(src, OUR_MPX, seed=1)
        process = load(binary); process.run()
    export.write_chrome_trace(registry, "out.json")
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .metrics import Counter, Histogram, label_items

WALL = "wall"  # host wall-clock, microseconds since registry creation
CYCLES = "cycles"  # simulated machine cycles


@dataclass
class Span:
    """A completed interval. ``ts``/``dur`` are µs (WALL) or cycles."""

    name: str
    ts: float
    dur: float
    clock: str = WALL
    cat: str = "compile"
    tid: int = 0
    depth: int = 0
    parent: str | None = None
    args: dict = field(default_factory=dict)


@dataclass
class CounterSample:
    """One point of a counter track (Perfetto ``"ph": "C"`` event).

    ``ts`` is on the simulated-cycle clock by default — profilers
    sample at deterministic instruction strides, so two engines emit
    identical tracks."""

    name: str
    ts: float
    value: float
    clock: str = CYCLES
    cat: str = "machine"


class _SpanHandle:
    """Context manager recording one WALL-clock span on exit."""

    __slots__ = ("_registry", "_name", "_cat", "_args", "_start", "_depth",
                 "_parent")

    def __init__(self, registry: "Registry", name: str, cat: str, args: dict):
        self._registry = registry
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_SpanHandle":
        self._depth, self._parent = self._registry._push(self._name)
        self._start = self._registry._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._registry._now_us()
        self._registry._pop()
        self._registry._record(
            Span(
                name=self._name,
                ts=self._start,
                dur=end - self._start,
                clock=WALL,
                cat=self._cat,
                tid=0,
                depth=self._depth,
                parent=self._parent,
                args=self._args,
            )
        )
        return False


class _NullSpan:
    """Inert stand-in returned when no registry is active."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullMetric:
    """Inert counter/histogram stand-in when no registry is active."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def observe(self, value) -> None:
        pass


NULL_SPAN = _NullSpan()
NULL_METRIC = _NullMetric()


class Registry:
    """Thread-safe accumulator of spans and metrics for one session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._counter_samples: list[CounterSample] = []
        self._counters: dict[tuple, Counter] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._epoch_ns = time.perf_counter_ns()
        self._tls = threading.local()

    # -- clocks / nesting --------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1000.0

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, name: str) -> tuple[int, str | None]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        return depth, parent

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- spans -------------------------------------------------------------

    def span(self, name: str, cat: str = "compile", **args) -> _SpanHandle:
        """Open a nested WALL-clock span (use as a context manager)."""
        return _SpanHandle(self, name, cat, args)

    def add_span(
        self,
        name: str,
        ts: float,
        dur: float,
        clock: str = CYCLES,
        cat: str = "machine",
        tid: int = 0,
        **args,
    ) -> None:
        """Record a pre-measured span (e.g. simulated-cycle intervals)."""
        self._record(
            Span(name=name, ts=float(ts), dur=float(dur), clock=clock,
                 cat=cat, tid=tid, args=args)
        )

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def add_counter_sample(
        self,
        name: str,
        ts: float,
        value: float,
        clock: str = CYCLES,
        cat: str = "machine",
    ) -> None:
        """Record one counter-track point (rendered as a Perfetto
        ``"C"`` event by the Chrome-trace exporter)."""
        sample = CounterSample(
            name=name, ts=float(ts), value=value, clock=clock, cat=cat
        )
        with self._lock:
            self._counter_samples.append(sample)

    @property
    def counter_samples(self) -> list[CounterSample]:
        with self._lock:
            return list(self._counter_samples)

    # -- metrics -----------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        items = label_items(labels)
        key = (name, items)
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter(name, items)
            return counter

    def histogram(self, name: str, **labels) -> Histogram:
        items = label_items(labels)
        key = (name, items)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(name, items)
            return hist

    def metrics_snapshot(self) -> dict:
        """Flattened, deterministically-ordered view of all metrics.

        Counters map ``name{labels}`` to their integer value; histograms
        map to a ``{count,total,min,max}`` summary dict.
        """
        with self._lock:
            counters = sorted(self._counters.values(), key=lambda c: c.key)
            hists = sorted(self._histograms.values(), key=lambda h: h.key)
        snapshot: dict = {}
        for counter in counters:
            snapshot[counter.key] = counter.value
        for hist in hists:
            snapshot[hist.key] = hist.summary()
        return snapshot


# ---------------------------------------------------------------------------
# Activation: one process-wide active registry (or none).

_active: Registry | None = None


def active() -> Registry | None:
    """The currently-active registry, or None when observability is off."""
    return _active


def activate(registry: Registry) -> Registry:
    """Make ``registry`` the process-wide active registry."""
    global _active
    _active = registry
    return registry


def deactivate() -> None:
    global _active
    _active = None


class use:
    """Context manager scoping a registry activation, restoring the
    previously-active registry (if any) on exit."""

    def __init__(self, registry: Registry):
        self._registry = registry
        self._prev: Registry | None = None

    def __enter__(self) -> Registry:
        global _active
        self._prev = _active
        _active = self._registry
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _active = self._prev
        return False


# ---------------------------------------------------------------------------
# Instrumentation-site helpers: no-ops while no registry is active.


def span(name: str, cat: str = "compile", **args):
    registry = _active
    if registry is None:
        return NULL_SPAN
    return registry.span(name, cat, **args)


def counter(name: str, **labels):
    registry = _active
    if registry is None:
        return NULL_METRIC
    return registry.counter(name, **labels)


def histogram(name: str, **labels):
    registry = _active
    if registry is None:
        return NULL_METRIC
    return registry.histogram(name, **labels)
