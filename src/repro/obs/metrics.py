"""Labelled counters and histograms.

Metrics are *named aggregates*: a counter is identified by its name plus
a set of ``key=value`` labels (e.g. ``machine.checks{kind=bnd}``), a
histogram additionally tracks min/max/total of the observed values.
Label keys are sorted when rendering, so the flattened metric key — and
therefore every export — is deterministic for a deterministic workload.

Naming convention (see docs/OBSERVABILITY.md): ``<layer>.<noun>`` with
dots, all lowercase; labels discriminate within one logical metric
(``kind=bnd|cfi``, ``outcome=ok|fault``), they never encode values that
grow without bound (no addresses, no per-request ids).
"""

from __future__ import annotations

LabelItems = tuple[tuple[str, str], ...]


def label_items(labels: dict[str, object]) -> LabelItems:
    """Normalize a label dict into a sorted, hashable identity."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def flat_key(name: str, items: LabelItems) -> str:
    """Flatten ``name`` + labels into ``name{k=v,...}`` (sorted keys)."""
    if not items:
        return name
    inner = ",".join(f"{k}={v}" for k, v in items)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically-increasing integer with a labelled identity."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    @property
    def key(self) -> str:
        return flat_key(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.key}={self.value}>"


class Histogram:
    """Summary statistics (count/total/min/max) of observed values."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def key(self) -> str:
        return flat_key(self.name, self.labels)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.key} n={self.count} total={self.total}>"
