"""Renderers: metrics as JSON or aligned human-readable tables.

The table renderers are the single output path for every CLI report
(``--stats``, ``--metrics``, the ``stats`` subcommand, the profiler
dump), so counters are never printed twice in two formats.
"""

from __future__ import annotations

import json

from .events import CYCLES, Registry
from .trace import to_chrome_trace, write_chrome_trace  # noqa: F401 (re-export)

__all__ = [
    "cycle_span_signature",
    "metrics_to_json",
    "render_table",
    "render_kv_table",
    "render_metrics_table",
    "to_chrome_trace",
    "write_chrome_trace",
]


def cycle_span_signature(registry: Registry) -> list[tuple]:
    """Canonical tuples for every simulated-cycle span in the registry.

    The cycle-clock spans (and their args) are the engine-independent
    part of a trace: two runs of the same binary must produce identical
    signatures whichever execution engine ran them, which is what the
    engine-equivalence suite pins.  Wall-clock spans are excluded —
    host timing differs between engines by design.
    """
    return [
        (
            span.name,
            span.ts,
            span.dur,
            span.tid,
            tuple(sorted(span.args.items())),
        )
        for span in registry.spans
        if span.clock == CYCLES
    ]


def metrics_to_json(registry: Registry) -> str:
    """Deterministic JSON dump of the registry's metrics."""
    return json.dumps(registry.metrics_snapshot(), indent=2, sort_keys=True)


def render_table(
    headers: list[str], rows: list[list], title: str | None = None
) -> str:
    """Render an aligned fixed-width table (first column left-aligned,
    the rest right-aligned)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]

    def fmt(row: list[str]) -> str:
        out = [row[0].ljust(widths[0])]
        out += [cell.rjust(width) for cell, width in zip(row[1:], widths[1:])]
        return "  ".join(out).rstrip()

    lines = []
    if title:
        lines.append(f"=== {title} ===")
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def _fmt_value(value) -> str:
    if isinstance(value, dict):  # histogram summary
        return (
            f"n={value['count']} total={value['total']} "
            f"min={value['min']} max={value['max']}"
        )
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_kv_table(rows: list[tuple], title: str | None = None) -> str:
    """Render (key, value) pairs through :func:`render_table`."""
    return render_table(
        ["metric", "value"],
        [[key, _fmt_value(value)] for key, value in rows],
        title=title,
    )


def render_metrics_table(registry: Registry, title: str = "metrics") -> str:
    """Render every metric in the registry, deterministically ordered."""
    snapshot = registry.metrics_snapshot()
    return render_kv_table(list(snapshot.items()), title=title)
