"""Serving-tier benchmarks: fork-vs-cold setup cost and fleet
throughput/latency under load.

Two claims are pinned here:

* **Setup amortization** — the per-request fork path (an in-place
  image reset plus the deterministic resume replay) is at least 100x
  cheaper than the cold path (compile + ConfVerify + load plus the
  app's init run) on *both* clocks: host wall time and simulated
  cycles.  Measured against an uncached build session — the object
  cache would only make the cold path look better than it is.
* **Sustained load** — the fleet pushes >=1e5 requests through >=8
  concurrent tenants with zero faults and sane latency percentiles.
  That sweep takes tens of seconds, so it is gated behind ``-m load``
  like the long fuzzing runs; a scaled-down version runs with the
  regular benchmark suite.
"""

from __future__ import annotations

import time

import pytest

from repro import OUR_MPX
from repro.build import BuildSession, use_session
from repro.serve import (
    SERVE_APPS,
    ServeInstance,
    build_app_image,
    resume_overhead_cycles,
    run_load,
)

SETUP_RATIO_FLOOR = 100.0


@pytest.mark.parametrize("app_name", ("dirserver", "classifier"))
def test_fork_setup_100x_cheaper_than_cold(app_name, table):
    """Acceptance gate: fork-path per-request setup is >=100x cheaper
    than cold compile+verify+load, in wall time AND simulated cycles."""
    app = SERVE_APPS[app_name]
    # An uncached, serial session: the honest cold path.
    with use_session(BuildSession(jobs=1)):
        t0 = time.perf_counter()
        image, timings = build_app_image(app, OUR_MPX, seed=1)
        cold_wall_s = timings["build_wall_s"] + timings["load_wall_s"]
        assert time.perf_counter() - t0 >= cold_wall_s

    instance = ServeInstance(
        image.fork(), request_fd=app.request_fd,
        response_fd=app.response_fd,
    )
    resume_cycles = resume_overhead_cycles(instance)
    # Steady-state reset cost, averaged over enough samples to beat
    # timer noise.
    instance.handle_request(app.encode_request(instance.runtime, 0))
    samples = 64
    t0 = time.perf_counter()
    for _ in range(samples):
        instance.reset()
    reset_wall_s = (time.perf_counter() - t0) / samples

    wall_ratio = cold_wall_s / reset_wall_s
    cycle_ratio = (image.warmup_cycles + resume_cycles) / resume_cycles

    report = table(f"serve setup: {app_name}", ["metric", "value"])
    report.add("cold build+load wall", f"{cold_wall_s * 1e3:.1f} ms")
    report.add("fork reset wall", f"{reset_wall_s * 1e6:.1f} us")
    report.add("wall ratio", f"{wall_ratio:,.0f}x")
    report.add("cold init cycles", f"{image.warmup_cycles:,}")
    report.add("resume cycles", f"{resume_cycles:,}")
    report.add("cycle ratio", f"{cycle_ratio:,.1f}x")
    report.show()

    assert wall_ratio >= SETUP_RATIO_FLOOR
    assert cycle_ratio >= SETUP_RATIO_FLOOR


def _show_report(table, report, title):
    out = table(title, ["metric", "value"])
    out.add("requests", report.requests)
    out.add("tenants x pool", f"{len(report.tenants)} x {report.pool_size}")
    out.add("ok / valid", f"{report.ok} / {report.valid}")
    out.add("faults", report.faults)
    out.add("throughput", f"{report.throughput_rps:,.0f} req/s")
    lat = report.latency_wall_ms
    out.add("wall ms p50/p95/p99",
            f"{lat['p50']:.3f} / {lat['p95']:.3f} / {lat['p99']:.3f}")
    lat = report.latency_cycles
    out.add("cycles p50/p95/p99",
            f"{lat['p50']:,.0f} / {lat['p95']:,.0f} / {lat['p99']:,.0f}")
    out.add("total cycles", f"{report.total_cycles:,}")
    out.show()


def check_fleet_report(report, expected_requests, expected_tenants):
    assert report.requests == expected_requests
    assert report.ok == expected_requests
    assert report.valid == expected_requests
    assert report.faults == 0
    assert len(report.tenants) == expected_tenants
    # Round-robin assignment keeps tenants within one request of even.
    counts = [c["requests"] for c in report.per_tenant.values()]
    assert max(counts) - min(counts) <= 1
    for lat in (report.latency_wall_ms, report.latency_cycles):
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]


def test_fleet_throughput_smoke(table):
    """Scaled-down fleet sweep that always runs with the benchmarks."""
    report = run_load(
        "echo", OUR_MPX, tenants=8, pool_size=2, requests=2_000, seed=1
    )
    _show_report(table, report, "serve throughput (smoke, 2k reqs)")
    check_fleet_report(report, 2_000, 8)
    # batch=1 echo is perfectly deterministic per request.
    assert report.latency_cycles["p50"] == report.latency_cycles["p99"]


@pytest.mark.load
def test_fleet_sustains_100k_requests_across_8_tenants(table):
    """The acceptance-criteria sweep: >=1e5 requests, >=8 tenants,
    p50/p95/p99 on both clocks, zero faults."""
    report = run_load(
        "echo", OUR_MPX, tenants=8, pool_size=2, requests=100_000,
        seed=1,
    )
    _show_report(table, report, "serve throughput (load, 100k reqs)")
    check_fleet_report(report, 100_000, 8)
    assert report.throughput_rps > 0
    assert report.setup["wall_speedup"] >= SETUP_RATIO_FLOOR
