"""Execution-engine perf baseline: the `bench --json` anchor.

Three claims are pinned here:

* the predecoded and superblock engines and the reference engine report
  **identical** simulated cycles/instructions/checks on the mcf kernel
  under every configuration (the optimizations are observably
  invisible);
* the per-config cycle records stay in the neighborhood of the stored
  `data/bench_baseline.json` snapshot, so a future change that silently
  shifts the Figure 5 cost model shows up as a benchmark failure rather
  than as quietly different paper numbers.  Simulated cycles are
  deterministic, so the tolerance (±25%) exists only to admit *intended*
  codegen/cost-model changes — refresh the snapshot when you make one;
* the superblock engine actually earns its keep: ≥1.5× cycles per
  wall-second over predecoded on the mcf kernel (ROADMAP item 2's
  target), measured interleaved so host noise hits both engines alike.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.apps.spec import kernel_source
from repro.compiler import compile_source
from repro.config import ALL_CONFIGS
from repro.link.loader import load
from repro.runtime.trusted import TrustedRuntime

BASELINE_PATH = Path(__file__).parent / "data" / "bench_baseline.json"
SEED = 1

_CACHE: dict[str, dict[str, dict]] = {}


def bench_records(engine: str) -> dict[str, dict]:
    """Per-config {cycles, instructions} for the mcf kernel."""
    if engine in _CACHE:
        return _CACHE[engine]
    source = kernel_source("mcf", scale=1)
    records = {}
    for name, config in ALL_CONFIGS.items():
        binary = compile_source(source, config, seed=SEED)
        process = load(binary, runtime=TrustedRuntime(), engine=engine)
        process.run()
        records[name] = {
            "cycles": process.wall_cycles,
            "instructions": process.stats.instructions,
            "bnd": process.stats.bnd_checks,
            "cfi": process.stats.cfi_checks,
        }
    _CACHE[engine] = records
    return records


def test_engines_report_identical_cycles(benchmark):
    fast = benchmark.pedantic(
        bench_records, args=("predecoded",), rounds=1, iterations=1
    )
    reference = bench_records("reference")
    assert fast == reference


def test_superblock_reports_identical_cycles():
    assert bench_records("superblock") == bench_records("reference")


def test_superblock_speedup_over_predecoded():
    """The superblock engine must deliver ≥1.5× cycles-per-wall-second
    over predecoded on a fig5 app.  Measured on OurMPX (check-heavy,
    the config the paper's overhead story is about), interleaved
    best-of-N so scheduler noise cannot bias one engine."""
    source = kernel_source("mcf", scale=1)
    config = ALL_CONFIGS["OurMPX"]
    binary = compile_source(source, config, seed=SEED)

    def run(engine):
        process = load(binary, runtime=TrustedRuntime(), engine=engine)
        start = time.perf_counter()
        process.run()
        elapsed = time.perf_counter() - start
        return process.wall_cycles / elapsed

    # Warm both paths (superblock pays block fusion on first touch).
    run("predecoded")
    run("superblock")
    best = {"predecoded": 0.0, "superblock": 0.0}
    for _ in range(4):
        for engine in best:
            best[engine] = max(best[engine], run(engine))
    speedup = best["superblock"] / best["predecoded"]
    assert speedup >= 1.5, (
        f"superblock {best['superblock']:.3e} vs predecoded "
        f"{best['predecoded']:.3e} cycles/s — only {speedup:.2f}x"
    )


def test_cycles_match_stored_baseline():
    with open(BASELINE_PATH) as handle:
        baseline = {r["config"]: r for r in json.load(handle)["records"]}
    current = bench_records("predecoded")
    assert set(current) == set(baseline)
    for name, record in current.items():
        expected = baseline[name]["cycles"]
        assert record["cycles"] == pytest.approx(expected, rel=0.25), (
            f"{name}: cycles {record['cycles']} drifted >25% from the "
            f"stored baseline {expected}; if the cost model or codegen "
            "changed intentionally, regenerate benchmarks/data/"
            "bench_baseline.json (see its _meta.generate)"
        )
        assert record["bnd"] == baseline[name]["checks"]["bnd"]
        assert record["cfi"] == baseline[name]["checks"]["cfi"]
