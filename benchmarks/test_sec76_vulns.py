"""Section 7.6: the vulnerability-injection experiments as a table.

Paper result: all three hand-crafted exploits (Mongoose stale-stack
over-read, Minizip cast-laundered password leak, printf format string)
leak against the vanilla build and are stopped by ConfLLVM.
"""

from __future__ import annotations

import pytest

from repro import BASE, OUR_MPX, OUR_SEG, TaintError, compile_source
from repro.attacks import (
    ALL_ATTACKS,
    MINIZIP_DIRECT_SRC,
)

from .conftest import Table

_RESULTS: dict[tuple[str, str], object] = {}


def _run(attack_name: str, config):
    key = (attack_name, config.name)
    if key not in _RESULTS:
        _RESULTS[key] = ALL_ATTACKS[attack_name](config)
    return _RESULTS[key]


@pytest.mark.parametrize("attack_name", sorted(ALL_ATTACKS))
def test_sec76_attack(attack_name, benchmark):
    outcome = benchmark.pedantic(
        _run, args=(attack_name, OUR_MPX), rounds=1, iterations=1
    )
    assert not outcome.leaked
    base = _run(attack_name, BASE)
    assert base.leaked, "baseline must actually be exploitable"


def test_sec76_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Section 7.6 — injected vulnerabilities",
        ["attack", "config", "leaked", "stopped by"],
    )
    for name in sorted(ALL_ATTACKS):
        for config in (BASE, OUR_MPX, OUR_SEG):
            outcome = _run(name, config)
            how = "-"
            if not outcome.leaked and config is not BASE:
                how = outcome.fault_kind or "region confinement"
            table.add(name, config.name, outcome.leaked, how)
    # Static detection row: the un-laundered Minizip bug never compiles.
    try:
        compile_source(MINIZIP_DIRECT_SRC, OUR_MPX)
        statically_caught = False
    except TaintError:
        statically_caught = True
    table.add("minizip (no casts)", "OurMPX", False,
              "compile-time TaintError")
    table.show()
    assert statically_caught
    for name in sorted(ALL_ATTACKS):
        assert _run(name, BASE).leaked
        assert not _run(name, OUR_MPX).leaked
        assert not _run(name, OUR_SEG).leaked
