"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section 7).  Measurements are *simulated cycles* from the
machine model — wall-clock numbers reported by pytest-benchmark time
the simulation itself and are not the experiment's metric.  Each module
prints the paper-shaped table and asserts the qualitative shape (who
wins, roughly by how much, where the crossovers are).
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    # Everything under benchmarks/ is a paper-evaluation suite: mark it
    # so tier-1 runs can deselect with `-m "not benchmarks"`.
    for item in items:
        item.add_marker(pytest.mark.benchmarks)


def overhead_pct(base: float, ours: float) -> float:
    """Percent overhead of `ours` relative to `base` (positive=slower)."""
    if not base:
        return 0.0
    return 100.0 * (ours - base) / base


def fmt_pct(value: float) -> str:
    return f"{value:+6.1f}%"


class Table:
    """Tiny fixed-width table printer for benchmark reports."""

    def __init__(self, title: str, columns: list[str]):
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(col), *(len(r[i]) for r in self.rows)) if self.rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"\n=== {self.title} ==="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())


@pytest.fixture
def table():
    return Table
