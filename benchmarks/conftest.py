"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section 7).  Measurements are *simulated cycles* from the
machine model — wall-clock numbers reported by pytest-benchmark time
the simulation itself and are not the experiment's metric.  Each module
prints the paper-shaped table and asserts the qualitative shape (who
wins, roughly by how much, where the crossovers are).
"""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(config, items):
    # Everything under benchmarks/ is a paper-evaluation suite: mark it
    # so tier-1 runs can deselect with `-m "not benchmarks"`.
    for item in items:
        item.add_marker(pytest.mark.benchmarks)
    # High-volume serving sweeps (>=1e5 requests) only run when asked
    # for explicitly, mirroring the tests/fuzz gating.
    if "load" in (config.option.markexpr or ""):
        return
    skip_load = pytest.mark.skip(
        reason="high-volume load sweep; select with -m load"
    )
    for item in items:
        if "load" in item.keywords:
            item.add_marker(skip_load)


@pytest.fixture(scope="session", autouse=True)
def build_session(tmp_path_factory):
    """One cached, parallel build session for the whole benchmark run.

    Many benchmark modules compile the same kernel under several
    configurations (and some recompile identical sources across
    modules); routing every compile through a shared object cache makes
    reruns and overlaps skip the compiler entirely, without changing a
    single binary (cached builds are byte-identical by contract).

    ``$REPRO_CACHE_DIR`` persists the cache across benchmark runs —
    a warm Fig. 5 rerun then does a small fraction of the compile
    work; otherwise a throwaway per-run directory is used.
    ``$REPRO_BUILD_JOBS`` overrides the parallel width (default 4).
    """
    from repro.build import BuildSession, ObjectCache, use_session

    cache_dir = os.environ.get("REPRO_CACHE_DIR") or str(
        tmp_path_factory.mktemp("object-cache")
    )
    try:
        jobs = int(os.environ.get("REPRO_BUILD_JOBS", "4"))
    except ValueError:
        jobs = 4
    with use_session(
        BuildSession(cache=ObjectCache(cache_dir), jobs=jobs)
    ) as session:
        yield session


def overhead_pct(base: float, ours: float) -> float:
    """Percent overhead of `ours` relative to `base` (positive=slower)."""
    if not base:
        return 0.0
    return 100.0 * (ours - base) / base


def fmt_pct(value: float) -> str:
    return f"{value:+6.1f}%"


class Table:
    """Tiny fixed-width table printer for benchmark reports."""

    def __init__(self, title: str, columns: list[str]):
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(col), *(len(r[i]) for r in self.rows)) if self.rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"\n=== {self.title} ==="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())


@pytest.fixture
def table():
    return Table
