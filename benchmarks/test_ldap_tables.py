"""Section 7.3: OpenLDAP throughput under ConfLLVM.

Paper results (two experiments, Base vs OurMPX):

* entries that do NOT exist: 26,254 -> 22,908 req/s, -12.74%;
* entries that DO exist:     29,698 -> 26,895 req/s,  -9.44%;

and the explanation: "OpenLDAP does less work in U looking for
directory entries that exist than it does looking for directory entries
that don't" — so the miss workload amplifies the instrumentation.

We regenerate both rows and assert: both overheads are moderate, and
the miss workload's overhead exceeds the hit workload's.
"""

from __future__ import annotations

import pytest

from repro import BASE, OUR_MPX, TrustedRuntime, compile_and_load
from repro.apps.dirserver import DIRSERVER_SRC, QUIT_QUERY, make_query

from .conftest import Table, fmt_pct

N_QUERIES = 60
WARMUP_QUERIES = 8

_RESULTS: dict[str, dict[str, float]] = {}


def _run_n(config, workload: str, n_queries: int) -> int:
    runtime = TrustedRuntime()
    runtime.set_password("alice", b"pw123")
    for i in range(n_queries):
        if workload == "hit":
            entry_id = (i * 97) % 10_000 * 2  # even ids exist
        else:
            entry_id = (i * 97) % 10_000 * 2 + 1  # odd ids never exist
        runtime.channel(0).feed(make_query(runtime, entry_id, "alice"))
    runtime.channel(0).feed(QUIT_QUERY)
    process = compile_and_load(DIRSERVER_SRC, config, runtime=runtime)
    served = process.run()
    assert served == n_queries
    return process.wall_cycles


def _throughput(config, workload: str) -> float:
    """Steady-state throughput: difference two run lengths so the
    one-time store population drops out (the paper measures sustained
    request rate on a pre-populated, pre-warmed server)."""
    short = _run_n(config, workload, WARMUP_QUERIES)
    long = _run_n(config, workload, WARMUP_QUERIES + N_QUERIES)
    return N_QUERIES / (long - short) * 1e6


def _run(workload: str) -> dict[str, float]:
    if workload not in _RESULTS:
        _RESULTS[workload] = {
            "Base": _throughput(BASE, workload),
            "OurMPX": _throughput(OUR_MPX, workload),
        }
    return _RESULTS[workload]


@pytest.mark.parametrize("workload", ["miss", "hit"])
def test_ldap_workload(workload, benchmark):
    row = benchmark.pedantic(_run, args=(workload,), rounds=1, iterations=1)
    degradation = 100.0 * (1 - row["OurMPX"] / row["Base"])
    benchmark.extra_info["throughput_degradation_pct"] = degradation
    assert 0.0 <= degradation <= 35.0


def test_ldap_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    miss = _run("miss")
    hit = _run("hit")
    deg_miss = 100.0 * (1 - miss["OurMPX"] / miss["Base"])
    deg_hit = 100.0 * (1 - hit["OurMPX"] / hit["Base"])
    table = Table(
        "Section 7.3 — OpenLDAP throughput (req per Mcycle)",
        ["workload", "Base", "OurMPX", "degradation", "paper"],
    )
    table.add("miss (absent entries)", f"{miss['Base']:.2f}",
              f"{miss['OurMPX']:.2f}", fmt_pct(-deg_miss), "-12.74%")
    table.add("hit  (present entries)", f"{hit['Base']:.2f}",
              f"{hit['OurMPX']:.2f}", fmt_pct(-deg_hit), "-9.44%")
    table.show()
    # The paper's qualitative result: misses degrade more than hits.
    assert deg_miss > deg_hit > 0.0
    assert deg_miss <= 35.0
