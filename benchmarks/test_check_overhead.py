"""Check-overhead decomposition over the Fig. 5 kernels.

The block profiler attributes every executed bnd/CFI/magic/stack-probe
check its exact cycle cost.  This suite regenerates the Fig. 5-style
decomposition per kernel and pins the exactness contract: per-category
check cycles plus the residual ("other": spills, extra moves, allocator
differences) sum to the config's cycle delta over Base — the profiler
never loses or invents a cycle.
"""

from __future__ import annotations

import pytest

from repro.apps.spec import SPEC_NAMES, kernel_source
from repro.build import BuildRequest, default_session
from repro.config import SPEC_CONFIGS
from repro.link.loader import load
from repro.obs.blockprof import attach_block_profiler

from .conftest import Table, fmt_pct, overhead_pct

_RESULTS: dict[str, dict[str, dict]] = {}


def _profile_kernel(name: str) -> dict[str, dict]:
    if name in _RESULTS:
        return _RESULTS[name]
    source = kernel_source(name, scale=1)
    session = default_session()
    binaries = session.build_many(
        [BuildRequest(source=source, config=config) for config in SPEC_CONFIGS]
    )
    results: dict[str, dict] = {}
    for config, binary in zip(SPEC_CONFIGS, binaries):
        process = load(binary)
        profiler = attach_block_profiler(process.machine)
        process.run()
        results[config.name] = {
            "cycles": process.wall_cycles,
            "stats": process.stats,
            "summary": profiler.check_summary(),
        }
    _RESULTS[name] = results
    return results


@pytest.mark.parametrize("kernel", SPEC_NAMES)
def test_decomposition_exact(kernel, benchmark):
    results = benchmark.pedantic(
        _profile_kernel, args=(kernel,), rounds=1, iterations=1
    )
    base = results["Base"]["cycles"]
    for config_name, result in results.items():
        delta = result["cycles"] - base
        check_total = sum(c["cycles"] for c in result["summary"].values())
        other = delta - check_total
        # Exactness: categories + residual == delta, by construction;
        # the substantive claim is that the categories themselves are
        # consistent with the machine's own counters.
        assert check_total + other == delta
        stats = result["stats"]
        assert result["summary"]["bnd"]["count"] == stats.bnd_checks
        assert result["summary"]["cfi"]["count"] == stats.cfi_checks
    benchmark.extra_info.update(
        {
            name: overhead_pct(base, r["cycles"])
            for name, r in results.items()
        }
    )


def test_check_category_shape():
    """OurMPX pays bnd cycles that OurSeg does not; both pay CFI."""
    results = _profile_kernel(SPEC_NAMES[0])
    mpx = results["OurMPX"]["summary"]
    seg = results["OurSeg"]["summary"]
    assert mpx["bnd"]["cycles"] > 0
    assert seg["bnd"]["cycles"] == 0
    assert mpx["cfi"]["count"] > 0
    assert seg["cfi"]["count"] > 0


def test_render_decomposition_table(capsys):
    """Print the Fig. 5-style decomposition table for the report."""
    table = Table(
        "check-overhead decomposition (avg % of Base cycles)",
        ["config", "bnd", "cfi", "chkstk", "other", "total"],
    )
    sums: dict[str, dict[str, float]] = {}
    for kernel in SPEC_NAMES:
        results = _profile_kernel(kernel)
        base = results["Base"]["cycles"]
        for config_name, result in results.items():
            if config_name == "Base":
                continue
            delta = result["cycles"] - base
            summary = result["summary"]
            check_total = sum(c["cycles"] for c in summary.values())
            row = sums.setdefault(
                config_name,
                {"bnd": 0.0, "cfi": 0.0, "chkstk": 0.0, "other": 0.0,
                 "total": 0.0},
            )
            row["bnd"] += 100.0 * summary["bnd"]["cycles"] / base
            row["cfi"] += 100.0 * summary["cfi"]["cycles"] / base
            row["chkstk"] += 100.0 * summary["chkstk"]["cycles"] / base
            row["other"] += 100.0 * (delta - check_total) / base
            row["total"] += 100.0 * delta / base
    n = len(SPEC_NAMES)
    for config_name, row in sums.items():
        table.add(
            config_name,
            *[fmt_pct(row[k] / n)
              for k in ("bnd", "cfi", "chkstk", "other", "total")],
        )
    table.show()
    assert "OurMPX" in capsys.readouterr().out
