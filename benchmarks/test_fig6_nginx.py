"""Figure 6: NGINX maximum sustained throughput vs response size.

Paper results: overhead on sustained throughput ranges from 3.25% to
29.32% and is *non-monotonic* in file size — it grows up to ~10 KB
(cache pressure from the split stacks: the OurMPX − OurMPX-Sep gap) and
then falls for large responses as the relative time spent outside U
(kernel/copy, here: T costs) grows, tending to zero past 40 KB.

We serve a corpus over the simulated channel with a closed loop of
requests and report throughput (requests per million simulated cycles)
as a percentage of Base for the paper's six configurations.
"""

from __future__ import annotations

import pytest

from repro import TrustedRuntime, compile_and_load
from repro.apps.webserver import QUIT_REQUEST, WEBSERVER_SRC, make_request
from repro.config import NGINX_CONFIGS

from .conftest import Table, fmt_pct, overhead_pct

FILE_SIZES_KB = (0, 1, 4, 10, 20, 40)
REQUESTS_PER_RUN = 10

_RESULTS: dict[int, dict[str, float]] = {}


def _throughput(config, size_kb: int) -> float:
    runtime = TrustedRuntime()
    name = f"file{size_kb:04d}"
    runtime.add_file(name, b"F" * (size_kb * 1024))
    for _ in range(REQUESTS_PER_RUN):
        runtime.channel(0).feed(make_request(name))
    runtime.channel(0).feed(QUIT_REQUEST)
    process = compile_and_load(WEBSERVER_SRC, config, runtime=runtime)
    served = process.run()
    assert served == REQUESTS_PER_RUN
    return served / process.wall_cycles * 1e6


def _run_size(size_kb: int) -> dict[str, float]:
    if size_kb in _RESULTS:
        return _RESULTS[size_kb]
    row = {c.name: _throughput(c, size_kb) for c in NGINX_CONFIGS}
    _RESULTS[size_kb] = row
    return row


@pytest.mark.parametrize("size_kb", FILE_SIZES_KB)
def test_fig6_size(size_kb, benchmark):
    row = benchmark.pedantic(_run_size, args=(size_kb,), rounds=1, iterations=1)
    base = row["Base"]
    benchmark.extra_info.update(
        {name: 100.0 * thr / base for name, thr in row.items()}
    )
    # Full instrumentation costs something but stays in the envelope.
    loss = 100.0 * (1 - row["OurMPX"] / base)
    assert 0.0 <= loss <= 45.0


def test_fig6_aggregate_shapes(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for size in FILE_SIZES_KB:
        _run_size(size)

    table = Table(
        "Figure 6 — NGINX sustained throughput as % of Base",
        ["size", "Base(req/Mcyc)", "Our1Mem", "OurBare", "OurCFI",
         "OurMPX-Sep", "OurMPX"],
    )
    mpx_loss = {}
    for size in FILE_SIZES_KB:
        row = _RESULTS[size]
        base = row["Base"]
        table.add(
            f"{size}KB",
            f"{base:8.2f}",
            *(f"{100 * row[name] / base:5.1f}%" for name in
              ("Our1Mem", "OurBare", "OurCFI", "OurMPX-Sep", "OurMPX")),
        )
        mpx_loss[size] = 100.0 * (1 - row["OurMPX"] / base)
    table.show()
    print("paper: overhead 3.25%..29.32%, rising to ~10KB then falling")

    losses = [mpx_loss[s] for s in FILE_SIZES_KB]
    # Every size shows a real but bounded overhead.
    assert all(0.0 <= v <= 45.0 for v in losses), losses
    # The paper's non-monotonic shape: overhead *rises* from 0 KB to an
    # interior peak, then the tail declines as time outside U (kernel/
    # crypto/copy costs) absorbs the instrumentation.
    worst = max(losses)
    peak_index = losses.index(worst)
    assert 0 < peak_index < len(losses) - 1, losses
    assert losses[0] < worst
    assert mpx_loss[FILE_SIZES_KB[-1]] < worst
    # Layered configurations: each mechanism adds cost at small sizes.
    small = _RESULTS[FILE_SIZES_KB[1]]
    assert small["Our1Mem"] >= small["OurBare"] * 0.98
    assert small["OurBare"] >= small["OurCFI"] * 0.98
    assert small["OurCFI"] >= small["OurMPX"] * 0.98
    # Separate stacks cost throughput relative to unified stacks.
    assert small["OurMPX-Sep"] >= small["OurMPX"] * 0.98
