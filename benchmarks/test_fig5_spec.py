"""Figure 5: SPEC CPU 2006 execution time relative to Base.

Paper results (Surface Pro 4, i7-6650U): OurMPX up to +74.03%, OurSeg
up to +24.5% and consistently below MPX; CFI alone averages +3.62%;
BaseOA is negligible and sometimes *negative* (the custom allocator
helps milc); OurBare can be negative (disabled optimizations sometimes
help, hmmer).

We regenerate the figure over the kernel suite and assert the shape:

* OurSeg <= OurMPX on every kernel (segmentation is the cheaper scheme);
* average CFI overhead is a few percent;
* average MPX overhead is moderate (the paper's SPEC average is ~12%);
* BaseOA stays close to Base, and is negative on the allocation-heavy
  kernel (milc).
"""

from __future__ import annotations

import pytest

from repro.apps.spec import SPEC_NAMES, kernel_source
from repro.build import BuildRequest, default_session
from repro.config import SPEC_CONFIGS
from repro.link.loader import load

from .conftest import Table, fmt_pct, overhead_pct

_RESULTS: dict[str, dict[str, int]] = {}


def _run_kernel(name: str) -> dict[str, int]:
    if name in _RESULTS:
        return _RESULTS[name]
    source = kernel_source(name, scale=1)
    # All six configurations build through the shared session (parallel
    # + cached, byte-identical to serial); execution stays serial so
    # cycle counts are unaffected by the build width.
    session = default_session()
    binaries = session.build_many(
        [BuildRequest(source=source, config=config) for config in SPEC_CONFIGS]
    )
    cycles: dict[str, int] = {}
    expected_rc = None
    for config, binary in zip(SPEC_CONFIGS, binaries):
        process = load(binary)
        rc = process.run()
        if expected_rc is None:
            expected_rc = rc
        assert rc == expected_rc, f"{name}: {config.name} diverged"
        cycles[config.name] = process.wall_cycles
    _RESULTS[name] = cycles
    return cycles


@pytest.mark.parametrize("kernel", SPEC_NAMES)
def test_fig5_kernel(kernel, benchmark):
    cycles = benchmark.pedantic(
        _run_kernel, args=(kernel,), rounds=1, iterations=1
    )
    base = cycles["Base"]
    benchmark.extra_info.update(
        {name: overhead_pct(base, c) for name, c in cycles.items()}
    )
    # Per-kernel shape: segmentation never costs more than MPX.
    assert cycles["OurSeg"] <= cycles["OurMPX"] * 1.01
    # Full MPX instrumentation stays within the paper's envelope.
    assert overhead_pct(base, cycles["OurMPX"]) <= 80.0
    # The allocator swap alone is a small effect.
    assert abs(overhead_pct(base, cycles["BaseOA"])) <= 15.0


def test_fig5_aggregate_shapes(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for kernel in SPEC_NAMES:
        _run_kernel(kernel)

    table = Table(
        "Figure 5 — SPEC CPU overhead vs Base (simulated cycles)",
        ["kernel", "Base(cyc)", "BaseOA", "OurBare", "OurCFI", "OurMPX", "OurSeg"],
    )
    cfi_overheads = []
    mpx_overheads = []
    seg_overheads = []
    for kernel in SPEC_NAMES:
        cycles = _RESULTS[kernel]
        base = cycles["Base"]
        table.add(
            kernel,
            base,
            fmt_pct(overhead_pct(base, cycles["BaseOA"])),
            fmt_pct(overhead_pct(base, cycles["OurBare"])),
            fmt_pct(overhead_pct(base, cycles["OurCFI"])),
            fmt_pct(overhead_pct(base, cycles["OurMPX"])),
            fmt_pct(overhead_pct(base, cycles["OurSeg"])),
        )
        cfi_overheads.append(
            overhead_pct(cycles["OurBare"], cycles["OurCFI"])
        )
        mpx_overheads.append(overhead_pct(base, cycles["OurMPX"]))
        seg_overheads.append(overhead_pct(base, cycles["OurSeg"]))
    avg_cfi = sum(cfi_overheads) / len(cfi_overheads)
    avg_mpx = sum(mpx_overheads) / len(mpx_overheads)
    avg_seg = sum(seg_overheads) / len(seg_overheads)
    table.add("AVERAGE", "", "", "", fmt_pct(avg_cfi), fmt_pct(avg_mpx),
              fmt_pct(avg_seg))
    table.show()
    print(f"paper: CFI avg +3.62%, MPX <= +74.03%, Seg <= +24.5%, "
          f"MPX SPEC average ~ +12%")

    # Aggregate shapes from the paper.
    assert 0.0 <= avg_cfi <= 12.0, "CFI should average a few percent"
    assert 5.0 <= avg_mpx <= 45.0, "MPX average should be moderate"
    assert avg_seg < avg_mpx, "segmentation beats MPX on average"
    assert max(mpx_overheads) <= 80.0
    assert max(seg_overheads) <= 35.0
