"""Figure 8: Merkle-tree file library — parallel scaling + integrity.

Paper results: 1-6 threads concurrently reading a memory-mapped 2 GB
file; until the thread count exceeds the core count (4), wall time and
relative overhead stay nearly constant (linear scaling); OurSeg stays
below 10% overhead and OurMPX below 17% in all configurations.
"""

from __future__ import annotations

import pytest

from repro import BASE, OUR_MPX, OUR_SEG, compile_and_load
from repro.apps.merklefs import merklefs_source

from .conftest import Table, fmt_pct, overhead_pct

THREADS = (1, 2, 3, 4, 6)
CONFIGS = (BASE, OUR_SEG, OUR_MPX)
N_CORES = 4

_RESULTS: dict[tuple[str, int], int] = {}


def _run(config, n_threads: int) -> int:
    key = (config.name, n_threads)
    if key in _RESULTS:
        return _RESULTS[key]
    process = compile_and_load(
        merklefs_source(n_threads), config, n_cores=N_CORES
    )
    bad_blocks = process.run()
    assert bad_blocks == 0, "integrity verification failed"
    _RESULTS[key] = process.wall_cycles
    return process.wall_cycles


@pytest.mark.parametrize("n_threads", THREADS)
def test_fig8_thread_count(n_threads, benchmark):
    cycles = benchmark.pedantic(
        _run, args=(OUR_MPX, n_threads), rounds=1, iterations=1
    )
    base = _run(BASE, n_threads)
    seg = _run(OUR_SEG, n_threads)
    benchmark.extra_info["mpx_overhead_pct"] = overhead_pct(base, cycles)
    benchmark.extra_info["seg_overhead_pct"] = overhead_pct(base, seg)


def test_fig8_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in THREADS:
        for config in CONFIGS:
            _run(config, n)

    table = Table(
        "Figure 8 — parallel Merkle-verified read (wall cycles, 4 cores)",
        ["threads", "Base", "OurSeg", "OurMPX", "Seg ovh", "MPX ovh"],
    )
    for n in THREADS:
        base = _RESULTS[("Base", n)]
        seg = _RESULTS[("OurSeg", n)]
        mpx = _RESULTS[("OurMPX", n)]
        table.add(n, base, seg, mpx,
                  fmt_pct(overhead_pct(base, seg)),
                  fmt_pct(overhead_pct(base, mpx)))
    table.show()
    print("paper: flat to 4 threads; Seg < 10%, MPX < 17% everywhere")

    # Linear scaling: wall time roughly flat while threads <= cores.
    for config in CONFIGS:
        t1 = _RESULTS[(config.name, 1)]
        t4 = _RESULTS[(config.name, 4)]
        assert t4 <= t1 * 1.8, f"{config.name} did not scale"
    # Oversubscription costs: 6 threads on 4 cores is slower than 4.
    assert _RESULTS[("Base", 6)] > _RESULTS[("Base", 4)]
    # Overheads stay in the paper's bands (with sim slack).
    for n in THREADS:
        base = _RESULTS[("Base", n)]
        seg_ovh = overhead_pct(base, _RESULTS[("OurSeg", n)])
        mpx_ovh = overhead_pct(base, _RESULTS[("OurMPX", n)])
        assert seg_ovh <= 20.0, (n, seg_ovh)
        assert mpx_ovh <= 30.0, (n, mpx_ovh)
        assert seg_ovh <= mpx_ovh + 1.0
