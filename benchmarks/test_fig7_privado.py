"""Figure 7: Privado image-classification latency inside the enclave.

Paper results: average classification time for the eleven-layer network
in five configurations; OurMPX is +26.87% — much lower than the worst
SPEC numbers because ~70% of the time sits in a tight multiply-
accumulate loop whose instrumentation partially overlaps the compute.

We classify a batch of 3 KB images and report per-image simulated
latency for Base/BaseOA/OurBare/OurCFI/OurMPX (the paper's Figure 7
configurations).
"""

from __future__ import annotations

import struct

import pytest

from repro import BASE, BASE_OA, OUR_BARE, OUR_CFI, OUR_MPX, TrustedRuntime, compile_and_load
from repro.apps.classifier import CLASSIFIER_SRC, make_image

from .conftest import Table, fmt_pct, overhead_pct

CONFIGS = (BASE, BASE_OA, OUR_BARE, OUR_CFI, OUR_MPX)
N_IMAGES = 3

_RESULTS: dict[str, float] = {}
_CLASSES: dict[str, list[int]] = {}


def _latency(config) -> float:
    if config.name in _RESULTS:
        return _RESULTS[config.name]
    runtime = TrustedRuntime()
    for seed in range(N_IMAGES):
        runtime.channel(0).feed(make_image(runtime, seed))
    process = compile_and_load(CLASSIFIER_SRC, config, runtime=runtime)
    count = process.run()
    assert count == N_IMAGES
    wire = runtime.channel(1).drain_out()
    _CLASSES[config.name] = [
        struct.unpack_from("<q", wire, i * 8)[0] for i in range(count)
    ]
    latency = process.wall_cycles / count
    _RESULTS[config.name] = latency
    return latency


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig7_config(config, benchmark):
    latency = benchmark.pedantic(
        _latency, args=(config,), rounds=1, iterations=1
    )
    benchmark.extra_info["cycles_per_image"] = latency


def test_fig7_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for config in CONFIGS:
        _latency(config)
    base = _RESULTS["Base"]
    table = Table(
        "Figure 7 — Privado classification latency (cycles/image)",
        ["config", "cycles", "vs Base", "paper"],
    )
    paper = {"Base": "0%", "BaseOA": "~0%", "OurBare": "small",
             "OurCFI": "small", "OurMPX": "+26.87%"}
    for config in CONFIGS:
        lat = _RESULTS[config.name]
        table.add(config.name, f"{lat:,.0f}",
                  fmt_pct(overhead_pct(base, lat)), paper[config.name])
    table.show()

    # All configurations classify identically.
    assert all(c == _CLASSES["Base"] for c in _CLASSES.values())
    mpx = overhead_pct(base, _RESULTS["OurMPX"])
    # The damped-overhead result: full MPX lands in a moderate band,
    # well under the worst SPEC kernels.
    assert 3.0 <= mpx <= 50.0
    # Layering is monotone.
    assert _RESULTS["OurBare"] <= _RESULTS["OurCFI"] * 1.02
    assert _RESULTS["OurCFI"] <= _RESULTS["OurMPX"] * 1.02


def test_fig7_time_concentrates_in_the_inference_loop(benchmark):
    """The paper's explanation for the damped overhead: "a significant
    amount of time (almost 70%) is spent in a tight loop".  Check that
    the profiler agrees for our network."""
    from repro.machine.profile import attach_profiler

    def profiled():
        runtime = TrustedRuntime()
        runtime.channel(0).feed(make_image(runtime, 0))
        process = compile_and_load(CLASSIFIER_SRC, OUR_MPX, runtime=runtime)
        profiler = attach_profiler(process.machine)
        process.run()
        return profiler

    profiler = benchmark.pedantic(profiled, rounds=1, iterations=1)
    rows = {r.name: r for r in profiler.report()}
    loop_share = sum(
        rows[name].cycle_share
        for name in ("layer", "classify", "decode_image")
        if name in rows
    )
    print(f"\ninference-loop cycle share: {loop_share:.1%} (paper: ~70%)")
    assert loop_share >= 0.6
