"""Ablations of the design choices DESIGN.md calls out.

These do not correspond to a paper figure; they quantify the individual
optimizations Section 5.1 describes ("MPX Optimizations") plus the
shadow-stack CFI alternative Section 4 argues against:

* check **coalescing** within basic blocks;
* **small-displacement elision** backed by the guard zones;
* magic-sequence CFI vs a classic **shadow stack** (the paper: magic
  sequences make "CFI-checking more lightweight than the shadow stack
  schemes").
"""

from __future__ import annotations

import pytest

from repro import OUR_CFI, OUR_MPX, compile_and_load
from repro.apps.spec import kernel_source

from .conftest import Table, fmt_pct, overhead_pct

MEM_KERNELS = ("lbm", "h264ref", "sphinx3")
# Displacement elision matters for field/constant-offset accesses, so
# its ablation runs on the pointer-chasing kernels.
DISP_KERNELS = ("gcc", "mcf", "lbm")
CALL_KERNELS = ("sjeng", "gcc")

_CACHE: dict[tuple, tuple[int, int]] = {}


def _cycles(kernel: str, config) -> tuple[int, int]:
    key = (kernel, config.name, config.coalesce_checks,
           config.elide_small_disp, config.shadow_stack)
    if key not in _CACHE:
        process = compile_and_load(kernel_source(kernel, scale=1), config)
        rc = process.run()
        _CACHE[key] = (process.wall_cycles, rc)
    return _CACHE[key]


@pytest.mark.parametrize("kernel", MEM_KERNELS)
def test_ablation_coalescing(kernel, benchmark):
    on, rc_on = benchmark.pedantic(
        _cycles, args=(kernel, OUR_MPX), rounds=1, iterations=1
    )
    off, rc_off = _cycles(kernel, OUR_MPX.variant(
        name="OurMPX", coalesce_checks=False))
    assert rc_on == rc_off
    benchmark.extra_info["coalescing_saves_pct"] = overhead_pct(on, off)
    assert off >= on, "coalescing must never slow a kernel down"


@pytest.mark.parametrize("kernel", DISP_KERNELS)
def test_ablation_disp_elision(kernel, benchmark):
    on, rc_on = benchmark.pedantic(
        _cycles, args=(kernel, OUR_MPX), rounds=1, iterations=1
    )
    off, rc_off = _cycles(kernel, OUR_MPX.variant(
        name="OurMPX", elide_small_disp=False))
    assert rc_on == rc_off
    benchmark.extra_info["elision_saves_pct"] = overhead_pct(on, off)
    assert off >= on


@pytest.mark.parametrize("kernel", CALL_KERNELS)
def test_ablation_shadow_stack(kernel, benchmark):
    magic, rc_m = benchmark.pedantic(
        _cycles, args=(kernel, OUR_CFI), rounds=1, iterations=1
    )
    shadow, rc_s = _cycles(
        kernel, OUR_CFI.variant(name="OurCFI", shadow_stack=True)
    )
    assert rc_m == rc_s
    benchmark.extra_info["shadow_extra_pct"] = overhead_pct(magic, shadow)
    # The paper's claim: magic sequences are lighter than shadow stacks.
    assert shadow >= magic


def test_ablation_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablations — each optimization's effect (cycles)",
        ["experiment", "kernel", "with", "without", "delta"],
    )
    for kernel in MEM_KERNELS:
        on, _ = _cycles(kernel, OUR_MPX)
        off, _ = _cycles(kernel, OUR_MPX.variant(
            name="OurMPX", coalesce_checks=False))
        table.add("check coalescing", kernel, on, off,
                  fmt_pct(overhead_pct(on, off)))
    for kernel in DISP_KERNELS:
        on, _ = _cycles(kernel, OUR_MPX)
        off, _ = _cycles(kernel, OUR_MPX.variant(
            name="OurMPX", elide_small_disp=False))
        table.add("disp elision", kernel, on, off,
                  fmt_pct(overhead_pct(on, off)))
    for kernel in CALL_KERNELS:
        magic, _ = _cycles(kernel, OUR_CFI)
        shadow, _ = _cycles(kernel, OUR_CFI.variant(
            name="OurCFI", shadow_stack=True))
        table.add("magic vs shadow CFI", kernel, magic, shadow,
                  fmt_pct(overhead_pct(magic, shadow)))
    table.show()
