"""Linker and loader tests: layout, magic selection, static checks."""

import pytest

from repro import BASE, OUR_MPX, OUR_SEG, compile_and_load, compile_source
from repro.backend import isa
from repro.errors import LinkError, MachineFault
from repro.link.layout import (
    CODE_BASE,
    MPX_STACK_OFFSET,
    NATIVE_BASE,
    REGION_SIZE,
    make_layout,
)
from repro.runtime.trusted import T_PROTOTYPES

SIMPLE = T_PROTOTYPES + """
private int g_priv;
int g_pub = 3;
int main() { g_priv = (private int)1; return g_pub; }
"""


class TestLayout:
    def test_mpx_regions_disjoint_with_guard(self):
        layout = make_layout("mpx", True, 4096, 4096)
        assert layout.public.end < layout.private.base
        assert layout.private.base - layout.public.end >= (1 << 20)

    def test_offset_matches_constant(self):
        layout = make_layout("mpx", True, 0, 0)
        assert layout.offset == MPX_STACK_OFFSET

    def test_seg_bases_4gb_aligned(self):
        layout = make_layout("seg", True, 0, 0)
        assert layout.public.base % (4 << 30) == 0
        assert layout.private.base % (4 << 30) == 0

    def test_heap_does_not_overlap_stack_area(self):
        layout = make_layout("mpx", True, 1 << 20, 0)
        heap_lo, heap_hi = layout.heap_range(False)
        stack_lo, _ = layout.stack_range(False, 7)
        assert heap_hi <= stack_lo

    def test_thread_stacks_disjoint(self):
        layout = make_layout("mpx", True, 0, 0)
        r0 = layout.stack_range(False, 0)
        r1 = layout.stack_range(False, 1)
        assert r1[1] == r0[0]

    def test_flat_layout_has_no_private(self):
        layout = make_layout(None, False, 0, 0)
        assert layout.private is None
        assert layout.offset == 0


class TestLinker:
    def test_globals_in_taint_regions(self):
        binary = compile_source(SIMPLE, OUR_MPX)
        layout = binary.layout
        assert layout.public.contains(binary.global_addrs["g_pub"])
        assert layout.private.contains(binary.global_addrs["g_priv"])

    def test_flat_config_merges_regions(self):
        binary = compile_source(SIMPLE, BASE)
        assert binary.layout.private is None
        assert binary.layout.public.contains(binary.global_addrs["g_priv"])

    def test_magic_prefixes_unique_in_code(self):
        binary = compile_source(SIMPLE, OUR_MPX)
        for word in binary.code:
            if isinstance(word, isa.MagicWord):
                continue
            assert (word.encoding() >> 5) not in (
                binary.mcall_prefix,
                binary.mret_prefix,
            )

    def test_magic_words_patched(self):
        binary = compile_source(SIMPLE, OUR_MPX)
        for word in binary.code:
            if isinstance(word, isa.MagicWord) and word.kind == "call":
                assert word.value >> 5 == binary.mcall_prefix

    def test_magic_deterministic_per_seed(self):
        b1 = compile_source(SIMPLE, OUR_MPX, seed=5)
        b2 = compile_source(SIMPLE, OUR_MPX, seed=5)
        b3 = compile_source(SIMPLE, OUR_MPX, seed=6)
        assert b1.mcall_prefix == b2.mcall_prefix
        assert b1.mcall_prefix != b3.mcall_prefix

    def test_externals_table_first_in_public_globals(self):
        binary = compile_source(SIMPLE, OUR_MPX)
        assert binary.externals_table_addr == binary.layout.public.base

    def test_stub_per_import(self):
        binary = compile_source(SIMPLE, OUR_MPX)
        stubs = [n for n in binary.label_addrs if n.startswith("stub.")]
        assert len(stubs) == len(binary.imports)

    def test_unknown_entry_rejected(self):
        with pytest.raises(LinkError, match="entry"):
            compile_source("int helper() { return 1; }", OUR_MPX, entry="main")

    def test_undefined_function_rejected(self):
        with pytest.raises(Exception, match="never defined"):
            compile_source("int missing(int x); int main() { return missing(1); }",
                           OUR_MPX)

    def test_function_pointers_point_at_magic(self):
        source = T_PROTOTYPES + """
        int f(int x) { return x; }
        int main() { int (*p)(int); p = f; return p(1); }
        """
        binary = compile_source(source, OUR_MPX)
        for word in binary.code:
            if isinstance(word, isa.MovFuncAddr) and word.func == "f":
                assert word.value == CODE_BASE + binary.func_magic_addrs["f"]

    def test_function_pointers_point_at_entry_without_cfi(self):
        source = T_PROTOTYPES + """
        int f(int x) { return x; }
        int main() { int (*p)(int); p = f; return p(1); }
        """
        binary = compile_source(source, BASE)
        for word in binary.code:
            if isinstance(word, isa.MovFuncAddr) and word.func == "f":
                assert word.value == CODE_BASE + binary.label_addrs["f"]


class TestLoader:
    def test_bounds_registers_installed(self):
        process = compile_and_load(SIMPLE, OUR_MPX)
        machine = process.machine
        layout = machine.layout
        assert machine.bnd[0] == (layout.public.base, layout.public.end)
        assert machine.bnd[1] == (layout.private.base, layout.private.end)

    def test_segment_registers_installed(self):
        process = compile_and_load(SIMPLE, OUR_SEG)
        machine = process.machine
        assert machine.fs_base == machine.layout.public.base
        assert machine.gs_base == machine.layout.private.base

    def test_global_initializers_visible(self):
        process = compile_and_load(SIMPLE, OUR_MPX)
        addr = process.machine.binary.global_addrs["g_pub"]
        assert process.machine.mem.read_int(addr, 8) == 3

    def test_externals_table_read_only(self):
        process = compile_and_load(SIMPLE, OUR_MPX)
        table = process.machine.binary.externals_table_addr
        with pytest.raises(MachineFault):
            process.machine.mem.write_int(table, 8, 0xBAD)

    def test_externals_table_holds_native_ids(self):
        process = compile_and_load(SIMPLE, OUR_MPX)
        table = process.machine.binary.externals_table_addr
        first = process.machine.mem.read_int(table, 8)
        assert first == NATIVE_BASE

    def test_guard_between_regions_unmapped(self):
        process = compile_and_load(SIMPLE, OUR_MPX)
        layout = process.machine.layout
        gap = layout.public.end + 100
        assert not process.machine.mem.is_mapped(gap)
