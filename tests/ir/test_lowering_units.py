"""Unit tests on the AST->IR lowering output (pre-optimization)."""

from repro.frontend import lower_program
from repro.ir.core import (
    Bin,
    Call,
    CallIndirect,
    Jump,
    Lea,
    Load,
    Ret,
    Store,
    SwitchBr,
)
from repro.minic import analyze, parse
from repro.runtime.trusted import T_PROTOTYPES
from repro.taint import PRIVATE, PUBLIC


def ir_for(source, fname):
    module = lower_program(analyze(parse(T_PROTOTYPES + source)))
    return module, module.functions[fname]


def instrs(func, klass):
    return [i for b in func.blocks for i in b.instrs if isinstance(i, klass)]


class TestRegions:
    def test_private_deref_gets_private_region(self):
        _, f = ir_for(
            "private int get(private int *p) { return *p; }", "get"
        )
        loads = [
            i for i in instrs(f, Load) if i.mem.base is not None
        ]
        assert loads and all(l.mem.region is PRIVATE for l in loads)

    def test_public_deref_gets_public_region(self):
        _, f = ir_for("int get(int *p) { return *p; }", "get")
        loads = [i for i in instrs(f, Load) if i.mem.base is not None]
        assert loads and all(l.mem.region is PUBLIC for l in loads)

    def test_private_local_slot_is_private(self):
        _, f = ir_for(
            "void f() { private char buf[8]; buf[0] = (private char)1; }",
            "f",
        )
        slot = next(s for s in f.slots if s.name == "buf")
        assert slot.taint is PRIVATE

    def test_char_accesses_are_one_byte(self):
        _, f = ir_for("char g(char *s) { return s[3]; }", "g")
        loads = [i for i in instrs(f, Load) if i.mem.base is not None]
        assert all(l.size == 1 for l in loads)

    def test_member_access_uses_field_offset(self):
        _, f = ir_for(
            """
            struct pair { int a; int b; };
            int snd(struct pair *p) { return p->b; }
            """,
            "snd",
        )
        loads = [i for i in instrs(f, Load) if i.mem.base is not None]
        assert any(l.mem.disp == 8 for l in loads)

    def test_pointer_arith_scales_by_pointee(self):
        _, f = ir_for("int *bump(int *p) { return p + 3; }", "bump")
        adds = [i for i in instrs(f, Bin) if i.op == "add"]
        assert any(24 in (i.a, i.b) for i in adds)


class TestCallMetadata:
    def test_call_records_signature_taints(self):
        _, f = ir_for(
            """
            private int mix(private int a, int b) { return a + b; }
            int main() { return declassify_int(mix((private int)1, 2)); }
            """,
            "main",
        )
        call = next(c for c in instrs(f, Call) if c.name == "mix")
        assert call.arg_taints == [PRIVATE, PUBLIC]
        assert call.ret_taint is PRIVATE

    def test_indirect_call_lowered_with_taints(self):
        _, f = ir_for(
            """
            int id(int x) { return x; }
            int main() { int (*p)(int); p = id; return p(1); }
            """,
            "main",
        )
        icalls = instrs(f, CallIndirect)
        assert len(icalls) == 1
        assert icalls[0].arg_taints == [PUBLIC]

    def test_variadic_args_counted(self):
        _, f = ir_for(
            """
            int v(int n, ...) { return __vararg(0); }
            int main() { return v(2, 10, 20); }
            """,
            "main",
        )
        call = next(c for c in instrs(f, Call) if c.name == "v")
        assert call.n_fixed == 1
        assert len(call.args) == 3


class TestControlLowering:
    def test_switch_becomes_switchbr(self):
        _, f = ir_for(
            """
            int f(int x) {
                switch (x) { case 1: return 1; case 2: return 2; }
                return 0;
            }
            """,
            "f",
        )
        switches = instrs(f, SwitchBr)
        assert len(switches) == 1
        assert sorted(v for v, _t in switches[0].table) == [1, 2]

    def test_fallthrough_blocks_chain(self):
        module, f = ir_for(
            """
            int f(int x) {
                int r = 0;
                switch (x) { case 1: r = 1; case 2: r += 2; break; }
                return r;
            }
            """,
            "f",
        )
        sw = instrs(f, SwitchBr)[0]
        case1 = next(t for v, t in sw.table if v == 1)
        case2 = next(t for v, t in sw.table if v == 2)
        block1 = f.block_map()[case1]
        assert isinstance(block1.terminator, Jump)
        assert block1.terminator.target == case2

    def test_string_literals_become_rodata_globals(self):
        module, f = ir_for(
            'int main() { print_str("hello"); return 0; }', "main"
        )
        rodata = [
            g for g in module.globals.values() if g.name.startswith(".str")
        ]
        assert len(rodata) == 1
        assert rodata[0].init_bytes == b"hello\x00"
        assert rodata[0].read_only

    def test_string_literals_deduplicated(self):
        module, _ = ir_for(
            'int main() { print_str("x"); print_str("x"); return 0; }',
            "main",
        )
        rodata = [
            g for g in module.globals.values() if g.name.startswith(".str")
        ]
        assert len(rodata) == 1

    def test_missing_return_synthesized(self):
        _, f = ir_for("int f(int x) { if (x) { return 1; } }", "f")
        rets = instrs(f, Ret)
        assert len(rets) >= 2  # explicit + synthesized fallback
