"""IR construction and the internal IR verifier."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Bin,
    Block,
    Branch,
    Const,
    IRFunction,
    Jump,
    MemRef,
    Ret,
    Store,
    verify_function,
)
from repro.minic.types import INT, FuncType
from repro.taint import PRIVATE, PUBLIC


def make_func():
    return IRFunction("f", FuncType(INT, []), [])


class TestStructure:
    def test_valid_single_block(self):
        f = make_func()
        b = f.new_block()
        v = f.new_vreg(PUBLIC)
        b.instrs = [Const(v, 1), Ret(v)]
        verify_function(f)

    def test_empty_function_rejected(self):
        with pytest.raises(IRError, match="no blocks"):
            verify_function(make_func())

    def test_empty_block_rejected(self):
        f = make_func()
        f.new_block()
        with pytest.raises(IRError, match="empty block"):
            verify_function(f)

    def test_missing_terminator_rejected(self):
        f = make_func()
        b = f.new_block()
        b.instrs = [Const(f.new_vreg(PUBLIC), 1)]
        with pytest.raises(IRError, match="terminator"):
            verify_function(f)

    def test_terminator_mid_block_rejected(self):
        f = make_func()
        b = f.new_block()
        b.instrs = [Ret(0), Ret(0)]
        with pytest.raises(IRError, match="mid-block"):
            verify_function(f)

    def test_unknown_branch_target_rejected(self):
        f = make_func()
        b = f.new_block()
        b.instrs = [Jump("nowhere")]
        with pytest.raises(IRError, match="unknown target"):
            verify_function(f)


class TestDefUse:
    def test_use_before_def_rejected(self):
        f = make_func()
        b = f.new_block()
        v = f.new_vreg(PUBLIC)
        b.instrs = [Ret(v)]
        with pytest.raises(IRError, match="undefined"):
            verify_function(f)

    def test_def_on_one_path_only_rejected(self):
        f = make_func()
        entry = f.new_block()
        left = f.new_block()
        right = f.new_block()
        join = f.new_block()
        cond = f.new_vreg(PUBLIC)
        v = f.new_vreg(PUBLIC)
        entry.instrs = [Const(cond, 1), Branch(cond, left.name, right.name)]
        left.instrs = [Const(v, 1), Jump(join.name)]
        right.instrs = [Jump(join.name)]  # v not defined here
        join.instrs = [Ret(v)]
        with pytest.raises(IRError, match="undefined"):
            verify_function(f)

    def test_def_on_both_paths_accepted(self):
        f = make_func()
        entry = f.new_block()
        left = f.new_block()
        right = f.new_block()
        join = f.new_block()
        cond = f.new_vreg(PUBLIC)
        v = f.new_vreg(PUBLIC)
        entry.instrs = [Const(cond, 1), Branch(cond, left.name, right.name)]
        left.instrs = [Const(v, 1), Jump(join.name)]
        right.instrs = [Const(v, 2), Jump(join.name)]
        join.instrs = [Ret(v)]
        verify_function(f)

    def test_params_are_defined(self):
        f = make_func()
        p = f.new_vreg(PUBLIC)
        f.param_vregs.append(p)
        b = f.new_block()
        b.instrs = [Ret(p)]
        verify_function(f)


class TestTaintInvariant:
    def test_private_store_to_public_region_rejected(self):
        f = make_func()
        b = f.new_block()
        addr = f.new_vreg(PUBLIC)
        secret = f.new_vreg(PRIVATE)
        b.instrs = [
            Const(addr, 0x1000),
            Const(secret, 7),
            Store(MemRef(region=PUBLIC, base=addr), secret, 8),
            Ret(0),
        ]
        with pytest.raises(IRError, match="private value stored"):
            verify_function(f)

    def test_private_store_to_private_region_ok(self):
        f = make_func()
        b = f.new_block()
        addr = f.new_vreg(PUBLIC)
        secret = f.new_vreg(PRIVATE)
        b.instrs = [
            Const(addr, 0x1000),
            Const(secret, 7),
            Store(MemRef(region=PRIVATE, base=addr), secret, 8),
            Ret(0),
        ]
        verify_function(f)


class TestMemRef:
    def test_needs_exactly_one_anchor(self):
        f = make_func()
        v = f.new_vreg(PUBLIC)
        with pytest.raises(AssertionError):
            MemRef(region=PUBLIC)  # no anchor
        with pytest.raises(AssertionError):
            MemRef(region=PUBLIC, base=v, global_name="g")

    def test_regs_lists_base_and_index(self):
        f = make_func()
        b, i = f.new_vreg(PUBLIC), f.new_vreg(PUBLIC)
        mem = MemRef(region=PUBLIC, base=b, index=i, scale=8)
        assert mem.regs() == [b, i]
