"""Taint lattice and constraint-solver tests (with hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TaintError
from repro.taint import (
    PRIVATE,
    PUBLIC,
    ConstraintSet,
    Taint,
    TaintVar,
    join,
    leq,
    solve,
)


class TestLattice:
    def test_ordering(self):
        assert leq(PUBLIC, PRIVATE)
        assert leq(PUBLIC, PUBLIC)
        assert leq(PRIVATE, PRIVATE)
        assert not leq(PRIVATE, PUBLIC)

    def test_join(self):
        assert join(PUBLIC, PUBLIC) is PUBLIC
        assert join(PUBLIC, PRIVATE) is PRIVATE
        assert join(PRIVATE, PUBLIC) is PRIVATE
        assert join(PRIVATE, PRIVATE) is PRIVATE

    def test_bits(self):
        assert PUBLIC.bit == 0
        assert PRIVATE.bit == 1

    def test_fresh_vars_distinct(self):
        assert TaintVar("a").uid != TaintVar("a").uid


class TestSolver:
    def test_empty_set_solves(self):
        solution = solve(ConstraintSet())
        assert solution.resolve(TaintVar()) is PUBLIC

    def test_chain_propagation(self):
        a, b, c = TaintVar("a"), TaintVar("b"), TaintVar("c")
        cs = ConstraintSet()
        cs.add_le(PRIVATE, a)
        cs.add_le(a, b)
        cs.add_le(b, c)
        solution = solve(cs)
        assert solution.resolve(c) is PRIVATE

    def test_least_solution(self):
        a, b = TaintVar("a"), TaintVar("b")
        cs = ConstraintSet()
        cs.add_le(a, b)  # nothing forces either up
        solution = solve(cs)
        assert solution.resolve(a) is PUBLIC
        assert solution.resolve(b) is PUBLIC

    def test_violation_raises_with_reason(self):
        a = TaintVar("a")
        cs = ConstraintSet()
        cs.add_le(PRIVATE, a)
        cs.add_le(a, PUBLIC, reason="send argument")
        with pytest.raises(TaintError, match="send argument"):
            solve(cs)

    def test_eq_propagates_both_ways(self):
        a, b = TaintVar("a"), TaintVar("b")
        cs = ConstraintSet()
        cs.add_eq(a, b)
        cs.add_le(PRIVATE, b)
        solution = solve(cs)
        assert solution.resolve(a) is PRIVATE

    def test_diamond(self):
        a, b, c, d = (TaintVar(x) for x in "abcd")
        cs = ConstraintSet()
        cs.add_le(a, b)
        cs.add_le(a, c)
        cs.add_le(b, d)
        cs.add_le(c, d)
        cs.add_le(PRIVATE, a)
        solution = solve(cs)
        assert all(solution.resolve(v) is PRIVATE for v in (a, b, c, d))

    def test_cycle_is_fine(self):
        a, b = TaintVar("a"), TaintVar("b")
        cs = ConstraintSet()
        cs.add_le(a, b)
        cs.add_le(b, a)
        cs.add_le(PRIVATE, a)
        solution = solve(cs)
        assert solution.resolve(b) is PRIVATE


@st.composite
def constraint_systems(draw):
    n_vars = draw(st.integers(2, 12))
    variables = [TaintVar(f"v{i}") for i in range(n_vars)]
    n_cons = draw(st.integers(0, 25))
    constraints = []
    for _ in range(n_cons):
        lo = draw(st.sampled_from(variables + [PUBLIC, PRIVATE]))
        hi = draw(st.sampled_from(variables))
        constraints.append((lo, hi))
    return variables, constraints


class TestSolverProperties:
    @given(constraint_systems())
    @settings(max_examples=200, deadline=None)
    def test_solution_satisfies_all_constraints(self, system):
        variables, constraints = system
        cs = ConstraintSet()
        for lo, hi in constraints:
            cs.add_le(lo, hi)
        solution = solve(cs)  # hi is always a var, so always solvable
        for lo, hi in constraints:
            assert leq(solution.resolve(lo), solution.resolve(hi))

    @given(constraint_systems())
    @settings(max_examples=200, deadline=None)
    def test_solution_is_least(self, system):
        """No variable is PRIVATE unless some constraint chain from the
        PRIVATE constant forces it."""
        variables, constraints = system
        cs = ConstraintSet()
        for lo, hi in constraints:
            cs.add_le(lo, hi)
        solution = solve(cs)
        # Compute reachability from PRIVATE through the constraint graph.
        forced = set()
        changed = True
        while changed:
            changed = False
            for lo, hi in constraints:
                lo_hot = (lo is PRIVATE) or (
                    isinstance(lo, TaintVar) and lo.uid in forced
                )
                if lo_hot and isinstance(hi, TaintVar) and hi.uid not in forced:
                    forced.add(hi.uid)
                    changed = True
        for v in variables:
            expected = PRIVATE if v.uid in forced else PUBLIC
            assert solution.resolve(v) is expected
