"""The uniform serving contract: every registered app is drivable as
``handle_request(bytes) -> bytes``, repeatedly, on one instance.

Also pins the dirserver re-invocation fix: its bind cache used to key
on the username alone, so once any request authenticated, a later
request with the *wrong* password for the same user sailed through.
Under per-connection batching that is a real cross-request privilege
leak, so the cache now stores and compares the encrypted wire password
too.
"""

from __future__ import annotations

import struct

import pytest

from repro import OUR_MPX, TrustedRuntime
from repro.serve import SERVE_APPS, ServeInstance, build_app_image


@pytest.mark.parametrize("name", sorted(SERVE_APPS))
def test_repeated_requests_on_one_instance(name):
    """Six requests straight through one fork, no resets: every app
    must loop and answer each one correctly."""
    app = SERVE_APPS[name]
    image, _ = build_app_image(app, OUR_MPX, seed=1)
    instance = ServeInstance(
        image.fork(), request_fd=app.request_fd,
        response_fd=app.response_fd,
    )
    n = 3 if name == "classifier" else 6  # classifier is ~200k cycles/req
    for index in range(n):
        payload = app.encode_request(instance.runtime, index)
        response = instance.handle_request(payload)
        assert instance.exit_code is None, "app left its serve loop"
        assert app.check_response(instance.runtime, payload, response), (
            f"{name}: bad response for request {index}"
        )
        assert instance.last_instructions > 0


def test_requests_encode_identically_from_restored_runtime():
    """Request encoding only depends on image state, so a runtime
    restored from the image (what the load generator uses) encodes the
    same bytes the instance's own runtime would."""
    app = SERVE_APPS["webserver"]
    image, _ = build_app_image(app, OUR_MPX, seed=1)
    instance = ServeInstance(image.fork())
    external = TrustedRuntime()
    external.restore_state(image.runtime_state)
    for index in range(4):
        assert app.encode_request(external, index) == app.encode_request(
            instance.runtime, index
        )


def test_dirserver_rejects_wrong_password_after_cached_bind():
    """Regression: a successful bind must not let a later request with
    a wrong password ride the auth cache (same instance, no reset)."""
    app = SERVE_APPS["dirserver"]
    image, _ = build_app_image(app, OUR_MPX, seed=1)
    instance = ServeInstance(image.fork())
    runtime = instance.runtime

    good = app.encode_request(runtime, 0)
    response = instance.handle_request(good)
    assert struct.unpack_from("<q", response, 0)[0] >= 0

    wrong = runtime.encrypt_with(
        runtime.session_key, b"wrong".ljust(16, b"\x00")
    )
    bad = (
        struct.pack("<q", 2) + b"alice\x00\x00\x00" + wrong
    ).ljust(48, b"\x00")
    response = instance.handle_request(bad)
    assert struct.unpack_from("<q", response, 0)[0] == -2

    # And a correct bind afterwards still works.
    good = app.encode_request(runtime, 3)
    response = instance.handle_request(good)
    assert app.check_response(runtime, good, response)
