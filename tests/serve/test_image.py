"""MachineImage snapshot/fork: forks must be bit-identical to the
machine they were frozen from, across configs and engines, and fully
isolated from each other.

``machine_signature`` (from the engine-equivalence suite) covers exit
code, per-core cycles, every Stats field, fault accounting, cache
hit/miss counts, register files, and pcs; ``Memory.content_signature``
covers every non-zero byte of memory independent of which pages happen
to be lazily materialized.  Together they pin the image contract: a
fork *is* the machine, not an approximation of it.
"""

from __future__ import annotations

import pytest

from repro import BASE, OUR_MPX, OUR_SEG, TrustedRuntime
from repro.compiler import compile_source
from repro.errors import ServeError
from repro.link.loader import load
from repro.serve import (
    SERVE_APPS,
    MachineImage,
    ServeInstance,
    build_app_image,
    resume_overhead_cycles,
    run_to_request,
)
from repro.serve.apps import echo_request

from tests.machine.test_engine_equivalence import machine_signature

CONFIGS = (BASE, OUR_MPX, OUR_SEG)
ENGINES = ("predecoded", "superblock", "reference")

ECHO = SERVE_APPS["echo"]


def warm_process(config, engine, seed=3):
    """The cold path: compile + load + run to the first request wait."""
    # Base carries no instrumentation for ConfVerify to accept.
    binary = compile_source(
        ECHO.source, config, seed=seed, verify=config is not BASE
    )
    process = load(binary, runtime=TrustedRuntime(), engine=engine)
    run_to_request(process)
    return process


def full_signature(process):
    return (
        machine_signature(process.machine),
        process.machine.mem.content_signature(),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fork_bit_identical_to_cold_load(config, engine):
    cold = warm_process(config, engine)
    image = MachineImage.snapshot(cold)
    fork = image.fork()
    assert full_signature(fork) == full_signature(cold)
    # And behaviourally identical: the same request costs the same
    # cycles and produces the same bytes on both.
    cold_inst = ServeInstance(cold)
    fork_inst = ServeInstance(fork)
    payload = echo_request(4)
    assert fork_inst.handle_request(payload) == cold_inst.handle_request(
        payload
    )
    assert full_signature(fork) == full_signature(cold)


@pytest.mark.parametrize("config", (OUR_MPX,), ids=lambda c: c.name)
def test_fork_engines_agree(config):
    """A reference-engine fork of a predecoded-built image serves the
    same bytes for the same cycles."""
    image, _ = build_app_image(ECHO, config, seed=3)
    pre = ServeInstance(image.fork(engine="predecoded"))
    ref = ServeInstance(image.fork(engine="reference"))
    for i in range(3):
        payload = echo_request(i)
        assert pre.handle_request(payload) == ref.handle_request(payload)
        assert pre.last_cycles == ref.last_cycles
        assert pre.last_instructions == ref.last_instructions
    assert full_signature(pre.process) == full_signature(ref.process)


def test_fork_isolation():
    """Tenant A's writes are never visible in tenant B's fork."""
    image, _ = build_app_image(ECHO, OUR_MPX, seed=3)
    a = ServeInstance(image.fork())
    b = ServeInstance(image.fork())
    before = full_signature(b.process)
    for i in range(5):
        a.handle_request(echo_request(i))
    # B saw nothing: not one byte of memory, not one cycle.
    assert full_signature(b.process) == before
    # And the image itself is immutable: a brand-new fork still equals
    # B, not A.
    c = ServeInstance(image.fork())
    assert full_signature(c.process) == before


def test_fork_after_request_resets_to_fork_before():
    """reset() rewinds a used fork to exactly a fresh fork's state."""
    image, _ = build_app_image(ECHO, OUR_MPX, seed=3)
    used = ServeInstance(image.fork())
    fresh = ServeInstance(image.fork())
    pristine = full_signature(fresh.process)
    for i in range(4):
        used.handle_request(echo_request(i))
    assert full_signature(used.process) != pristine
    used.reset()
    assert full_signature(used.process) == pristine
    # Identical service cost from the reset fork and the fresh one.
    assert used.handle_request(echo_request(9)) == fresh.handle_request(
        echo_request(9)
    )
    assert used.last_cycles == fresh.last_cycles


def test_warm_image_skips_initialization_per_request():
    """The resume replay is tiny compared to app initialization — the
    whole point of warm images (dirserver repopulates 20k entries on a
    cold start)."""
    app = SERVE_APPS["dirserver"]
    image, _ = build_app_image(app, OUR_MPX, seed=3)
    instance = ServeInstance(image.fork())
    resume = resume_overhead_cycles(instance)
    assert image.warmup_cycles >= 100 * resume


def test_run_to_request_rejects_exiting_program():
    from repro.runtime.trusted import T_PROTOTYPES

    binary = compile_source(
        T_PROTOTYPES + "int main() { return 7; }", OUR_MPX, seed=3
    )
    process = load(binary, runtime=TrustedRuntime())
    with pytest.raises(ServeError):
        run_to_request(process)
