"""Fleet scheduler: admission, batching, budgets, fault isolation.

Uses the echo app throughout — it is a few hundred instructions per
request, has an on-demand divide-by-zero trap (a machine fault, the
same class ConfLLVM's inserted checks raise) and an infinite-spin
request for exercising per-request instruction budgets.
"""

from __future__ import annotations

import pytest

from repro import OUR_MPX
from repro.errors import ServeError
from repro.serve import SERVE_APPS, Fleet, build_app_image
from repro.serve.apps import (
    echo_fault_request,
    echo_request,
    echo_spin_request,
)

APP = SERVE_APPS["echo"]


@pytest.fixture(scope="module")
def image():
    img, _ = build_app_image(APP, OUR_MPX, seed=1)
    return img


def check(payload, response):
    from repro import TrustedRuntime

    return APP.check_response(TrustedRuntime(), payload, response)


def test_fleet_serves_correct_responses(image):
    stream = [
        (f"tenant{i % 3}", echo_request(i)) for i in range(30)
    ]
    fleet = Fleet(image, 3, pool_size=2)
    results = fleet.serve(stream)
    assert len(results) == 30
    assert [r.index for r in results] == list(range(30))
    for (tenant, payload), result in zip(stream, results):
        assert result.tenant == tenant
        assert result.ok
        assert check(payload, result.response)
    counters = fleet.counters()
    assert sum(c["requests"] for c in counters.values()) == 30
    assert counters["tenant0"]["requests"] == 10
    assert all(c["faults"] == 0 for c in counters.values())


def test_fault_kills_only_its_fork(image):
    """A faulting request is reported, its fork is reset, and every
    other request — same tenant and others — still completes."""
    stream = []
    for i in range(24):
        tenant = f"tenant{i % 2}"
        payload = (
            echo_fault_request() if i in (3, 7) else echo_request(i)
        )
        stream.append((tenant, payload))
    fleet = Fleet(image, 2, pool_size=2)
    results = fleet.serve(stream)
    faulted = [r for r in results if r.fault is not None]
    assert [r.index for r in faulted] == [3, 7]
    assert all(r.fault == "divide-error" for r in faulted)
    assert all(not r.evicted for r in faulted)
    for (tenant, payload), result in zip(stream, results):
        if result.fault is None:
            assert result.ok and check(payload, result.response)
    counters = fleet.counters()
    assert counters["tenant1"]["faults"] == 2  # indexes 3 and 7 are odd
    assert counters["tenant0"]["faults"] == 0
    # Every request got a full reset (batch=1) — faults do not add an
    # extra one on top of the per-request reset.
    assert counters["tenant1"]["resets"] == counters["tenant1"]["requests"]


def test_budget_exhaustion_evicts(image):
    stream = [
        ("tenant0", echo_request(0)),
        ("tenant0", echo_spin_request()),
        ("tenant0", echo_request(2)),
    ]
    fleet = Fleet(image, 1, pool_size=1, budget=50_000)
    results = fleet.serve(stream)
    assert [r.ok for r in results] == [True, False, True]
    spun = results[1]
    assert spun.fault == "instruction-budget-exhausted"
    assert spun.evicted
    # The evicted request still reports what it burned before eviction.
    assert spun.instructions >= 50_000
    counters = fleet.counters()["tenant0"]
    assert counters["evictions"] == 1
    assert counters["faults"] == 1


def test_batching_matches_unbatched_responses(image):
    stream = [(f"tenant{i % 2}", echo_request(i)) for i in range(16)]
    unbatched = Fleet(image, 2, pool_size=1, batch=1).serve(stream)
    batched = Fleet(image, 2, pool_size=1, batch=4).serve(stream)
    assert [r.response for r in batched] == [
        r.response for r in unbatched
    ]
    assert all(r.ok for r in batched)


def test_batch_one_totals_are_deterministic(image):
    stream = [(f"tenant{i % 4}", echo_request(i)) for i in range(40)]

    def run():
        fleet = Fleet(image, 4, pool_size=2)
        results = fleet.serve(stream)
        return (
            [(r.index, r.cycles, r.instructions, r.checks) for r in results],
            {
                name: {
                    k: v
                    for k, v in c.items()
                    if k != "max_queue_depth"
                }
                for name, c in fleet.counters().items()
            },
        )

    assert run() == run()


def test_rejects_bad_topology(image):
    with pytest.raises(ServeError):
        Fleet(image, 0)
    with pytest.raises(ServeError):
        Fleet(image, ["a", "a"])
    with pytest.raises(ServeError):
        Fleet(image, 2, pool_size=0)
    with pytest.raises(ServeError):
        Fleet(image, 2, batch=0)
    fleet = Fleet(image, ["a"], pool_size=1)
    with pytest.raises(ServeError):
        fleet.serve([("nobody", b"x" * 16)])


def test_publish_metrics(image):
    from repro.obs import events

    fleet = Fleet(image, 2, pool_size=1)
    fleet.serve([(f"tenant{i % 2}", echo_request(i)) for i in range(6)])
    registry = events.Registry()
    fleet.publish_metrics(registry)
    snapshot = registry.metrics_snapshot()
    requests = {
        key: value
        for key, value in snapshot.items()
        if key.startswith("serve.requests")
    }
    assert sum(requests.values()) == 6


def test_publish_metrics_full_counter_set(image):
    """publish_metrics must mirror every TenantCounters field — it used
    to drop instructions, checks, batches, and max_queue_depth."""
    from repro.obs import events

    fleet = Fleet(image, 2, pool_size=1, budget=50_000)
    stream = [(f"tenant{i % 2}", echo_request(i)) for i in range(6)]
    stream.append(("tenant0", echo_spin_request()))
    fleet.serve(stream)
    registry = events.Registry()
    fleet.publish_metrics(registry)
    snapshot = registry.metrics_snapshot()
    for tenant, counters in fleet.counters().items():
        for key, value in counters.items():
            metric = f"serve.{key}{{tenant={tenant}}}"
            assert snapshot.get(metric) == value, metric
    assert sum(
        value
        for key, value in snapshot.items()
        if key.startswith("serve.instructions")
    ) > 0
    assert snapshot[f"serve.evictions{{tenant=tenant0}}"] == 1


class TestWorkerCrash:
    """A dead pool worker must surface its exception immediately
    instead of deadlocking serve_async.

    Before the fix, ``await pool.queue.join()`` waited forever for
    ``task_done()`` calls the crashed worker would never make, and a
    producer blocked in ``queue.put()`` waited forever for consumers
    that no longer existed.  ``asyncio.wait_for`` turns a regression
    back into a test failure rather than a hung suite.
    """

    TIMEOUT = 10.0

    @staticmethod
    def _crash_serve_one(monkeypatch, message):
        from repro.serve.scheduler import TenantPool

        def explode(self, instance, pending, dequeued):
            raise RuntimeError(message)

        monkeypatch.setattr(TenantPool, "_serve_one", explode)

    def _serve(self, fleet, stream):
        import asyncio

        async def run():
            return await asyncio.wait_for(
                fleet.serve_async(stream), timeout=self.TIMEOUT
            )

        return asyncio.run(run())

    def test_crash_unblocks_queue_join(self, image, monkeypatch):
        self._crash_serve_one(monkeypatch, "slot exploded")
        fleet = Fleet(image, 1, pool_size=1)
        with pytest.raises(RuntimeError, match="slot exploded"):
            self._serve(fleet, [("tenant0", echo_request(0))])

    def test_crash_unblocks_full_queue_submit(self, image, monkeypatch):
        # queue_depth=1 with a single dead consumer: without the fix
        # the producer blocks forever inside submit() on request #3.
        self._crash_serve_one(monkeypatch, "slot exploded")
        fleet = Fleet(image, 1, pool_size=1, queue_depth=1)
        stream = [("tenant0", echo_request(i)) for i in range(8)]
        with pytest.raises(RuntimeError, match="slot exploded"):
            self._serve(fleet, stream)

    def test_crash_in_one_pool_stops_whole_run(self, image, monkeypatch):
        # Multi-tenant: a crash anywhere surfaces even while other
        # pools' queues still hold work.
        self._crash_serve_one(monkeypatch, "slot exploded")
        fleet = Fleet(image, 3, pool_size=2)
        stream = [(f"tenant{i % 3}", echo_request(i)) for i in range(12)]
        with pytest.raises(RuntimeError, match="slot exploded"):
            self._serve(fleet, stream)

    def test_healthy_fleet_unaffected_by_raceable_paths(self, image):
        # The raced submit/join paths must not change results when no
        # worker dies — including with a tiny queue that forces the
        # blocking-put branch.
        stream = [("tenant0", echo_request(i)) for i in range(8)]
        fleet = Fleet(image, 1, pool_size=1, queue_depth=1)
        results = self._serve(fleet, stream)
        assert [r.index for r in results] == list(range(8))
        assert all(r.ok for r in results)
