"""Optimizer interaction with SwitchBr."""

from repro.frontend import lower_program
from repro.ir.core import Jump, SwitchBr
from repro.minic import analyze, parse
from repro.opt import optimize_module
from tests.conftest import run_minic
from repro import BASE, OUR_MPX


def terminators(module, fname):
    return [b.terminator for b in module.functions[fname].blocks]


class TestSwitchFolding:
    def test_constant_scrutinee_folds_to_jump(self):
        module = lower_program(analyze(parse(
            """
            int f() {
                switch (2) { case 1: return 10; case 2: return 20; }
                return 0;
            }
            """
        )))
        optimize_module(module)
        assert not any(
            isinstance(t, SwitchBr) for t in terminators(module, "f")
        )

    def test_constant_miss_folds_to_default(self):
        module = lower_program(analyze(parse(
            """
            int f() {
                switch (77) { case 1: return 10; default: return 5; }
                return 0;
            }
            """
        )))
        optimize_module(module)
        assert not any(
            isinstance(t, SwitchBr) for t in terminators(module, "f")
        )

    def test_folded_switch_still_correct(self):
        source = """
        int main() {
            int r = 0;
            switch (3) { case 1: r = 1; break; case 3: r = 33; break;
                         default: r = 9; }
            return r;
        }
        """
        for config in (BASE, OUR_MPX):
            rc, _ = run_minic(source, config)
            assert rc == 33

    def test_dynamic_switch_survives(self):
        module = lower_program(analyze(parse(
            """
            int f(int x) {
                switch (x) { case 1: return 10; case 2: return 20; }
                return 0;
            }
            """
        )))
        optimize_module(module)
        assert any(
            isinstance(t, SwitchBr) for t in terminators(module, "f")
        )
