"""Optimizer pass tests: correctness preservation and effectiveness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BASE, OUR_MPX
from repro.frontend import lower_program
from repro.ir import Bin, Const, Copy, Load, Store, verify_module
from repro.minic import analyze, parse
from repro.opt import (
    copyprop_and_fold,
    cse_local,
    dce,
    optimize_module,
    promote_slots,
    simplify_cfg,
)
from tests.conftest import run_minic


def ir_of(source, optimize=None):
    module = lower_program(analyze(parse(source)))
    if optimize:
        optimize(module)
    return module


def count_instrs(func, klass):
    return sum(
        isinstance(i, klass) for b in func.blocks for i in b.instrs
    )


class TestPromoteSlots:
    SOURCE = """
    int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { s += i; }
        return s;
    }
    """

    def test_scalars_promoted(self):
        module = ir_of(self.SOURCE)
        f = module.functions["f"]
        assert len(f.slots) == 3  # n, s, i
        promote_slots(f)
        assert len(f.slots) == 0
        verify_module(module)

    def test_address_taken_not_promoted(self):
        module = ir_of(
            """
            int f() { int x = 1; int *p = &x; *p = 5; return x; }
            """
        )
        f = module.functions["f"]
        promote_slots(f)
        assert any(s.name == "x" for s in f.slots)

    def test_arrays_not_promoted(self):
        module = ir_of("int f() { int a[4]; a[0] = 1; return a[0]; }")
        f = module.functions["f"]
        promote_slots(f)
        assert any(s.name == "a" for s in f.slots)

    def test_promotion_reduces_memory_traffic(self):
        module = ir_of(self.SOURCE)
        f = module.functions["f"]
        before = count_instrs(f, Load) + count_instrs(f, Store)
        promote_slots(f)
        after = count_instrs(f, Load) + count_instrs(f, Store)
        assert after < before


class TestFoldAndDCE:
    def test_constant_expressions_fold(self):
        module = ir_of("int f() { return (3 + 4) * (10 - 4); }")
        f = module.functions["f"]
        promote_slots(f)
        copyprop_and_fold(f)
        dce(f)
        simplify_cfg(f)
        # The whole body should reduce to "ret 42".
        assert len(f.blocks) == 1
        assert len(f.blocks[0].instrs) == 1

    def test_dead_loads_removed(self):
        module = ir_of(
            "int g;\nint f() { int dead = g; return 7; }"
        )
        f = module.functions["f"]
        promote_slots(f)
        copyprop_and_fold(f)
        changed = dce(f)
        assert changed
        assert count_instrs(f, Load) == 0

    def test_stores_never_removed(self):
        module = ir_of("int g;\nvoid f() { g = 1; }")
        f = module.functions["f"]
        optimize_module(module)
        assert count_instrs(module.functions["f"], Store) == 1

    def test_branch_on_constant_folds(self):
        module = ir_of("int f() { if (1) { return 3; } return 4; }")
        optimize_module(module)
        f = module.functions["f"]
        assert len(f.blocks) == 1


class TestSimplifyCFG:
    def test_unreachable_blocks_removed(self):
        module = ir_of(
            "int f() { return 1; int x = 2; return x; }"
        )
        f = module.functions["f"]
        optimize_module(module)
        assert len(f.blocks) == 1

    def test_jump_threading(self):
        module = ir_of(
            """
            int f(int c) {
                int r = 0;
                if (c) { r = 1; } else { r = 2; }
                return r;
            }
            """
        )
        optimize_module(module)
        verify_module(module)


class TestCSE:
    def test_redundant_exprs_deduped(self):
        module = ir_of(
            """
            int f(int a, int b) {
                int x = a * b + 3;
                int y = a * b + 4;
                return x + y;
            }
            """
        )
        f = module.functions["f"]
        promote_slots(f)
        copyprop_and_fold(f)
        muls_before = sum(
            1
            for b in f.blocks
            for i in b.instrs
            if isinstance(i, Bin) and i.op == "mul"
        )
        cse_local(f)
        copyprop_and_fold(f)
        dce(f)
        muls_after = sum(
            1
            for b in f.blocks
            for i in b.instrs
            if isinstance(i, Bin) and i.op == "mul"
        )
        assert muls_before == 2
        assert muls_after == 1

    def test_cse_only_runs_in_vanilla_pipeline(self):
        source = """
        int f(int a, int b) { return (a * b) + (a * b); }
        """
        mod_vanilla = ir_of(source)
        optimize_module(mod_vanilla, pipeline="vanilla")
        mod_conf = ir_of(source)
        optimize_module(mod_conf, pipeline="confllvm")

        def muls(m):
            return sum(
                1
                for blk in m.functions["f"].blocks
                for i in blk.instrs
                if isinstance(i, Bin) and i.op == "mul"
            )

        assert muls(mod_vanilla) == 1
        assert muls(mod_conf) == 2


class TestSemanticPreservation:
    """Differential testing: O0-ish vs full pipelines must agree."""

    PROGRAMS = [
        ("int main() { int s=0; for (int i=0;i<17;i++){ s+=i*i; } return s & 255; }", None),
        ("int main() { int a[6]; for (int i=0;i<6;i++){a[i]=i;} int s=0;"
         " for (int i=0;i<6;i++){s=s*10+a[5-i];} return s & 255; }", None),
        ("int f(int x){ if (x>3){return x*2;} return x+100; }"
         " int main(){ return f(2)+f(10); }", None),
    ]

    @pytest.mark.parametrize("source,_", PROGRAMS)
    def test_base_and_confllvm_agree(self, source, _):
        rc_base, _p = run_minic(source, BASE)
        rc_mpx, _p = run_minic(source, OUR_MPX)
        assert rc_base == rc_mpx

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["+", "-", "*", "&", "|", "^"]),
                st.integers(0, 200),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_random_expression_chains(self, ops):
        body = "int x = 1;\n"
        for op, value in ops:
            body += f"    x = (x {op} {value}) & 0xffff;\n"
        source = f"int main() {{\n{body}    return x & 127; }}"
        rc_base, _ = run_minic(source, BASE)
        rc_mpx, _ = run_minic(source, OUR_MPX)
        assert rc_base == rc_mpx
