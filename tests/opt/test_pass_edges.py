"""Edge-case tests for the certified passes (satellite of the
certified-optimization issue): jump-only blocks and self-loops for
simplify_cfg, cross-taint computations for cse_local, and
taint-crossing slot accesses for promote_slots.  Everything runs
through :func:`run_certified_pass`, so a pass misbehaving on an edge
case is caught twice — by the assertion and by the witness checker."""

from repro.frontend import lower_program
from repro.ir import (
    Bin,
    Const,
    Copy,
    IRFunction,
    Jump,
    Load,
    MemRef,
    Ret,
    Store,
    verify_function,
    verify_module,
)
from repro.minic import analyze, parse
from repro.minic.types import INT, FuncType
from repro.opt import run_certified_pass
from repro.opt.pipeline import (
    CSE_LOCAL,
    DCE,
    PROMOTE_SLOTS,
    SIMPLIFY_CFG,
)
from repro.taint import PRIVATE, PUBLIC


def make_func():
    return IRFunction("f", FuncType(INT, []), [])


def certified(pass_obj, func):
    changed, witness = run_certified_pass(pass_obj, func)
    if changed:
        assert witness is not None  # accepted, not reverted
    return changed


class TestSimplifyCfgEdges:
    def test_jump_only_self_loop_terminates(self):
        """A single-jump block targeting itself must not hang the
        thread-chain resolver."""
        f = make_func()
        entry = f.new_block()
        loop = f.new_block()
        entry.instrs = [Jump(loop.name)]
        loop.instrs = [Jump(loop.name)]
        certified(SIMPLIFY_CFG, f)
        verify_function(f)
        # Still an infinite loop: some block targets itself.
        assert any(
            b.instrs[-1].target == b.name
            for b in f.blocks
            if isinstance(b.instrs[-1], Jump)
        )

    def test_two_block_jump_cycle_terminates(self):
        """a -> b -> a, both jump-only: the resolver's cycle guard."""
        f = make_func()
        entry = f.new_block()
        a = f.new_block()
        b = f.new_block()
        entry.instrs = [Jump(a.name)]
        a.instrs = [Jump(b.name)]
        b.instrs = [Jump(a.name)]
        certified(SIMPLIFY_CFG, f)
        verify_function(f)

    def test_jump_chain_threads_to_final_target(self):
        """entry -> a -> b -> exit collapses; the empty hops die."""
        f = make_func()
        entry = f.new_block()
        a = f.new_block()
        b = f.new_block()
        exit_b = f.new_block()
        v = f.new_vreg(PUBLIC)
        entry.instrs = [Const(v, 1), Jump(a.name)]
        a.instrs = [Jump(b.name)]
        b.instrs = [Jump(exit_b.name)]
        exit_b.instrs = [Ret(v)]
        assert certified(SIMPLIFY_CFG, f)
        verify_function(f)
        names = {blk.name for blk in f.blocks}
        assert a.name not in names and b.name not in names
        # Threading plus merging collapses everything into the entry
        # block, which now returns directly.
        assert isinstance(f.blocks[0].instrs[-1], Ret)

    def test_unreachable_self_loop_removed(self):
        f = make_func()
        entry = f.new_block()
        dead = f.new_block()
        v = f.new_vreg(PUBLIC)
        entry.instrs = [Const(v, 0), Ret(v)]
        dead.instrs = [Jump(dead.name)]
        assert certified(SIMPLIFY_CFG, f)
        assert [blk.name for blk in f.blocks] == [entry.name]


class TestCseEdges:
    def build(self, dst_taint):
        """v3 = a+b (public); v4 = a+b with ``dst_taint``; ret v4."""
        f = make_func()
        blk = f.new_block()
        a = f.new_vreg(PUBLIC)
        b = f.new_vreg(PUBLIC)
        first = f.new_vreg(PUBLIC)
        second = f.new_vreg(dst_taint)
        blk.instrs = [
            Const(a, 2),
            Const(b, 3),
            Bin("add", first, a, b),
            Bin("add", second, a, b),
            Ret(second),
        ]
        return f, blk

    def test_same_taint_computation_merged(self):
        f, blk = self.build(PUBLIC)
        assert certified(CSE_LOCAL, f)
        assert isinstance(blk.instrs[3], Copy)
        verify_function(f)

    def test_taint_crossing_computation_not_merged(self):
        """An identical computation into a PRIVATE register must not be
        replaced by a copy of the PUBLIC one (that would launder the
        label); the pass declines and the IR is unchanged."""
        f, blk = self.build(PRIVATE)
        before = [repr(i) for i in blk.instrs]
        changed = certified(CSE_LOCAL, f)
        assert not changed
        assert [repr(i) for i in blk.instrs] == before

    def test_empty_available_set_after_call(self):
        source = """
        int g(int x) { return x + 1; }
        int main() {
            int a = 2 + 3;
            int b = g(a);
            int c = 2 + 3;
            return b + c;
        }
        """
        module = lower_program(analyze(parse(source)))
        main = module.functions["main"]
        certified(CSE_LOCAL, main)
        verify_module(module)


class TestPromoteSlotEdges:
    def test_private_slot_promotes_to_private_register(self):
        """Promotion preserves the slot's taint on the new register and
        on every rewritten access (the taint-crossing guard)."""
        f = make_func()
        blk = f.new_block()
        slot = f.new_slot("secret", 8, 8, PRIVATE)
        v = f.new_vreg(PRIVATE)
        out = f.new_vreg(PRIVATE)
        blk.instrs = [
            Const(v, 9),
            Store(MemRef(PRIVATE, slot=slot), v, 8),
            Load(out, MemRef(PRIVATE, slot=slot), 8),
            Ret(out),
        ]
        assert certified(PROMOTE_SLOTS, f)
        assert not f.slots
        promoted = [
            i.dst
            for b in f.blocks
            for i in b.instrs
            if isinstance(i, Copy) and i.dst.hint.startswith("p.")
        ]
        assert promoted and all(p.taint is PRIVATE for p in promoted)
        verify_function(f)

    def test_partial_access_blocks_promotion(self):
        """A 1-byte access to an 8-byte slot is not a whole-slot access;
        the slot must survive."""
        f = make_func()
        blk = f.new_block()
        slot = f.new_slot("x", 8, 8, PUBLIC)
        v = f.new_vreg(PUBLIC)
        out = f.new_vreg(PUBLIC)
        blk.instrs = [
            Const(v, 1),
            Store(MemRef(PUBLIC, slot=slot), v, 8),
            Load(out, MemRef(PUBLIC, slot=slot), 1),
            Ret(out),
        ]
        changed = certified(PROMOTE_SLOTS, f)
        assert not changed and f.slots

    def test_displaced_access_blocks_promotion(self):
        f = make_func()
        blk = f.new_block()
        slot = f.new_slot("x", 8, 8, PUBLIC)
        v = f.new_vreg(PUBLIC)
        out = f.new_vreg(PUBLIC)
        blk.instrs = [
            Const(v, 1),
            Store(MemRef(PUBLIC, slot=slot), v, 8),
            Load(out, MemRef(PUBLIC, slot=slot, disp=4), 8),
            Ret(out),
        ]
        changed = certified(PROMOTE_SLOTS, f)
        assert not changed and f.slots


class TestDceEdges:
    def test_dce_ignores_stores_and_keeps_liveness(self):
        """Stores are impure; only the genuinely dead Const dies."""
        f = make_func()
        blk = f.new_block()
        slot = f.new_slot("x", 8, 8, PUBLIC)
        live = f.new_vreg(PUBLIC)
        dead = f.new_vreg(PUBLIC)
        blk.instrs = [
            Const(live, 1),
            Const(dead, 2),
            Store(MemRef(PUBLIC, slot=slot), live, 8),
            Ret(live),
        ]
        assert certified(DCE, f)
        kinds = [type(i).__name__ for i in blk.instrs]
        assert kinds == ["Const", "Store", "Ret"]
        verify_function(f)
