"""Certified pass framework tests: witness emission, validation,
rejection-and-revert, and the bounded fixpoint loop."""

import pytest

from repro.frontend import lower_program
from repro.ir import Const, VReg, verify_module
from repro.minic import analyze, parse
from repro.obs import events
from repro.opt import (
    MAX_ITERATIONS,
    Obligation,
    Pass,
    Witness,
    WitnessError,
    check_witness,
    function_digest,
    optimize_module,
    run_certified_pass,
    snapshot_function,
)
from repro.opt.pipeline import DCE, ITER_PASSES, PROMOTE_SLOTS
from repro.runtime.trusted import T_PROTOTYPES
from repro.taint import Taint

SOURCE = """
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i + 0; }
    return s * 1;
}

int main() { return f(5); }
"""


def ir_of(source=SOURCE):
    return lower_program(analyze(parse(source)))


def blocks_repr(func):
    return {b.name: [repr(i) for i in b.instrs] for b in func.blocks}


def emit_witness(pass_obj, func):
    """Run one pass by hand, returning (snapshot, accepted witness)."""
    snapshot = snapshot_function(func)
    witness = Witness(
        pass_obj.name, func.name, func.origin, function_digest(func)
    )
    changed = pass_obj.fn(func, witness=witness)
    assert changed, f"{pass_obj.name} made no change on the test input"
    witness.post_digest = function_digest(func)
    check_witness(witness, snapshot, func)
    return snapshot, witness


class TestAcceptance:
    def test_real_passes_accepted_and_applied(self):
        module = ir_of()
        f = module.functions["f"]
        before = function_digest(f)
        changed, witness = run_certified_pass(PROMOTE_SLOTS, f)
        assert changed and witness is not None
        assert witness.post_digest == function_digest(f) != before
        assert witness.obligations
        verify_module(module)

    def test_unchanged_pass_returns_no_witness(self):
        module = ir_of("int main() { return 0; }")
        f = module.functions["main"]
        changed, witness = run_certified_pass(DCE, f)
        assert not changed and witness is None

    def test_full_pipeline_accepts_everything(self):
        registry = events.Registry()
        with events.use(registry):
            module = optimize_module(ir_of())
        snap = registry.metrics_snapshot()
        rejected = {
            k: v for k, v in snap.items() if "witness_rejected" in k
        }
        assert not rejected, rejected
        assert module.opt_witness_digest

    def test_witness_digest_deterministic(self):
        a = optimize_module(ir_of()).opt_witness_digest
        b = optimize_module(ir_of()).opt_witness_digest
        assert a == b


class TestRejection:
    def corrupt_and_expect(self, mutate):
        module = ir_of()
        f = module.functions["f"]
        snapshot, witness = emit_witness(PROMOTE_SLOTS, f)
        mutate(witness)
        with pytest.raises(WitnessError):
            check_witness(witness, snapshot, f)

    def test_stale_pre_digest(self):
        self.corrupt_and_expect(
            lambda w: setattr(w, "pre_digest", "0" * 64)
        )

    def test_stale_post_digest(self):
        self.corrupt_and_expect(
            lambda w: setattr(w, "post_digest", "0" * 64)
        )

    def test_dropped_obligations(self):
        self.corrupt_and_expect(lambda w: w.obligations.clear())

    def test_phantom_obligation_on_unchanged_block(self):
        self.corrupt_and_expect(
            lambda w: w.obligations.append(
                Obligation("taint", "__phantom__@0", ("rewrite", (), ()))
            )
        )

    def test_wrong_pass_name_rejected(self):
        module = ir_of()
        f = module.functions["f"]
        snapshot, witness = emit_witness(PROMOTE_SLOTS, f)
        witness.pass_name = "no_such_pass"
        with pytest.raises(WitnessError):
            check_witness(witness, snapshot, f)

    def test_taint_flip_rejected(self):
        module = ir_of()
        f = module.functions["f"]
        snapshot, witness = emit_witness(PROMOTE_SLOTS, f)
        flipped = False
        for i, ob in enumerate(witness.obligations):
            if ob.claim[:1] == ("promoted",):
                witness.obligations[i] = Obligation(
                    ob.kind,
                    ob.site,
                    (ob.claim[0], ob.claim[1], ob.claim[2] ^ 1),
                )
                flipped = True
                break
        assert flipped
        with pytest.raises(WitnessError):
            check_witness(witness, snapshot, f)


class TestRevert:
    def test_bad_pass_is_reverted_and_counted(self):
        """A pass that rewrites without justification is rolled back."""

        def evil(func, witness=None):
            # Delete the first instruction of the entry block and claim
            # nothing: the changed-block coverage check must fire.
            func.blocks[0].instrs.pop(0)
            return True

        module = ir_of()
        f = module.functions["f"]
        before = blocks_repr(f)
        registry = events.Registry()
        with events.use(registry):
            changed, witness = run_certified_pass(Pass("dce", evil), f)
        assert not changed and witness is None
        assert blocks_repr(f) == before  # reverted in place
        snap = registry.metrics_snapshot()
        assert snap.get("opt.witness_rejected{pass=dce}") == 1

    def test_taint_laundering_pass_is_reverted(self):
        """A pass that flips a vreg's taint is caught by the global
        taint-preservation check, whatever it claims."""

        def launder(func, witness=None):
            for block in func.blocks:
                for instr in block.instrs:
                    for v in instr.defs():
                        if v.taint is Taint.PRIVATE:
                            v.taint = Taint.PUBLIC
                            return True
            return False

        module = ir_of(
            T_PROTOTYPES
            + """
            int main() {
                private int secret = 42;
                return declassify_int(secret + 0);
            }
            """
        )
        f = module.functions["main"]
        before = blocks_repr(f)
        changed, witness = run_certified_pass(Pass("dce", launder), f)
        assert not changed and witness is None
        assert blocks_repr(f) == before


class TestBoundedFixpoint:
    def test_ping_pong_terminates_at_cap(self, monkeypatch):
        """Two passes that undo each other stop at MAX_ITERATIONS."""
        from repro.opt import pipeline

        def is_marker(instr):
            return isinstance(instr, Const) and instr.value == 77777

        def ping(func, witness=None):
            entry = func.blocks[0]
            if entry.instrs and is_marker(entry.instrs[0]):
                return False
            entry.instrs.insert(
                0, Const(func.new_vreg(Taint.PUBLIC), 77777)
            )
            return True

        def pong(func, witness=None):
            entry = func.blocks[0]
            if entry.instrs and is_marker(entry.instrs[0]):
                entry.instrs.pop(0)
                return True
            return False

        monkeypatch.setattr(
            pipeline,
            "ITER_PASSES",
            (Pass("dce", ping), Pass("dce", pong)),
        )
        # Accept every witness: the cap, not certification, must stop
        # the ping-pong.
        monkeypatch.setattr(
            pipeline, "check_witness", lambda *a, **k: None
        )
        module = ir_of("int main() { return 0; }")
        registry = events.Registry()
        with events.use(registry):
            optimize_module(module, verify=False)
        snap = registry.metrics_snapshot()
        iters = snap["opt.fixpoint_iters{pipeline=confllvm}"]
        assert iters["max"] == MAX_ITERATIONS

    def test_real_pipeline_converges_under_cap(self):
        registry = events.Registry()
        with events.use(registry):
            optimize_module(ir_of())
        snap = registry.metrics_snapshot()
        iters = snap["opt.fixpoint_iters{pipeline=confllvm}"]
        assert iters["max"] < MAX_ITERATIONS

    def test_iter_passes_are_certified_passes(self):
        assert all(isinstance(p, Pass) for p in ITER_PASSES)
