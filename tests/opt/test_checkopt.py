"""Post-codegen check optimizer tests: the three transforms, the
translation checker, level semantics, and end-to-end acceptance."""

import pytest

from repro import OUR_MPX, OUR_SEG, compile_source
from repro.backend import isa
from repro.opt import WitnessError, check_checkopt_witness, optimize_checks
from repro.opt.checkopt import insns_digest
from repro.runtime.trusted import T_PROTOTYPES, TrustedRuntime
from repro.link.loader import load
from repro.verifier import verify_check_sites
from repro.verifier.verify import verify_binary

R0, R1 = 0, 1


def reg_chk(reg=R0, bnd=0):
    return isa.BndChk(bnd, reg=reg)


def mem_chk(base=R0, disp=0, bnd=0, index=None):
    return isa.BndChk(bnd, mem=isa.Mem(base=base, disp=disp, index=index))


def glea(dst=R0, name="g"):
    return isa.Lea(dst, isa.Mem(global_name=name))


def run(insns):
    out, witness = optimize_checks(list(insns), "f")
    check_checkopt_witness(witness, list(insns), out)
    return out, witness


class TestTransforms:
    def test_duplicate_reg_check_elided(self):
        out, witness = run([reg_chk(), isa.MovRI(R1, 1), reg_chk()])
        assert [e[0] for e in witness.edits] == ["elide"]
        assert sum(isinstance(i, isa.BndChk) for i in out) == 1

    def test_reg_check_covers_small_disp_mem_check(self):
        out, witness = run([reg_chk(), mem_chk(disp=64)])
        assert [e[0] for e in witness.edits] == ["elide"]
        assert sum(isinstance(i, isa.BndChk) for i in out) == 1

    def test_mem_check_widened_to_reg_form(self):
        out, witness = run([mem_chk(disp=8)])
        assert [e[0] for e in witness.edits] == ["widen"]
        assert out[0].reg == R0 and out[0].mem is None

    def test_widen_then_elide_chains(self):
        # Both widen to the same register key; the second dies.
        out, witness = run([mem_chk(disp=8), mem_chk(disp=16)])
        assert [e[0] for e in witness.edits] == ["widen", "elide"]
        assert sum(isinstance(i, isa.BndChk) for i in out) == 1

    def test_indexed_check_not_widened(self):
        out, witness = run([mem_chk(index=R1)])
        assert witness.edits == []

    def test_huge_disp_not_widened(self):
        out, witness = run([mem_chk(disp=1 << 21)])
        assert witness.edits == []

    def test_redefinition_kills_evidence(self):
        out, witness = run([reg_chk(), isa.MovRI(R0, 5), reg_chk()])
        # The second check is NOT redundant: r0 was rewritten.
        assert [e[0] for e in witness.edits] == []

    def test_boundary_kills_evidence(self):
        for boundary in (isa.Label("l"), isa.CallD("g"), isa.RetPlain()):
            out, witness = run([reg_chk(), boundary, reg_chk()])
            assert witness.edits == [], boundary

    def test_bnd_register_distinguished(self):
        out, witness = run([reg_chk(bnd=0), reg_chk(bnd=1)])
        assert witness.edits == []

    def test_lea_dedup_and_lifetime_extension(self):
        out, witness = run(
            [glea(), reg_chk(), glea(), reg_chk()]
        )
        kinds = [e[0] for e in witness.edits]
        # The remat is deleted, which lets the second check see the
        # first one's evidence.
        assert kinds == ["dedup-lea", "elide"]
        assert sum(isinstance(i, isa.Lea) for i in out) == 1
        assert sum(isinstance(i, isa.BndChk) for i in out) == 1

    def test_different_global_lea_not_deduped(self):
        out, witness = run([glea(name="a"), glea(name="b")])
        assert witness.edits == []

    def test_input_not_mutated(self):
        insns = [reg_chk(), reg_chk()]
        before = [repr(i) for i in insns]
        optimize_checks(insns, "f")
        assert [repr(i) for i in insns] == before


class TestChecker:
    def witness_for(self, insns):
        out, witness = optimize_checks(list(insns), "f")
        return list(insns), out, witness

    def test_honest_witness_accepted(self):
        pre, post, witness = self.witness_for(
            [reg_chk(), mem_chk(disp=4), mem_chk(disp=8)]
        )
        check_checkopt_witness(witness, pre, post)

    def test_stale_digests_rejected(self):
        pre, post, witness = self.witness_for([reg_chk(), reg_chk()])
        for attr in ("pre_digest", "post_digest"):
            saved = getattr(witness, attr)
            setattr(witness, attr, "0" * 64)
            with pytest.raises(WitnessError):
                check_checkopt_witness(witness, pre, post)
            setattr(witness, attr, saved)

    def test_dropped_edit_rejected(self):
        pre, post, witness = self.witness_for([reg_chk(), reg_chk()])
        witness.edits = []
        with pytest.raises(WitnessError):
            check_checkopt_witness(witness, pre, post)

    def test_self_provider_rejected(self):
        pre, post, witness = self.witness_for([reg_chk(), reg_chk()])
        (kind, i, _j) = witness.edits[0]
        witness.edits[0] = (kind, i, i)
        witness.post_digest = insns_digest(post)
        with pytest.raises(WitnessError):
            check_checkopt_witness(witness, pre, post)

    def test_phantom_elide_rejected(self):
        # Claim an elision the optimizer never performed: the post
        # stream no longer matches the edit script.
        pre = [reg_chk(), isa.MovRI(R1, 1), mem_chk(base=R1, index=R0)]
        post, witness = optimize_checks(list(pre), "f")
        assert witness.edits == []
        witness.edits = [("elide", 2, 0)]
        with pytest.raises(WitnessError):
            check_checkopt_witness(witness, pre, post)

    def test_killed_evidence_rejected(self):
        # Hand-craft a stream where the claimed provider is dead.
        pre = [reg_chk(), isa.MovRI(R0, 5), reg_chk()]
        post = [pre[0], pre[1]]
        from repro.opt.checkopt import CheckOptWitness

        witness = CheckOptWitness("f", insns_digest(pre))
        witness.edits = [("elide", 2, 0)]
        witness.post_digest = insns_digest(post)
        with pytest.raises(WitnessError) as err:
            check_checkopt_witness(witness, pre, post)
        assert "killed by a register write" in str(err.value)

    def test_cross_boundary_evidence_rejected(self):
        pre = [reg_chk(), isa.Label("l"), reg_chk()]
        post = [pre[0], pre[1]]
        from repro.opt.checkopt import CheckOptWitness

        witness = CheckOptWitness("f", insns_digest(pre))
        witness.edits = [("elide", 2, 0)]
        witness.post_digest = insns_digest(post)
        with pytest.raises(WitnessError) as err:
            check_checkopt_witness(witness, pre, post)
        assert "boundary" in str(err.value)


SOURCE = (
    T_PROTOTYPES
    + """
int sum(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}

int main() {
    int buf[8];
    for (int i = 0; i < 8; i++) { buf[i] = i * 3; }
    return sum(buf, 8);
}
"""
)


def observe(binary):
    runtime = TrustedRuntime()
    process = load(binary, runtime=runtime)
    exit_code = process.run()
    return {
        "exit": exit_code,
        "out": runtime.channel(1).drain_out().hex(),
        "stdout": tuple(process.stdout),
    }


class TestEndToEnd:
    def test_levels_verify_and_agree(self):
        """All three levels produce verifier-accepted, observationally
        identical binaries; off has the most checks, aggressive the
        fewest."""
        sites = {}
        seen = {}
        for level in ("off", "safe", "aggressive"):
            config = OUR_MPX.variant(checkopt=level)
            binary = compile_source(SOURCE, config)
            verify_binary(binary)
            verify_check_sites(binary)
            sites[level] = sum(
                1 for k in binary.check_sites.values() if k == "bnd"
            )
            seen[level] = observe(binary)
        assert seen["off"] == seen["safe"] == seen["aggressive"]
        assert sites["off"] >= sites["safe"] >= sites["aggressive"]

    def test_safe_is_the_default_and_bit_identical(self):
        assert OUR_MPX.checkopt == "safe"
        explicit = compile_source(
            SOURCE, OUR_MPX.variant(checkopt="safe")
        )
        default = compile_source(SOURCE, OUR_MPX)
        assert [repr(i) for i in explicit.code] == [
            repr(i) for i in default.code
        ]

    def test_aggressive_works_for_seg_scheme_too(self):
        config = OUR_SEG.variant(checkopt="aggressive")
        binary = compile_source(SOURCE, config)
        verify_binary(binary)
        verify_check_sites(binary)
        assert observe(binary) == observe(compile_source(SOURCE, OUR_SEG))
